//===- lowfat/StackPool.h - Low-fat stack allocation ------------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LIFO stack allocation on top of the low-fat heap, standing in for the
/// native low-fat stack allocator of Duck, Yap & Cavallaro (NDSS 2017).
/// The original aliases the machine stack onto size-class regions with
/// virtual-memory tricks; here each stack object is a heap block with
/// strict frame (mark/release) discipline, which preserves the property
/// the EffectiveSan runtime needs: every stack object is a low-fat
/// allocation with O(1) size(p)/base(p) and a META header slot.
///
/// The typed runtime wraps this class: before release() it walks
/// blocksSince(Mark) to rebind each META header to the FREE type.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_LOWFAT_STACKPOOL_H
#define EFFECTIVE_LOWFAT_STACKPOOL_H

#include "lowfat/LowFatHeap.h"

#include <cstddef>
#include <span>
#include <vector>

namespace effective {
namespace lowfat {

/// Per-thread LIFO allocator over a LowFatHeap. Not thread-safe; create
/// one per thread (the EffectiveSan runtime keeps one in TLS). When the
/// heap is sharded, \p Shard selects the sub-arena stack objects come
/// from, so a pooled session's stack allocations stay on its shard.
class StackPool {
public:
  explicit StackPool(LowFatHeap &Heap, unsigned Shard = 0)
      : Heap(Heap), Shard(Shard) {}

  ~StackPool() { release(0); }

  StackPool(const StackPool &) = delete;
  StackPool &operator=(const StackPool &) = delete;

  /// Current frame mark; pass to release() to free everything allocated
  /// after this point.
  size_t mark() const { return Live.size(); }

  /// Allocates one stack object of \p Size bytes.
  void *allocate(size_t Size) {
    void *Ptr = Heap.allocateOnShard(Size, Shard);
    Live.push_back(Ptr);
    return Ptr;
  }

  /// The blocks allocated since \p Mark, oldest first.
  std::span<void *const> blocksSince(size_t Mark) const {
    return std::span<void *const>(Live).subspan(Mark);
  }

  /// Frees all blocks allocated after \p Mark (in reverse order).
  void release(size_t Mark) {
    while (Live.size() > Mark) {
      Heap.deallocate(Live.back());
      Live.pop_back();
    }
  }

  /// Number of live stack objects.
  size_t liveObjects() const { return Live.size(); }

  /// Forgets every live block *without* freeing — used when the
  /// backing heap no longer exists (or was recycled) and the recorded
  /// addresses must not be touched. After this the destructor is a
  /// safe no-op.
  void abandonAll() { Live.clear(); }

  /// RAII frame: releases on scope exit.
  class Frame {
  public:
    explicit Frame(StackPool &Pool) : Pool(Pool), Mark(Pool.mark()) {}
    ~Frame() { Pool.release(Mark); }

    Frame(const Frame &) = delete;
    Frame &operator=(const Frame &) = delete;

    size_t markValue() const { return Mark; }

  private:
    StackPool &Pool;
    size_t Mark;
  };

private:
  LowFatHeap &Heap;
  unsigned Shard;
  std::vector<void *> Live;
};

} // namespace lowfat
} // namespace effective

#endif // EFFECTIVE_LOWFAT_STACKPOOL_H
