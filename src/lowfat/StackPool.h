//===- lowfat/StackPool.h - Low-fat stack allocation ------------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LIFO stack allocation on top of the low-fat heap, standing in for the
/// native low-fat stack allocator of Duck, Yap & Cavallaro (NDSS 2017).
/// The original aliases the machine stack onto size-class regions with
/// virtual-memory tricks; here each stack object is a heap block with
/// strict frame (mark/release) discipline, which preserves the property
/// the EffectiveSan runtime needs: every stack object is a low-fat
/// allocation with O(1) size(p)/base(p) and a META header slot.
///
/// Escape-aware retirement: allocations flagged Retire (address-taken /
/// escaping slots, marked by the instrumentation pass) are not returned
/// to the heap at frame pop. They sit in a per-pool FIFO quarantine
/// under a byte budget, delaying address reuse — so a dangling pointer
/// into a returned frame still addresses a block whose META header the
/// runtime rebound to the STACK-FREE type, and faults as a stack
/// use-after-return instead of silently reading a recycled object.
/// Non-escaping slots cannot dangle and are freed immediately.
///
/// The typed runtime wraps this class: before release() it walks
/// blocksSince(Mark) to rebind each META header to the STACK-FREE type.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_LOWFAT_STACKPOOL_H
#define EFFECTIVE_LOWFAT_STACKPOOL_H

#include "lowfat/LowFatHeap.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <utility>
#include <vector>

namespace effective {
namespace lowfat {

/// Per-thread LIFO allocator over a LowFatHeap. Not thread-safe; create
/// one per thread (the EffectiveSan runtime keeps one in TLS). When the
/// heap is sharded, \p Shard selects the sub-arena stack objects come
/// from, so a pooled session's stack allocations stay on its shard.
class StackPool {
public:
  /// Pool tuning knobs.
  struct Options {
    /// Byte budget of the use-after-return quarantine: retired
    /// (escaping) slots up to this many bytes are held back from the
    /// heap, oldest evicted first. 0 disables the delay — escaping
    /// slots free like any other.
    size_t QuarantineBytes = 64 * 1024;
  };

  /// One live stack allocation.
  struct Record {
    void *Ptr;
    /// Owning Frame's identity (0 when allocated outside any RAII
    /// Frame, under raw mark/release discipline).
    uint64_t Frame;
    /// Escaping slot: retire through the quarantine at release.
    bool Retire;
  };

  StackPool(LowFatHeap &Heap, unsigned Shard, Options Opts)
      : Heap(Heap), Shard(Shard), Opts(Opts) {}
  // (Delegation rather than `Options Opts = Options()`: a default
  // argument may not use a nested class's default member initializers
  // before the enclosing class is complete.)
  explicit StackPool(LowFatHeap &Heap, unsigned Shard = 0)
      : StackPool(Heap, Shard, Options()) {}

  ~StackPool() {
    release(0);
    drainQuarantine();
  }

  StackPool(const StackPool &) = delete;
  StackPool &operator=(const StackPool &) = delete;

  /// Current frame mark; pass to release() to free everything allocated
  /// after this point.
  size_t mark() const { return Live.size(); }

  /// Allocates one stack object of \p Size bytes. \p Retire marks an
  /// escaping (address-taken) slot whose release goes through the
  /// quarantine delay.
  void *allocate(size_t Size, bool Retire = false) {
    void *Ptr = Heap.allocateOnShard(Size, Shard);
    if (EFFSAN_UNLIKELY(!Ptr))
      return nullptr; // OOM: nothing to record; caller reports.
    Live.push_back(Record{Ptr, CurrentFrame, Retire});
    ++TotalAllocs;
    return Ptr;
  }

  /// The blocks allocated since \p Mark, oldest first.
  std::span<const Record> blocksSince(size_t Mark) const {
    return std::span<const Record>(Live).subspan(Mark);
  }

  /// Retires all blocks allocated after \p Mark (newest first):
  /// escaping slots enter the quarantine, the rest return to the heap.
  /// This is the engine epilogue path — engines have strict LIFO frame
  /// discipline, so a mark fully identifies the frame.
  void release(size_t Mark) {
    while (Live.size() > Mark) {
      retire(Live.back());
      Live.pop_back();
    }
    ++FramesReleased;
    if (Live.empty())
      drainQuarantine();
  }

  /// Number of live stack objects.
  size_t liveObjects() const { return Live.size(); }

  /// Blocks currently parked in the use-after-return quarantine.
  size_t quarantinedBlocks() const { return Quarantine.size(); }
  size_t quarantinedBytes() const { return QuarantineInUse; }

  /// Lifetime counters (tests and the ABI object-stats surface).
  uint64_t totalAllocs() const { return TotalAllocs; }
  uint64_t framesReleased() const { return FramesReleased; }
  /// Escaping slots ever retired through the quarantine.
  uint64_t retiredBlocks() const { return TotalRetired; }

  /// Forgets every live block *and* the quarantine *without* freeing —
  /// used when the backing heap no longer exists (or was recycled) and
  /// the recorded addresses must not be touched. After this the
  /// destructor is a safe no-op.
  void abandonAll() {
    Live.clear();
    Quarantine.clear();
    QuarantineInUse = 0;
  }

  /// Returns every quarantined block to the heap. Runs automatically
  /// whenever the last live object is released (the outermost frame
  /// popped — no frame is left for a pointer to dangle out of) and at
  /// pool teardown, so a balanced program leaves the pool empty and the
  /// heap's alloc/free counts level. This is also what keeps the
  /// runtime's TLS pools safe to destroy after their runtime: an empty
  /// pool's destructor never touches the (possibly dead) heap.
  void drainQuarantine() {
    for (const auto &[Ptr, Size] : Quarantine)
      Heap.deallocate(Ptr);
    Quarantine.clear();
    QuarantineInUse = 0;
  }

  /// RAII frame: releases its own allocations on scope exit, by frame
  /// *identity*, not by mark — so frames whose lifetimes interleave
  /// (moved-from scopes, out-of-order teardown) never free a sibling
  /// frame's live blocks.
  class Frame {
  public:
    explicit Frame(StackPool &Pool)
        : Pool(Pool), Id(++Pool.NextFrame), Prev(Pool.CurrentFrame),
          Mark(Pool.mark()) {
      Pool.CurrentFrame = Id;
    }
    ~Frame() {
      Pool.releaseFrame(Id);
      if (Pool.CurrentFrame == Id)
        Pool.CurrentFrame = Prev;
    }

    Frame(const Frame &) = delete;
    Frame &operator=(const Frame &) = delete;

    size_t markValue() const { return Mark; }

  private:
    StackPool &Pool;
    uint64_t Id;
    uint64_t Prev;
    size_t Mark;
  };

private:
  friend class Frame;

  /// Retires exactly the blocks frame \p Id allocated (newest first),
  /// keeping every other frame's records in order.
  void releaseFrame(uint64_t Id) {
    for (size_t I = Live.size(); I-- > 0;)
      if (Live[I].Frame == Id)
        retire(Live[I]);
    Live.erase(std::remove_if(
                   Live.begin(), Live.end(),
                   [Id](const Record &R) { return R.Frame == Id; }),
               Live.end());
    ++FramesReleased;
    if (Live.empty())
      drainQuarantine();
  }

  /// Escaping slots park in the FIFO quarantine (evicting oldest past
  /// the byte budget); everything else goes straight back to the heap.
  void retire(const Record &R) {
    if (R.Retire && Opts.QuarantineBytes != 0 && Heap.isLowFat(R.Ptr)) {
      size_t Size = Heap.allocationSize(R.Ptr);
      Quarantine.emplace_back(R.Ptr, Size);
      QuarantineInUse += Size;
      ++TotalRetired;
      while (QuarantineInUse > Opts.QuarantineBytes &&
             !Quarantine.empty()) {
        auto [Ptr, Sz] = Quarantine.front();
        Quarantine.pop_front();
        QuarantineInUse -= Sz;
        Heap.deallocate(Ptr);
      }
      return;
    }
    Heap.deallocate(R.Ptr);
  }

  LowFatHeap &Heap;
  unsigned Shard;
  Options Opts;
  std::vector<Record> Live;
  /// FIFO of (block, size) pairs awaiting delayed reuse.
  std::deque<std::pair<void *, size_t>> Quarantine;
  size_t QuarantineInUse = 0;
  uint64_t CurrentFrame = 0;
  uint64_t NextFrame = 0;
  uint64_t TotalAllocs = 0;
  uint64_t TotalRetired = 0;
  uint64_t FramesReleased = 0;
};

} // namespace lowfat
} // namespace effective

#endif // EFFECTIVE_LOWFAT_STACKPOOL_H
