//===- lowfat/LowFatHeap.h - Low-fat pointer heap allocator -----*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A user-space reimplementation of the low-fat pointer heap allocator
/// (Duck & Yap, "Heap Bounds Protection with Low Fat Pointers", CC 2016):
/// one large virtual-memory arena is reserved up front and subdivided into
/// one region per size class. An allocation of class C is placed at a
/// multiple of classSize(C) bytes from the base of region C, so that for
/// any interior pointer p:
///
///   size(p) = classSize((p - ArenaBase) / RegionSize)          -- O(1)
///   base(p) = p - ((p - regionBase) mod classSize)             -- O(1)
///
/// Pointers outside the arena are "legacy" pointers: size(p) = SIZE_MAX
/// and base(p) = nullptr, exactly the compatibility contract of Section 5
/// of the EffectiveSan paper. Requests larger than the largest class fall
/// back to the system allocator and therefore yield legacy pointers.
///
/// The allocator guarantees that the first 16 bytes of a freed block (the
/// object META header, Section 5) are preserved until the block is
/// reallocated: intrusive free-list links are stored at byte offset 16.
/// An optional FIFO quarantine delays reuse of freed blocks, the same
/// mitigation AddressSanitizer employs (discussed in Section 2.1).
///
/// Sharding (HeapOptions::NumShards > 1): each size-class region is
/// carved into NumShards contiguous sub-arenas, each with its own bump
/// pointer and free list, so that concurrent worker threads bound to
/// distinct shards never contend on allocation. Because every shard's
/// slice starts at a multiple of the class size from the region base, the
/// size(p)/base(p) arithmetic above is unchanged and remains valid for
/// pointers allocated on *any* shard — a shard is a placement policy,
/// not a separate address space. Cross-shard frees are allowed (the block
/// returns to its owning shard's free list). All metadata queries stay
/// lock-free.
///
/// Allocation fast path (this layer's whole point — the paper keeps
/// type_malloc cheap because base/size are pure arithmetic, so the
/// allocator itself must not give the cycles back):
///
///   * Per-thread size-class *magazines*: a small TLS cache of blocks
///     per class (tcmalloc-style). The steady-state alloc/free pair is a
///     TLS array pop/push — no locks, no compare-and-swap.
///   * Magazines refill in batches from the owning sub-arena's *Treiber
///     free list* (multi-producer push via CAS; consumers take the whole
///     list with one exchange, which also makes the stack ABA-free) and
///     flush back half a magazine in one chain push when they overflow.
///   * Never-allocated memory comes from an atomic *bump pointer*
///     (CAS loop) — one atomic op per fresh block, no lock.
///   * Frees under an active quarantine park in a per-thread buffer and
///     flush to the shard's FIFO in one locked operation per batch,
///     preserving the reuse-delay guarantee and byte accounting.
///   * When a shard's slice of a class region is exhausted and
///     HeapOptions::EnableWorkStealing is set, the shard refills from a
///     sibling shard's slice (free list, then bump space) instead of
///     falling back to the (locked, legacy-pointer) system allocator.
///     Stolen blocks keep the class-alignment invariant — they live in
///     the sibling's slice, so base(p)/size(p) remain the same global
///     O(1) arithmetic and frees return them to the sibling.
///
/// The only mutexes left are the per-shard quarantine FIFO (taken once
/// per flushed batch) and the legacy-allocation table (oversized
/// requests only).
///
/// TLS reclamation: magazines are epoch-guarded. resetShard() advances
/// the shard's epoch; any thread's cached blocks for that shard are
/// discarded (not replayed) on its next use, so a recycled arena can
/// never serve a stale magazine block. Thread exit flushes caches back
/// to the owning heap if — and only if — the heap is still alive (a
/// process-wide registry arbitrates, so heaps and threads may die in
/// any order).
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_LOWFAT_LOWFATHEAP_H
#define EFFECTIVE_LOWFAT_LOWFATHEAP_H

#include "lowfat/SizeClass.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace effective {
namespace lowfat {

/// Construction-time options for a LowFatHeap.
struct HeapOptions {
  /// Bytes of virtual address space reserved per size-class region.
  /// Must be a power of two. With NumShards > 1, at most 2^31 so the
  /// shard-of-address division stays a single high multiply.
  uint64_t RegionSize = 1ull << 29;

  /// Maximum bytes of freed blocks held in quarantine before reuse;
  /// 0 disables the quarantine. With sharding the budget applies to
  /// each shard's private quarantine.
  size_t QuarantineBytes = 0;

  /// Number of per-shard sub-arenas each size-class region is carved
  /// into (clamped to [1, MaxHeapShards]). 1 = the classic single-arena
  /// heap.
  unsigned NumShards = 1;

  /// Blocks cached per (thread, size class) in the TLS magazine
  /// (clamped to [0, MaxMagazineSize]); 0 disables magazines — every
  /// alloc/free goes straight to the lock-free sub-arena structures.
  unsigned MagazineSize = 16;

  /// Refill from sibling shards' slices when this shard's slice of a
  /// class region runs dry, instead of falling back to the system
  /// allocator. Off by default: stealing trades the legacy fallback
  /// for weaker shard isolation — resetShard()'s "no live pointers"
  /// contract then extends to blocks sibling shards borrowed from the
  /// reset shard's slice.
  bool EnableWorkStealing = false;
};

/// Hard cap on NumShards (keeps the per-(class, shard) state bounded).
inline constexpr unsigned MaxHeapShards = 256;

/// Hard cap on MagazineSize (bounds per-thread cache memory; a bogus
/// huge ABI value must degrade, not allocate gigabytes of TLS).
inline constexpr unsigned MaxMagazineSize = 512;

/// Point-in-time allocator statistics. The heap tracks block (size-class
/// rounded) bytes — the real memory footprint; requested-byte accounting
/// lives in the typed runtime, which knows each object's META header.
/// For sharded heaps stats() sums over the shards; PeakBlockBytesInUse
/// is the sum of per-shard peaks (an upper bound on the true combined
/// peak, exact for a single shard).
struct HeapStats {
  /// Block bytes currently live.
  uint64_t BlockBytesInUse = 0;
  /// High-water mark of BlockBytesInUse.
  uint64_t PeakBlockBytesInUse = 0;
  uint64_t NumAllocs = 0;
  uint64_t NumFrees = 0;
  /// Allocations that fell back to the system allocator.
  uint64_t NumLegacyAllocs = 0;
  /// Bytes currently parked in the quarantine (including per-thread
  /// batches not yet flushed to the shard FIFO).
  uint64_t QuarantinedBytes = 0;
  /// Allocations served by a non-empty TLS magazine (the no-atomics
  /// steady state). Hits and refills are tallied per thread and
  /// published to the shared counters in batches (and in full whenever
  /// a cache retires, rebinds or is flushed), so the totals are exact
  /// after flushThreadCache()/thread exit; between publishes a reader
  /// may lag by at most one in-flight batch per thread.
  uint64_t MagazineHits = 0;
  /// Magazine refills from the owning sub-arena (each moves up to
  /// MagazineSize blocks with O(1) atomic operations).
  uint64_t MagazineRefills = 0;
  /// Blocks served from a sibling shard's slice after this shard's
  /// slice ran dry (EnableWorkStealing), attributed to the requesting
  /// shard.
  uint64_t Steals = 0;
  /// Legacy (system-allocator) fallbacks taken because a slice was
  /// exhausted and stealing was off or found nothing — the subset of
  /// NumLegacyAllocs that is not simply an oversized request.
  uint64_t ExhaustFallbacks = 0;
};

/// The low-fat heap. Thread-safe: alloc/free run lock-free over
/// per-(size class, shard) sub-arenas fronted by per-thread magazines,
/// and the size/base queries are lock-free reads.
class LowFatHeap {
public:
  explicit LowFatHeap(const HeapOptions &Options = HeapOptions());
  ~LowFatHeap();

  LowFatHeap(const LowFatHeap &) = delete;
  LowFatHeap &operator=(const LowFatHeap &) = delete;

  /// Allocates \p Size bytes from shard 0. The result is a low-fat
  /// pointer unless \p Size exceeds the largest size class, in which
  /// case it is a legacy pointer.
  void *allocate(size_t Size) { return allocateOnShard(Size, 0); }

  /// Allocates \p Size bytes from shard \p Shard's sub-arenas. Falls
  /// back to a sibling shard's slice (work stealing, when enabled) and
  /// then the system allocator (legacy pointer) when the request is
  /// oversized or the slices are exhausted. Returns null only when the
  /// system allocator itself is out of memory — callers in the typed
  /// layer turn that into a resource-exhausted report, never UB.
  void *allocateOnShard(size_t Size, unsigned Shard);

  /// Frees a pointer previously returned by allocate()/allocateOnShard()
  /// — from any thread and any shard; the block returns to the calling
  /// thread's magazine (same-shard frees), the owning shard's free list,
  /// or the quarantine. Interior pointers are rejected by assertion. The
  /// first 16 bytes of the block remain intact until the block is handed
  /// out again.
  void deallocate(void *Ptr);

  /// Returns true if \p Ptr points into the low-fat arena (including
  /// one-past-the-end of an allocated block).
  bool isLowFat(const void *Ptr) const;

  /// True if \p Ptr lies anywhere inside the reserved arena. The whole
  /// arena is demand-paged read/write, so accesses inside it are
  /// host-safe even when they are program errors — which is what lets
  /// the interpreter keep executing after logging an error, as the
  /// paper's logging mode does.
  bool isInArena(const void *Ptr) const {
    uintptr_t P = reinterpret_cast<uintptr_t>(Ptr);
    return P >= ArenaBase && P < ArenaEnd;
  }

  /// The paper's size(p): the allocation (size-class) size for low-fat
  /// pointers, SIZE_MAX for legacy pointers.
  size_t allocationSize(const void *Ptr) const;

  /// The paper's base(p): the start of the allocated block for low-fat
  /// pointers, nullptr for legacy pointers.
  void *allocationBase(const void *Ptr) const;

  /// Size class index for a low-fat pointer. \pre isLowFat(Ptr).
  unsigned allocationClass(const void *Ptr) const;

  /// The shard whose sub-arena contains a low-fat pointer — pure
  /// address arithmetic, like base(p). \pre isLowFat(Ptr).
  unsigned shardOf(const void *Ptr) const;

  /// Number of per-shard sub-arenas.
  unsigned numShards() const { return Shards; }

  /// Recycles one shard's sub-arenas: drops its free lists and
  /// quarantine, rewinds its bump pointers, zeroes its statistics and
  /// advances the shard's magazine epoch so every thread's cached
  /// blocks for the shard are discarded instead of replayed. Every
  /// low-fat pointer ever served by the shard becomes invalid (legacy)
  /// and its addresses will be handed out again.
  ///
  /// \pre No live pointers from this shard are dereferenced afterwards
  /// and no thread is concurrently allocating on or freeing to it. With
  /// work stealing enabled the contract covers blocks sibling shards
  /// borrowed from this shard's slice, too. Legacy (oversized) blocks
  /// are not recycled.
  void resetShard(unsigned Shard);

  /// Snapshot of the statistics (summed over shards).
  HeapStats stats() const;

  /// Snapshot of one shard's statistics.
  HeapStats shardStats(unsigned Shard) const;

  /// Bytes carved from one size class's region across all shards
  /// (bump-pointer high-water marks; freed blocks stay carved until
  /// their shard is recycled). Feeds the per-class heap-occupancy
  /// gauges of the observability layer.
  uint64_t classCarvedBytes(unsigned ClassIndex) const;

  /// Resets the peak counters to the current values (used between
  /// benchmark phases).
  void resetPeaks();

  /// Flushes the calling thread's magazine and quarantine batches for
  /// this heap back to the shared structures (bench/test hook: makes
  /// TLS-cached state visible to stats() and to other threads without
  /// ending the thread).
  void flushThreadCache();

  /// The region size this heap actually reserved (options may be reduced
  /// if the initial reservation fails).
  uint64_t regionSize() const { return RegionSize; }

  /// The magazine size this heap resolved to (0 = disabled).
  unsigned magazineSize() const { return MagSize; }

  /// Whether slice exhaustion steals from sibling shards.
  bool workStealingEnabled() const { return WorkStealing; }

  /// The process-wide heap used by the EffectiveSan runtime.
  static LowFatHeap &global();

private:
  struct FreeNode;
  struct ThreadCache;
  friend struct ThreadCache;

  /// Per-(size class, shard) sub-arena state. Lock-free: the free list
  /// is a Treiber stack (push = CAS; consumers exchange the whole list,
  /// so no pop ever dereferences a node it does not own — ABA-free),
  /// the bump pointer a CAS loop.
  struct SubRegion {
    /// Next never-allocated address (absolute). Atomic so isLowFat() can
    /// read it without synchronization; never exceeds End.
    std::atomic<uintptr_t> Bump{0};
    std::atomic<FreeNode *> FreeList{nullptr};
    uintptr_t Begin = 0;
    uintptr_t End = 0;
  };

  /// Per-size-class region geometry (immutable after construction).
  struct Region {
    uintptr_t Begin = 0;
    /// Bytes of each shard's slice — a multiple of the class size so
    /// every slice starts on a class-aligned boundary (0 when the class
    /// is too large to split across the shards; such classes serve only
    /// legacy fallbacks).
    uint64_t SubCapacity = 0;
    /// End of the last shard's slice (Begin + SubCapacity * NumShards).
    uintptr_t UsableEnd = 0;
    /// Lemire magic for dividing an in-region offset by SubCapacity
    /// (exact because both fit in 32 bits); unused when Shards == 1.
    uint64_t SubMagic = 0;
  };

  /// Per-shard statistics, cache-line separated; all relaxed atomics.
  struct alignas(64) ShardCounters {
    std::atomic<uint64_t> BlockBytesInUse{0};
    std::atomic<uint64_t> PeakBlockBytesInUse{0};
    std::atomic<uint64_t> NumAllocs{0};
    std::atomic<uint64_t> NumFrees{0};
    std::atomic<uint64_t> NumLegacyAllocs{0};
    std::atomic<uint64_t> QuarantinedBytes{0};
    std::atomic<uint64_t> MagazineHits{0};
    std::atomic<uint64_t> MagazineRefills{0};
    std::atomic<uint64_t> Steals{0};
    std::atomic<uint64_t> ExhaustFallbacks{0};
  };

  /// Per-shard FIFO quarantine of (block, class) pairs. The lock is
  /// taken once per flushed *batch* of frees, not per free.
  struct ShardQuarantine {
    std::mutex Lock;
    std::deque<std::pair<void *, unsigned>> Blocks;
  };

  void *allocateLegacy(size_t Size, unsigned Shard);
  bool deallocateLegacy(void *Ptr);
  void noteAlloc(unsigned Shard, size_t Block, bool Legacy);
  void noteFree(unsigned Shard, size_t Block);

  /// Bump-allocates one block of class \p ClassIndex from \p Sub, or
  /// null when the slice is exhausted.
  void *bumpAlloc(SubRegion &Sub, uint64_t Block);

  /// Pushes the chain [First, Last] onto \p Sub's free list (one CAS).
  static void pushFreeChain(SubRegion &Sub, FreeNode *First,
                            FreeNode *Last);
  /// Pushes one freed block (its FreeNode written here).
  static void pushFreeBlock(SubRegion &Sub, void *Ptr);

  /// The slice-exhausted slow path: work stealing, then legacy.
  void *allocateExhausted(size_t Size, unsigned ClassIndex,
                          unsigned Shard);

  /// Refills one magazine from the spare chain / the sub-arena free
  /// list; true when at least one block landed.
  bool refillMagazine(ThreadCache &TC, unsigned ClassIndex,
                      unsigned Shard);
  /// Returns the older half of a full magazine to the bound sub-arena
  /// in one chain push.
  void flushMagazineHalf(ThreadCache &TC, unsigned ClassIndex);
  /// Pushes every magazine block and spare chain back to the bound
  /// shard (\pre its epoch is current and the shard's quarantine lock
  /// is held or the caller is actively using the shard).
  void flushMagazines(ThreadCache &TC);
  /// Flush-or-drop the bound shard's cached blocks under the shard's
  /// quarantine lock (serialized against resetShard).
  void retireMagazines(ThreadCache &TC);
  /// Publishes the cache's magazine hit/refill tallies to the bound
  /// shard's shared counters with one fetch_add each (exact telemetry:
  /// no update is ever lost, unlike a racy load+store on the shared
  /// counter).
  void publishTallies(ThreadCache &TC);
  /// Rebinds the cache to a new shard after retiring the old one's
  /// blocks.
  void rebindCache(ThreadCache &TC, unsigned Shard);

  /// The calling thread's cache for this heap (created on first use;
  /// null only when magazines are disabled and no quarantine batching
  /// is needed).
  ThreadCache *threadCache();
  ThreadCache *threadCacheSlow();

  /// Appends a freed block to the thread's quarantine batch, flushing
  /// the batch (one locked operation) when it is due.
  void quarantineBlock(void *Ptr, unsigned ClassIndex, unsigned Shard);
  /// Flushes a thread cache's pending quarantine batch into the shard
  /// FIFOs and evicts over-budget blocks to the free lists.
  void flushPendingQuarantine(ThreadCache &TC);
  /// Flushes every magazine and the quarantine batch of \p TC.
  void flushCache(ThreadCache &TC);

  unsigned regionIndexFor(uintptr_t P) const {
    return static_cast<unsigned>((P - ArenaBase) >> RegionShift);
  }

  /// The shard whose slice of \p R contains in-region offset \p Off.
  unsigned subIndexFor(const Region &R, uint64_t Off) const {
    if (Shards == 1)
      return 0;
    return static_cast<unsigned>(
        (static_cast<__uint128_t>(Off) * R.SubMagic) >> 64);
  }

  SubRegion &subRegion(unsigned ClassIndex, unsigned Shard) {
    return Subs[ClassIndex * Shards + Shard];
  }
  const SubRegion &subRegion(unsigned ClassIndex, unsigned Shard) const {
    return Subs[ClassIndex * Shards + Shard];
  }

  uint64_t RegionSize = 0;
  unsigned RegionShift = 0;
  unsigned Shards = 1;
  unsigned MagSize = 0;
  bool WorkStealing = false;
  /// Process-unique instance stamp: thread caches are keyed by heap
  /// address, and the stamp stops a new heap constructed at a dead
  /// heap's address from inheriting its caches.
  uint64_t Stamp = 0;
  uintptr_t ArenaBase = 0;
  uintptr_t ArenaEnd = 0;
  size_t ArenaBytes = 0;
  Region Regions[NumSizeClasses];
  /// Flat [class][shard] sub-arena table.
  std::unique_ptr<SubRegion[]> Subs;
  std::unique_ptr<ShardCounters[]> Counters;
  /// Per-shard magazine epochs, advanced by resetShard() so stale TLS
  /// caches are discarded rather than replayed.
  std::unique_ptr<std::atomic<uint64_t>[]> ShardEpochs;

  size_t QuarantineLimit = 0;
  std::unique_ptr<ShardQuarantine[]> Quarantines;

  mutable std::mutex LegacyLock;
  /// Legacy block -> (size, allocating shard).
  std::unordered_map<void *, std::pair<size_t, unsigned>> LegacyAllocs;
};

} // namespace lowfat
} // namespace effective

#endif // EFFECTIVE_LOWFAT_LOWFATHEAP_H
