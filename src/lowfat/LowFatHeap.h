//===- lowfat/LowFatHeap.h - Low-fat pointer heap allocator -----*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A user-space reimplementation of the low-fat pointer heap allocator
/// (Duck & Yap, "Heap Bounds Protection with Low Fat Pointers", CC 2016):
/// one large virtual-memory arena is reserved up front and subdivided into
/// one region per size class. An allocation of class C is placed at a
/// multiple of classSize(C) bytes from the base of region C, so that for
/// any interior pointer p:
///
///   size(p) = classSize((p - ArenaBase) / RegionSize)          -- O(1)
///   base(p) = p - ((p - regionBase) mod classSize)             -- O(1)
///
/// Pointers outside the arena are "legacy" pointers: size(p) = SIZE_MAX
/// and base(p) = nullptr, exactly the compatibility contract of Section 5
/// of the EffectiveSan paper. Requests larger than the largest class fall
/// back to the system allocator and therefore yield legacy pointers.
///
/// The allocator guarantees that the first 16 bytes of a freed block (the
/// object META header, Section 5) are preserved until the block is
/// reallocated: intrusive free-list links are stored at byte offset 16.
/// An optional FIFO quarantine delays reuse of freed blocks, the same
/// mitigation AddressSanitizer employs (discussed in Section 2.1).
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_LOWFAT_LOWFATHEAP_H
#define EFFECTIVE_LOWFAT_LOWFATHEAP_H

#include "lowfat/SizeClass.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>

namespace effective {
namespace lowfat {

/// Construction-time options for a LowFatHeap.
struct HeapOptions {
  /// Bytes of virtual address space reserved per size-class region.
  /// Must be a power of two.
  uint64_t RegionSize = 1ull << 29;

  /// Maximum bytes of freed blocks held in quarantine before reuse;
  /// 0 disables the quarantine.
  size_t QuarantineBytes = 0;
};

/// Point-in-time allocator statistics. The heap tracks block (size-class
/// rounded) bytes — the real memory footprint; requested-byte accounting
/// lives in the typed runtime, which knows each object's META header.
struct HeapStats {
  /// Block bytes currently live.
  uint64_t BlockBytesInUse = 0;
  /// High-water mark of BlockBytesInUse.
  uint64_t PeakBlockBytesInUse = 0;
  uint64_t NumAllocs = 0;
  uint64_t NumFrees = 0;
  /// Allocations that fell back to the system allocator.
  uint64_t NumLegacyAllocs = 0;
  /// Bytes currently parked in the quarantine.
  uint64_t QuarantinedBytes = 0;
};

/// The low-fat heap. Thread-safe: each region has its own lock and the
/// size/base queries are lock-free reads.
class LowFatHeap {
public:
  explicit LowFatHeap(const HeapOptions &Options = HeapOptions());
  ~LowFatHeap();

  LowFatHeap(const LowFatHeap &) = delete;
  LowFatHeap &operator=(const LowFatHeap &) = delete;

  /// Allocates \p Size bytes (never returns null; aborts on OOM). The
  /// result is a low-fat pointer unless \p Size exceeds the largest size
  /// class, in which case it is a legacy pointer.
  void *allocate(size_t Size);

  /// Frees a pointer previously returned by allocate(). Interior
  /// pointers are rejected by assertion. The first 16 bytes of the block
  /// remain intact until the block is handed out again.
  void deallocate(void *Ptr);

  /// Returns true if \p Ptr points into the low-fat arena (including
  /// one-past-the-end of an allocated block).
  bool isLowFat(const void *Ptr) const;

  /// True if \p Ptr lies anywhere inside the reserved arena. The whole
  /// arena is demand-paged read/write, so accesses inside it are
  /// host-safe even when they are program errors — which is what lets
  /// the interpreter keep executing after logging an error, as the
  /// paper's logging mode does.
  bool isInArena(const void *Ptr) const {
    uintptr_t P = reinterpret_cast<uintptr_t>(Ptr);
    return P >= ArenaBase && P < ArenaEnd;
  }

  /// The paper's size(p): the allocation (size-class) size for low-fat
  /// pointers, SIZE_MAX for legacy pointers.
  size_t allocationSize(const void *Ptr) const;

  /// The paper's base(p): the start of the allocated block for low-fat
  /// pointers, nullptr for legacy pointers.
  void *allocationBase(const void *Ptr) const;

  /// Size class index for a low-fat pointer. \pre isLowFat(Ptr).
  unsigned allocationClass(const void *Ptr) const;

  /// Snapshot of the statistics.
  HeapStats stats() const;

  /// Resets the peak counters to the current values (used between
  /// benchmark phases).
  void resetPeaks();

  /// The region size this heap actually reserved (options may be reduced
  /// if the initial reservation fails).
  uint64_t regionSize() const { return RegionSize; }

  /// The process-wide heap used by the EffectiveSan runtime.
  static LowFatHeap &global();

private:
  struct FreeNode;

  /// Per-size-class region state.
  struct Region {
    std::mutex Lock;
    /// Next never-allocated address (absolute). Atomic so isLowFat() can
    /// read it without taking Lock.
    std::atomic<uintptr_t> Bump{0};
    uintptr_t Begin = 0;
    uintptr_t End = 0;
    FreeNode *FreeList = nullptr;
  };

  void *allocateLegacy(size_t Size);
  bool deallocateLegacy(void *Ptr);
  void reclaim(void *Ptr, unsigned ClassIndex);
  void noteAlloc(size_t Block, bool Legacy);
  void noteFree(size_t Block);

  unsigned regionIndexFor(uintptr_t P) const {
    return static_cast<unsigned>((P - ArenaBase) >> RegionShift);
  }

  uint64_t RegionSize = 0;
  unsigned RegionShift = 0;
  uintptr_t ArenaBase = 0;
  uintptr_t ArenaEnd = 0;
  size_t ArenaBytes = 0;
  Region Regions[NumSizeClasses];

  size_t QuarantineLimit = 0;
  mutable std::mutex QuarantineLock;
  std::deque<std::pair<void *, unsigned>> Quarantine;
  std::atomic<uint64_t> QuarantineBytes{0};

  mutable std::mutex LegacyLock;
  std::unordered_map<void *, size_t> LegacyAllocs;

  mutable std::mutex StatsLock;
  HeapStats Stats;
};

} // namespace lowfat
} // namespace effective

#endif // EFFECTIVE_LOWFAT_LOWFATHEAP_H
