//===- lowfat/LowFatHeap.h - Low-fat pointer heap allocator -----*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A user-space reimplementation of the low-fat pointer heap allocator
/// (Duck & Yap, "Heap Bounds Protection with Low Fat Pointers", CC 2016):
/// one large virtual-memory arena is reserved up front and subdivided into
/// one region per size class. An allocation of class C is placed at a
/// multiple of classSize(C) bytes from the base of region C, so that for
/// any interior pointer p:
///
///   size(p) = classSize((p - ArenaBase) / RegionSize)          -- O(1)
///   base(p) = p - ((p - regionBase) mod classSize)             -- O(1)
///
/// Pointers outside the arena are "legacy" pointers: size(p) = SIZE_MAX
/// and base(p) = nullptr, exactly the compatibility contract of Section 5
/// of the EffectiveSan paper. Requests larger than the largest class fall
/// back to the system allocator and therefore yield legacy pointers.
///
/// The allocator guarantees that the first 16 bytes of a freed block (the
/// object META header, Section 5) are preserved until the block is
/// reallocated: intrusive free-list links are stored at byte offset 16.
/// An optional FIFO quarantine delays reuse of freed blocks, the same
/// mitigation AddressSanitizer employs (discussed in Section 2.1).
///
/// Sharding (HeapOptions::NumShards > 1): each size-class region is
/// carved into NumShards contiguous sub-arenas, each with its own bump
/// pointer, free list and lock, so that concurrent worker threads bound
/// to distinct shards never contend on allocation. Because every shard's
/// slice starts at a multiple of the class size from the region base, the
/// size(p)/base(p) arithmetic above is unchanged and remains valid for
/// pointers allocated on *any* shard — a shard is a placement policy,
/// not a separate address space. Cross-shard frees are allowed (the block
/// returns to its owning shard's free list). All metadata queries stay
/// lock-free.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_LOWFAT_LOWFATHEAP_H
#define EFFECTIVE_LOWFAT_LOWFATHEAP_H

#include "lowfat/SizeClass.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace effective {
namespace lowfat {

/// Construction-time options for a LowFatHeap.
struct HeapOptions {
  /// Bytes of virtual address space reserved per size-class region.
  /// Must be a power of two. With NumShards > 1, at most 2^31 so the
  /// shard-of-address division stays a single high multiply.
  uint64_t RegionSize = 1ull << 29;

  /// Maximum bytes of freed blocks held in quarantine before reuse;
  /// 0 disables the quarantine. With sharding the budget applies to
  /// each shard's private quarantine.
  size_t QuarantineBytes = 0;

  /// Number of per-shard sub-arenas each size-class region is carved
  /// into (clamped to [1, MaxHeapShards]). 1 = the classic single-arena
  /// heap.
  unsigned NumShards = 1;
};

/// Hard cap on NumShards (keeps the per-(class, shard) state bounded).
inline constexpr unsigned MaxHeapShards = 256;

/// Point-in-time allocator statistics. The heap tracks block (size-class
/// rounded) bytes — the real memory footprint; requested-byte accounting
/// lives in the typed runtime, which knows each object's META header.
/// For sharded heaps stats() sums over the shards; PeakBlockBytesInUse
/// is the sum of per-shard peaks (an upper bound on the true combined
/// peak, exact for a single shard).
struct HeapStats {
  /// Block bytes currently live.
  uint64_t BlockBytesInUse = 0;
  /// High-water mark of BlockBytesInUse.
  uint64_t PeakBlockBytesInUse = 0;
  uint64_t NumAllocs = 0;
  uint64_t NumFrees = 0;
  /// Allocations that fell back to the system allocator.
  uint64_t NumLegacyAllocs = 0;
  /// Bytes currently parked in the quarantine.
  uint64_t QuarantinedBytes = 0;
};

/// The low-fat heap. Thread-safe: each (size class, shard) sub-arena has
/// its own lock and the size/base queries are lock-free reads.
class LowFatHeap {
public:
  explicit LowFatHeap(const HeapOptions &Options = HeapOptions());
  ~LowFatHeap();

  LowFatHeap(const LowFatHeap &) = delete;
  LowFatHeap &operator=(const LowFatHeap &) = delete;

  /// Allocates \p Size bytes from shard 0 (never returns null; aborts on
  /// OOM). The result is a low-fat pointer unless \p Size exceeds the
  /// largest size class, in which case it is a legacy pointer.
  void *allocate(size_t Size) { return allocateOnShard(Size, 0); }

  /// Allocates \p Size bytes from shard \p Shard's sub-arenas. Falls
  /// back to the system allocator (legacy pointer) when the request is
  /// oversized or the shard's slice of the class region is exhausted.
  void *allocateOnShard(size_t Size, unsigned Shard);

  /// Frees a pointer previously returned by allocate()/allocateOnShard()
  /// — from any thread and any shard; the block returns to its owning
  /// shard's free list (or quarantine). Interior pointers are rejected
  /// by assertion. The first 16 bytes of the block remain intact until
  /// the block is handed out again.
  void deallocate(void *Ptr);

  /// Returns true if \p Ptr points into the low-fat arena (including
  /// one-past-the-end of an allocated block).
  bool isLowFat(const void *Ptr) const;

  /// True if \p Ptr lies anywhere inside the reserved arena. The whole
  /// arena is demand-paged read/write, so accesses inside it are
  /// host-safe even when they are program errors — which is what lets
  /// the interpreter keep executing after logging an error, as the
  /// paper's logging mode does.
  bool isInArena(const void *Ptr) const {
    uintptr_t P = reinterpret_cast<uintptr_t>(Ptr);
    return P >= ArenaBase && P < ArenaEnd;
  }

  /// The paper's size(p): the allocation (size-class) size for low-fat
  /// pointers, SIZE_MAX for legacy pointers.
  size_t allocationSize(const void *Ptr) const;

  /// The paper's base(p): the start of the allocated block for low-fat
  /// pointers, nullptr for legacy pointers.
  void *allocationBase(const void *Ptr) const;

  /// Size class index for a low-fat pointer. \pre isLowFat(Ptr).
  unsigned allocationClass(const void *Ptr) const;

  /// The shard whose sub-arena contains a low-fat pointer — pure
  /// address arithmetic, like base(p). \pre isLowFat(Ptr).
  unsigned shardOf(const void *Ptr) const;

  /// Number of per-shard sub-arenas.
  unsigned numShards() const { return Shards; }

  /// Recycles one shard's sub-arenas: drops its free lists and
  /// quarantine, rewinds its bump pointers and zeroes its statistics.
  /// Every low-fat pointer ever served by the shard becomes invalid
  /// (legacy) and its addresses will be handed out again.
  ///
  /// \pre No live pointers from this shard are dereferenced afterwards
  /// and no thread is concurrently allocating on or freeing to it.
  /// Legacy (oversized) blocks are not recycled.
  void resetShard(unsigned Shard);

  /// Snapshot of the statistics (summed over shards).
  HeapStats stats() const;

  /// Snapshot of one shard's statistics.
  HeapStats shardStats(unsigned Shard) const;

  /// Resets the peak counters to the current values (used between
  /// benchmark phases).
  void resetPeaks();

  /// The region size this heap actually reserved (options may be reduced
  /// if the initial reservation fails).
  uint64_t regionSize() const { return RegionSize; }

  /// The process-wide heap used by the EffectiveSan runtime.
  static LowFatHeap &global();

private:
  struct FreeNode;

  /// Per-(size class, shard) sub-arena state.
  struct SubRegion {
    std::mutex Lock;
    /// Next never-allocated address (absolute). Atomic so isLowFat() can
    /// read it without taking Lock.
    std::atomic<uintptr_t> Bump{0};
    uintptr_t Begin = 0;
    uintptr_t End = 0;
    FreeNode *FreeList = nullptr;
  };

  /// Per-size-class region geometry (immutable after construction).
  struct Region {
    uintptr_t Begin = 0;
    /// Bytes of each shard's slice — a multiple of the class size so
    /// every slice starts on a class-aligned boundary (0 when the class
    /// is too large to split across the shards; such classes serve only
    /// legacy fallbacks).
    uint64_t SubCapacity = 0;
    /// End of the last shard's slice (Begin + SubCapacity * NumShards).
    uintptr_t UsableEnd = 0;
    /// Lemire magic for dividing an in-region offset by SubCapacity
    /// (exact because both fit in 32 bits); unused when Shards == 1.
    uint64_t SubMagic = 0;
  };

  /// Per-shard statistics, cache-line separated; all relaxed atomics.
  struct alignas(64) ShardCounters {
    std::atomic<uint64_t> BlockBytesInUse{0};
    std::atomic<uint64_t> PeakBlockBytesInUse{0};
    std::atomic<uint64_t> NumAllocs{0};
    std::atomic<uint64_t> NumFrees{0};
    std::atomic<uint64_t> NumLegacyAllocs{0};
    std::atomic<uint64_t> QuarantinedBytes{0};
  };

  /// Per-shard FIFO quarantine of (block, class) pairs.
  struct ShardQuarantine {
    std::mutex Lock;
    std::deque<std::pair<void *, unsigned>> Blocks;
  };

  void *allocateLegacy(size_t Size, unsigned Shard);
  bool deallocateLegacy(void *Ptr);
  void reclaim(void *Ptr, unsigned ClassIndex, unsigned Shard);
  void noteAlloc(unsigned Shard, size_t Block, bool Legacy);
  void noteFree(unsigned Shard, size_t Block);

  unsigned regionIndexFor(uintptr_t P) const {
    return static_cast<unsigned>((P - ArenaBase) >> RegionShift);
  }

  /// The shard whose slice of \p R contains in-region offset \p Off.
  unsigned subIndexFor(const Region &R, uint64_t Off) const {
    if (Shards == 1)
      return 0;
    return static_cast<unsigned>(
        (static_cast<__uint128_t>(Off) * R.SubMagic) >> 64);
  }

  SubRegion &subRegion(unsigned ClassIndex, unsigned Shard) {
    return Subs[ClassIndex * Shards + Shard];
  }
  const SubRegion &subRegion(unsigned ClassIndex, unsigned Shard) const {
    return Subs[ClassIndex * Shards + Shard];
  }

  uint64_t RegionSize = 0;
  unsigned RegionShift = 0;
  unsigned Shards = 1;
  uintptr_t ArenaBase = 0;
  uintptr_t ArenaEnd = 0;
  size_t ArenaBytes = 0;
  Region Regions[NumSizeClasses];
  /// Flat [class][shard] sub-arena table.
  std::unique_ptr<SubRegion[]> Subs;
  std::unique_ptr<ShardCounters[]> Counters;

  size_t QuarantineLimit = 0;
  std::unique_ptr<ShardQuarantine[]> Quarantines;

  mutable std::mutex LegacyLock;
  /// Legacy block -> (size, allocating shard).
  std::unordered_map<void *, std::pair<size_t, unsigned>> LegacyAllocs;
};

} // namespace lowfat
} // namespace effective

#endif // EFFECTIVE_LOWFAT_LOWFATHEAP_H
