//===- instrument/InstrumentPass.h - Figure 3 schema ------------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic type check instrumentation pass — the Figure 3 schema of
/// the paper applied to our IR:
///
///   (a) pointer parameters are type-checked at function entry;
///   (b) pointer call returns are type-checked;
///   (c) pointers loaded from memory are type-checked;
///   (d) pointer casts are type-checked;
///   (e) field access narrows bounds (bounds_narrow);
///   (f) pointer arithmetic propagates bounds unchanged;
///   (g) every pointer use is bounds-checked, and so is every escape
///       (stores of pointer values, pointer call arguments).
///
/// The pass implements the paper's three evaluation variants plus the
/// uninstrumented baseline (Section 6.2):
///
///   * Full   — the schema above ("check everything");
///   * Bounds — rules (a)-(d) emit bounds_get instead of type_check and
///              rule (e) is dropped (allocation bounds only);
///   * Type   — rule (d) only, applied to every cast whether or not the
///              result is used; no bounds checking at all;
///   * None   — identity.
///
/// And the paper's optimizations (Section 6, "basic optimizations"):
/// instrumenting only used pointers, removing checks that can never
/// fail, and removing subsumed bounds checks. Each can be toggled for
/// the ablation benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_INSTRUMENT_INSTRUMENTPASS_H
#define EFFECTIVE_INSTRUMENT_INSTRUMENTPASS_H

#include "ir/IR.h"

namespace effective {
namespace instrument {

/// The paper's evaluation variants.
enum class Variant : uint8_t { None, Type, Bounds, Full };

/// Returns "EffectiveSan (full)" etc.
std::string_view variantName(Variant V);

/// Pass configuration.
struct InstrumentOptions {
  Variant V = Variant::Full;
  /// Instrument only pointers that are used or escape (paper default).
  bool OnlyUsedPointers = true;
  /// Elide type checks that can never fail (e.g. a cast that does not
  /// change the pointee type, or the cast of a fresh matching malloc).
  bool ElideNeverFailingChecks = true;
  /// Remove bounds checks subsumed by an earlier check of the same
  /// pointer against the same bounds within a block.
  bool ElideSubsumedChecks = true;
  /// Run the post-instrumentation cross-block merge: remove a check
  /// when an identical check is must-available on every path into its
  /// block (see CheckOptimizer.h). Applied by the pipeline driver,
  /// after instrumentModule.
  bool MergeCrossBlockChecks = true;
};

/// Static counts of what the pass did (per module).
struct InstrumentStats {
  uint64_t TypeChecks = 0;
  uint64_t BoundsGets = 0;
  uint64_t BoundsChecks = 0;
  uint64_t BoundsNarrows = 0;
  /// Checks not inserted thanks to the never-fail rule.
  uint64_t ElidedNeverFail = 0;
  /// bounds_checks removed by the subsumption rule.
  uint64_t ElidedSubsumed = 0;
  /// Checks removed by the cross-block merge pass (pipeline only).
  uint64_t ElidedCrossBlock = 0;
  /// Pointer registers that attracted no instrumentation because they
  /// are never used (the paper's cast-and-return case).
  uint64_t UnusedPointers = 0;
  /// Check-site ids allocated for this module (the dense SiteId space
  /// the runtime's type-check inline cache is indexed by).
  uint64_t CheckSites = 0;
};

/// Instruments \p M in place according to \p Opts.
InstrumentStats instrumentModule(ir::Module &M,
                                 const InstrumentOptions &Opts);

} // namespace instrument
} // namespace effective

#endif // EFFECTIVE_INSTRUMENT_INSTRUMENTPASS_H
