//===- instrument/Lowering.h - MiniC AST to IR ------------------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a type-checked MiniC translation unit to IR. Lowering emits
/// *uninstrumented* IR — all dynamic checks are inserted afterwards by
/// InstrumentPass, mirroring the paper's two-step pipeline (type
/// annotated IR, then the Figure 3 instrumentation schema).
///
/// Scalar locals whose address is never taken are promoted to mutable
/// virtual registers (the moral equivalent of LLVM's mem2reg), so
/// re-assignment of a pointer variable redefines its register — which
/// is exactly where the schema re-checks it (Figure 4 line 10).
/// Address-taken and aggregate locals become typed stack slots that the
/// interpreter materializes through the low-fat stack allocator.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_INSTRUMENT_LOWERING_H
#define EFFECTIVE_INSTRUMENT_LOWERING_H

#include "ir/IR.h"
#include "minic/AST.h"

#include <memory>

namespace effective {
namespace instrument {

/// Lowers \p Unit to a fresh IR module. Problems (unsupported
/// constructs) are reported to \p Diags; returns null if any were
/// errors. \p Unit must have passed Sema.
std::unique_ptr<ir::Module> lowerToIR(const minic::TranslationUnit &Unit,
                                      TypeContext &Types,
                                      DiagnosticEngine &Diags);

} // namespace instrument
} // namespace effective

#endif // EFFECTIVE_INSTRUMENT_LOWERING_H
