//===- instrument/InstrumentPass.cpp - Figure 3 schema --------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "instrument/InstrumentPass.h"

#include <unordered_map>
#include <vector>

using namespace effective;
using namespace effective::instrument;
using namespace effective::ir;

std::string_view instrument::variantName(Variant V) {
  switch (V) {
  case Variant::None:
    return "Uninstrumented";
  case Variant::Type:
    return "EffectiveSan-type";
  case Variant::Bounds:
    return "EffectiveSan-bounds";
  case Variant::Full:
    return "EffectiveSan (full)";
  }
  return "<bad-variant>";
}

namespace {

/// Per-function instrumentation.
class FunctionInstrumenter {
public:
  FunctionInstrumenter(Module &M, Function &F,
                       const InstrumentOptions &Opts,
                       InstrumentStats &Stats)
      : M(M), F(F), Opts(Opts), Stats(Stats) {}

  void run() {
    markEscapingSlots();
    if (Opts.V == Variant::None)
      return;
    computeNeeded();
    allocateBoundsRegs();
    for (BlockId B = 0; B < F.Blocks.size(); ++B)
      instrumentBlock(B);
    if (Opts.ElideSubsumedChecks && Opts.V != Variant::Type)
      for (Block &B : F.Blocks)
        removeSubsumed(B);
  }

private:
  bool isPointerReg(Reg R) const {
    const TypeInfo *T = F.regType(R);
    return T && T->isPointer();
  }

  const TypeInfo *pointeeOf(Reg R) const {
    const auto *PT = dyn_cast_if_present<PointerType>(F.regType(R));
    return PT ? PT->pointee() : nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Slot escape analysis
  //===--------------------------------------------------------------------===//

  /// Marks stack slots whose address escapes the frame: a slot-derived
  /// pointer stored as a *value*, passed to a call, or returned. Only
  /// escaping slots can dangle after the frame pops, so only they pay
  /// the use-after-return quarantine delay at runtime. The marking is a
  /// property of the IR, not of the check variant, so it runs for every
  /// variant (including Variant::None) — both engines then allocate
  /// identically across all variants.
  void markEscapingSlots() {
    if (F.Slots.empty())
      return;
    // PointsTo[R] = bitset over slots register R may address.
    size_t NumSlots = F.Slots.size();
    std::vector<std::vector<bool>> PointsTo(
        F.numRegs(), std::vector<bool>(NumSlots, false));
    auto merge = [&](Reg Dst, Reg Src) {
      if (Dst == NoReg || Src == NoReg || Dst >= PointsTo.size() ||
          Src >= PointsTo.size())
        return false;
      bool Changed = false;
      for (size_t S = 0; S < NumSlots; ++S)
        if (PointsTo[Src][S] && !PointsTo[Dst][S]) {
          PointsTo[Dst][S] = true;
          Changed = true;
        }
      return Changed;
    };
    // Seed from slot_addr, then propagate through derived pointers to a
    // fixed point (covers loops and out-of-order block layouts).
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const Block &B : F.Blocks) {
        for (const Instr &I : B.Instrs) {
          switch (I.Op) {
          case Opcode::SlotAddr:
            if (I.Dst != NoReg && I.Imm < NumSlots &&
                !PointsTo[I.Dst][I.Imm]) {
              PointsTo[I.Dst][I.Imm] = true;
              Changed = true;
            }
            break;
          case Opcode::IndexAddr:
          case Opcode::FieldAddr:
          case Opcode::Copy:
          case Opcode::PtrCast:
            Changed |= merge(I.Dst, I.A);
            break;
          default:
            break;
          }
        }
      }
    }
    auto escape = [&](Reg R) {
      if (R == NoReg || R >= PointsTo.size())
        return;
      for (size_t S = 0; S < NumSlots; ++S)
        if (PointsTo[R][S])
          F.Slots[S].Escapes = true;
    };
    for (const Block &B : F.Blocks) {
      for (const Instr &I : B.Instrs) {
        switch (I.Op) {
        case Opcode::Store:
          escape(I.B); // The *value* operand; storing through I.A is
                       // a dereference, not an escape.
          break;
        case Opcode::Call:
        case Opcode::CallBuiltin:
          for (Reg Arg : I.Args)
            escape(Arg);
          break;
        case Opcode::Ret:
          escape(I.A);
          break;
        default:
          break;
        }
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Used-pointer analysis
  //===--------------------------------------------------------------------===//

  /// A pointer register needs bounds if it is dereferenced or escapes
  /// (stored to memory, passed to a function), directly or through a
  /// derived pointer. A cast-and-returned pointer attracts nothing —
  /// "it is the responsibility of the eventual user of the pointer to
  /// check the type" (Section 4).
  void computeNeeded() {
    Needed.assign(F.numRegs(), !Opts.OnlyUsedPointers);
    if (!Opts.OnlyUsedPointers) {
      for (Reg R = 0; R < F.numRegs(); ++R)
        Needed[R] = isPointerReg(R);
      return;
    }
    auto mark = [&](Reg R) {
      if (R != NoReg && isPointerReg(R))
        Needed[R] = true;
    };
    for (const Block &B : F.Blocks) {
      for (const Instr &I : B.Instrs) {
        switch (I.Op) {
        case Opcode::Load:
          mark(I.A);
          break;
        case Opcode::Store:
          mark(I.A);
          mark(I.B); // Escape: a pointer value written to memory.
          break;
        case Opcode::Call:
        case Opcode::CallBuiltin:
          for (Reg Arg : I.Args)
            mark(Arg); // Escape: passed as a parameter.
          break;
        case Opcode::Free:
          mark(I.A);
          break;
        default:
          break;
        }
      }
    }
    // Propagate from derived pointers back to their bases until fixed
    // point (bounds of the base are required to derive the bounds of
    // the result).
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const Block &B : F.Blocks) {
        for (const Instr &I : B.Instrs) {
          Reg Base = NoReg;
          switch (I.Op) {
          case Opcode::IndexAddr:
          case Opcode::FieldAddr:
          case Opcode::Copy:
          case Opcode::PtrCast:
            Base = I.A;
            break;
          default:
            continue;
          }
          if (I.Dst != NoReg && I.Dst < Needed.size() && Needed[I.Dst] &&
              Base != NoReg && isPointerReg(Base) && !Needed[Base]) {
            Needed[Base] = true;
            Changed = true;
          }
        }
      }
    }
    for (Reg R = 0; R < F.numRegs(); ++R)
      if (isPointerReg(R) && !Needed[R])
        ++Stats.UnusedPointers;
  }

  void allocateBoundsRegs() {
    BoundsOf.assign(F.numRegs(), NoBReg);
    if (Opts.V == Variant::Type)
      return; // Cast checks discard their BOUNDS result.
    for (Reg R = 0; R < F.numRegs(); ++R)
      if (Needed[R])
        BoundsOf[R] = F.newBReg();
  }

  BReg boundsFor(Reg R) const {
    return R < BoundsOf.size() ? BoundsOf[R] : NoBReg;
  }

  //===--------------------------------------------------------------------===//
  // Instrumentation proper
  //===--------------------------------------------------------------------===//

  /// The input-pointer check of rules (a)-(d): type_check under Full,
  /// bounds_get under Bounds. Appends to \p Out, defining \p Dst's
  /// bounds register.
  void emitInputCheck(std::vector<Instr> &Out, Reg Ptr,
                      const TypeInfo *Pointee, SourceLoc Loc, BReg Into) {
    Instr C;
    C.A = Ptr;
    C.BDst = Into;
    C.Loc = Loc;
    if (Opts.V == Variant::Full || Opts.V == Variant::Type) {
      C.Op = Opcode::TypeCheck;
      C.Type = Pointee;
      C.Site = M.newCheckSite(CheckSiteKind::TypeCheck, Loc, Pointee,
                              F.name());
      ++Stats.TypeChecks;
    } else {
      C.Op = Opcode::BoundsGet;
      C.Site = M.newCheckSite(CheckSiteKind::BoundsGet, Loc, Pointee,
                              F.name());
      ++Stats.BoundsGets;
    }
    Out.push_back(std::move(C));
  }

  void emitBoundsCheck(std::vector<Instr> &Out, Reg Ptr, uint64_t Size,
                       SourceLoc Loc) {
    BReg B = boundsFor(Ptr);
    if (B == NoBReg)
      return; // Untracked pointer (shouldn't happen for needed regs).
    Instr C;
    C.Op = Opcode::BoundsCheck;
    C.A = Ptr;
    C.Imm = Size;
    C.BSrc = B;
    C.Loc = Loc;
    C.Site = M.newCheckSite(CheckSiteKind::BoundsCheck, Loc,
                            F.regType(Ptr), F.name());
    ++Stats.BoundsChecks;
    Out.push_back(std::move(C));
  }

  /// Copies bounds from \p Src's to \p Dst's bounds register by setting
  /// the producing instruction's BSrc/BDst (zero-runtime-cost rule (f)).
  void propagateBounds(Instr &I, Reg Dst, Reg Src) {
    BReg D = boundsFor(Dst);
    if (D == NoBReg)
      return;
    I.BDst = D;
    I.BSrc = boundsFor(Src); // NoBReg => interpreter uses wide bounds.
  }

  void instrumentBlock(BlockId BId) {
    Block &B = F.Blocks[BId];
    std::vector<Instr> Out;
    Out.reserve(B.Instrs.size() * 2);

    // Rule (a): parameters are inputs, checked once at function entry.
    if (BId == 0 && Opts.V != Variant::Type) {
      for (const Param &P : F.Params) {
        if (!isPointerReg(P.R) || !Needed[P.R])
          continue;
        // Attribute the entry check to the parameter's declaration loc
        // so the report reads "at file:line:col in func" like every
        // other check (the front end donates P.Loc).
        emitInputCheck(Out, P.R, pointeeOf(P.R), P.Loc, boundsFor(P.R));
      }
    }

    // Definitions seen in this block (for the never-fail elision).
    DefOp.clear();

    for (Instr &I : B.Instrs) {
      switch (I.Op) {
      case Opcode::Load:
        // Rule (g): check the access.
        if (Opts.V != Variant::Type)
          emitBoundsCheck(Out, I.A, I.Type->size(), I.Loc);
        Out.push_back(I);
        // Rule (c): a pointer read from memory is an input.
        if (Opts.V != Variant::Type && isPointerReg(I.Dst) &&
            Needed[I.Dst])
          emitInputCheck(Out, I.Dst, pointeeOf(I.Dst), I.Loc,
                         boundsFor(I.Dst));
        break;

      case Opcode::Store:
        if (Opts.V != Variant::Type) {
          emitBoundsCheck(Out, I.A, I.Type->size(), I.Loc);
          // Rule (g): escape of a stored pointer value.
          if (isPointerReg(I.B))
            emitBoundsCheck(Out, I.B, 0, I.Loc);
        }
        Out.push_back(I);
        break;

      case Opcode::Call:
      case Opcode::CallBuiltin: {
        if (Opts.V != Variant::Type)
          for (Reg Arg : I.Args)
            if (isPointerReg(Arg))
              emitBoundsCheck(Out, Arg, 0, I.Loc); // Escape.
        Reg Dst = I.Dst;
        SourceLoc Loc = I.Loc;
        Out.push_back(I);
        // Rule (b): a pointer call return is an input.
        if (Opts.V != Variant::Type && Dst != NoReg && isPointerReg(Dst) &&
            Needed[Dst])
          emitInputCheck(Out, Dst, pointeeOf(Dst), Loc, boundsFor(Dst));
        break;
      }

      case Opcode::Malloc:
      case Opcode::SlotAddr:
      case Opcode::GlobalAddr:
      case Opcode::StringAddr:
        // Fresh objects: the allocation bounds are known without any
        // check (the never-fail rule folds rule (b) away here).
        if (Opts.V != Variant::Type)
          I.BDst = boundsFor(I.Dst);
        Out.push_back(I);
        break;

      case Opcode::IndexAddr:
        // Rule (f): pointer arithmetic propagates bounds unchanged.
        if (Opts.V != Variant::Type)
          propagateBounds(I, I.Dst, I.A);
        Out.push_back(I);
        break;

      case Opcode::FieldAddr: {
        Reg Dst = I.Dst, BaseReg = I.A;
        const auto *Rec = cast<RecordType>(I.Type);
        uint64_t FieldSize = Rec->fields()[I.Imm].Type->size();
        SourceLoc Loc = I.Loc;
        if (Opts.V != Variant::Type)
          propagateBounds(I, Dst, BaseReg);
        Out.push_back(I);
        // Rule (e): narrow to the selected member — Full only; the
        // -bounds variant enforces allocation bounds.
        if (Opts.V == Variant::Full && boundsFor(Dst) != NoBReg) {
          Instr N;
          N.Op = Opcode::BoundsNarrow;
          N.A = Dst;
          N.Imm = FieldSize;
          N.BSrc = boundsFor(BaseReg) != NoBReg ? boundsFor(BaseReg)
                                                : boundsFor(Dst);
          N.BDst = boundsFor(Dst);
          N.Loc = Loc;
          N.Site = M.newCheckSite(CheckSiteKind::BoundsNarrow, Loc,
                                  Rec->fields()[I.Imm].Type, F.name());
          ++Stats.BoundsNarrows;
          Out.push_back(std::move(N));
        }
        break;
      }

      case Opcode::Copy:
        if (Opts.V != Variant::Type && isPointerReg(I.Dst))
          propagateBounds(I, I.Dst, I.A);
        Out.push_back(I);
        break;

      case Opcode::PtrCast: {
        Reg Dst = I.Dst, Src = I.A;
        const TypeInfo *Target = I.Type;
        bool IsDecay = I.Imm == 1;
        SourceLoc Loc = I.Loc;
        bool SamePointee =
            isPointerReg(Src) && pointeeOf(Src) == Target;
        bool FreshMatchingMalloc = isFreshMatchingMalloc(Src, Target);
        // The paper's "e.g., C++ upcasts": a cast to the type of a
        // leading prefix of the source record cannot introduce a type
        // error the source did not already have.
        bool Upcast = isPrefixUpcast(pointeeOf(Src), Target);
        bool NeverFails =
            IsDecay ||
            (Opts.ElideNeverFailingChecks &&
             (SamePointee || FreshMatchingMalloc || Upcast));

        if (Opts.V == Variant::Type) {
          // Rule (d) regardless of use (Section 6.2).
          Out.push_back(I);
          if (!NeverFails) {
            Instr C;
            C.Op = Opcode::TypeCheck;
            C.A = Dst;
            C.Type = Target;
            C.BDst = scratchBReg();
            C.Loc = Loc;
            C.Site = M.newCheckSite(CheckSiteKind::TypeCheck, Loc, Target,
                                    F.name());
            ++Stats.TypeChecks;
            Out.push_back(std::move(C));
          } else if (!IsDecay) {
            ++Stats.ElidedNeverFail;
          }
          break;
        }

        if (NeverFails && boundsFor(Src) != NoBReg) {
          propagateBounds(I, Dst, Src);
          Out.push_back(I);
          if (!IsDecay)
            ++Stats.ElidedNeverFail;
          break;
        }
        Out.push_back(I);
        if (boundsFor(Dst) != NoBReg)
          emitInputCheck(Out, Dst, Target, Loc, boundsFor(Dst));
        break;
      }

      default:
        Out.push_back(I);
        break;
      }

      // Track the defining opcode of each register (block-local) for
      // the never-fail malloc elision.
      if (I.Dst != NoReg)
        DefOp[I.Dst] = {I.Op, I.Type};
    }

    B.Instrs = std::move(Out);
  }

  bool isFreshMatchingMalloc(Reg Src, const TypeInfo *Target) const {
    auto It = DefOp.find(Src);
    if (It == DefOp.end())
      return false;
    return It->second.first == Opcode::Malloc &&
           It->second.second == Target;
  }

  /// True when \p Target is reachable from \p Source by descending
  /// through leading (offset-0) members — the embedded-base-class
  /// pattern, guaranteed to have a matching sub-object at offset 0.
  static bool isPrefixUpcast(const TypeInfo *Source,
                             const TypeInfo *Target) {
    while (Source && Source != Target) {
      const auto *Rec = dyn_cast<RecordType>(Source);
      if (!Rec || !Rec->isComplete() || Rec->fields().empty())
        return false;
      const FieldInfo &First = Rec->fields().front();
      if (First.Offset != 0)
        return false;
      Source = First.Type;
    }
    return Source == Target;
  }

  /// A throwaway bounds register for -type cast checks (result unused).
  BReg scratchBReg() {
    if (Scratch == NoBReg)
      Scratch = F.newBReg();
    return Scratch;
  }

  //===--------------------------------------------------------------------===//
  // Subsumed-check removal
  //===--------------------------------------------------------------------===//

  /// Within a block, a bounds_check of (P, B) with size S is subsumed
  /// by an earlier bounds_check of the same pair with size >= S,
  /// provided neither P nor B was redefined in between.
  void removeSubsumed(Block &B) {
    struct Key {
      Reg P;
      BReg Bounds;
      bool operator==(const Key &) const = default;
    };
    struct KeyHash {
      size_t operator()(const Key &K) const {
        return std::hash<uint64_t>()((uint64_t(K.P) << 32) | K.Bounds);
      }
    };
    std::unordered_map<Key, uint64_t, KeyHash> Checked;

    std::vector<Instr> Out;
    Out.reserve(B.Instrs.size());
    for (Instr &I : B.Instrs) {
      if (I.Op == Opcode::BoundsCheck) {
        Key K{I.A, I.BSrc};
        auto It = Checked.find(K);
        if (It != Checked.end() && I.Imm <= It->second) {
          ++Stats.ElidedSubsumed;
          --Stats.BoundsChecks;
          continue;
        }
        uint64_t &Size = Checked[K];
        if (I.Imm > Size)
          Size = I.Imm;
        Out.push_back(I);
        continue;
      }
      // Redefinitions invalidate.
      if (I.Dst != NoReg)
        std::erase_if(Checked,
                      [&](const auto &E) { return E.first.P == I.Dst; });
      if (I.BDst != NoBReg)
        std::erase_if(Checked, [&](const auto &E) {
          return E.first.Bounds == I.BDst;
        });
      // Calls can free memory, after which a stale check result would
      // mask a use-after-free turned bounds error; be conservative.
      if (I.Op == Opcode::Call || I.Op == Opcode::Free)
        Checked.clear();
      Out.push_back(I);
    }
    B.Instrs = std::move(Out);
  }

  Module &M;
  Function &F;
  const InstrumentOptions &Opts;
  InstrumentStats &Stats;
  std::vector<bool> Needed;
  std::vector<BReg> BoundsOf;
  std::unordered_map<Reg, std::pair<Opcode, const TypeInfo *>> DefOp;
  BReg Scratch = NoBReg;
};

} // namespace

InstrumentStats instrument::instrumentModule(ir::Module &M,
                                             const InstrumentOptions &Opts) {
  InstrumentStats Stats;
  for (auto &F : M.Functions)
    FunctionInstrumenter(M, *F, Opts, Stats).run();
  // Subsumed-check removal may delete sited instructions, so the live
  // count can be below the allocated count; ids stay unique and below
  // Module::numCheckSites either way.
  Stats.CheckSites = M.numCheckSites();
  return Stats;
}
