//===- instrument/CheckOptimizer.h - Pre-pass IR cleanups -------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Block-local value numbering (CSE) with copy propagation over pure
/// instructions. The paper's instrumentation pass runs inside clang's
/// -O2 pipeline, which has already canonicalized repeated address
/// computations; this pass stands in for that. It matters for check
/// quality: two accesses to `s.x` must share one field_addr register,
/// or the subsumed-bounds-check rule (Section 6's "removing subsumed
/// bounds checks") never sees them as the same check.
///
/// Safety: only *pure* instructions are deduplicated, instructions are
/// never reordered, and a definition is only deleted when its register
/// is block-local (read and written in one block only) — mutable
/// registers that carry values across blocks (promoted variables,
/// short-circuit results) are left in place.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_INSTRUMENT_CHECKOPTIMIZER_H
#define EFFECTIVE_INSTRUMENT_CHECKOPTIMIZER_H

#include "ir/IR.h"

namespace effective {
namespace instrument {

/// Statistics for the ablation benchmark.
struct CSEStats {
  uint64_t Deduplicated = 0; ///< Pure instructions removed.
  uint64_t CopiesForwarded = 0;
};

/// Runs block-local CSE + copy propagation on \p F.
CSEStats localCSE(ir::Function &F);

/// Runs localCSE on every function of \p M.
CSEStats localCSE(ir::Module &M);

} // namespace instrument
} // namespace effective

#endif // EFFECTIVE_INSTRUMENT_CHECKOPTIMIZER_H
