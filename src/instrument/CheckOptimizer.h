//===- instrument/CheckOptimizer.h - Pre-pass IR cleanups -------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Block-local value numbering (CSE) with copy propagation over pure
/// instructions. The paper's instrumentation pass runs inside clang's
/// -O2 pipeline, which has already canonicalized repeated address
/// computations; this pass stands in for that. It matters for check
/// quality: two accesses to `s.x` must share one field_addr register,
/// or the subsumed-bounds-check rule (Section 6's "removing subsumed
/// bounds checks") never sees them as the same check.
///
/// Safety: only *pure* instructions are deduplicated, instructions are
/// never reordered, and a definition is only deleted when its register
/// is block-local (read and written in one block only) — mutable
/// registers that carry values across blocks (promoted variables,
/// short-circuit results) are left in place.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_INSTRUMENT_CHECKOPTIMIZER_H
#define EFFECTIVE_INSTRUMENT_CHECKOPTIMIZER_H

#include "ir/IR.h"

namespace effective {
namespace instrument {

/// Statistics for the ablation benchmark.
struct CSEStats {
  uint64_t Deduplicated = 0; ///< Pure instructions removed.
  uint64_t CopiesForwarded = 0;
};

/// Runs block-local CSE + copy propagation on \p F.
CSEStats localCSE(ir::Function &F);

/// Runs localCSE on every function of \p M.
CSEStats localCSE(ir::Module &M);

/// Statistics of the post-instrumentation cross-block check merge.
struct MergeStats {
  uint64_t MergedTypeChecks = 0;
  uint64_t MergedBoundsGets = 0;
  uint64_t MergedBoundsChecks = 0;
  uint64_t merged() const {
    return MergedTypeChecks + MergedBoundsGets + MergedBoundsChecks;
  }
};

/// The post-instrumentation same-site merge pass. localCSE unifies
/// repeated address computations into one register, so the
/// instrumentation pass emits structurally identical checks of that
/// register in *different* blocks — the in-block subsumption rule never
/// sees them. This pass removes a check when an identical check is
/// *must-available* on entry to its block: a forward dataflow in
/// reverse post-order intersects the checks every predecessor
/// guarantees, killing facts on operand/bounds-register redefinition
/// and clearing them at calls and frees (either may free memory, after
/// which replaying a stale check result would mask a use-after-free).
/// Back edges are treated conservatively (no facts), so loop-carried
/// checks are never merged. Removing a type_check/bounds_get is sound
/// because its bounds register still holds the identical earlier
/// result; removing a bounds_check requires the available check to
/// cover at least the same access size.
MergeStats mergeCrossBlockChecks(ir::Function &F);

/// Runs mergeCrossBlockChecks on every function of \p M.
MergeStats mergeCrossBlockChecks(ir::Module &M);

} // namespace instrument
} // namespace effective

#endif // EFFECTIVE_INSTRUMENT_CHECKOPTIMIZER_H
