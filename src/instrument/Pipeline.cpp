//===- instrument/Pipeline.cpp - Source-to-instrumented-IR driver ---------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "instrument/Pipeline.h"

#include "bytecode/Compiler.h"
#include "instrument/CheckOptimizer.h"
#include "instrument/Lowering.h"
#include "ir/Verifier.h"
#include "minic/Parser.h"
#include "minic/Sema.h"

using namespace effective;
using namespace effective::instrument;

InstrumentOptions
instrument::instrumentOptionsFor(CheckPolicy Policy,
                                 const InstrumentOptions &Base) {
  InstrumentOptions Opts = Base;
  switch (Policy) {
  case CheckPolicy::Full:
  case CheckPolicy::CountOnly:
    Opts.V = Variant::Full;
    break;
  case CheckPolicy::BoundsOnly:
    Opts.V = Variant::Bounds;
    break;
  case CheckPolicy::TypeOnly:
    Opts.V = Variant::Type;
    break;
  case CheckPolicy::Off:
    Opts.V = Variant::None;
    break;
  }
  return Opts;
}

CompileResult instrument::compileMiniC(std::string_view Source,
                                       TypeContext &Types,
                                       DiagnosticEngine &Diags,
                                       const InstrumentOptions &Opts,
                                       std::string_view FileName) {
  CompileResult Result;

  minic::ASTContext Ctx(Types);
  minic::TranslationUnit Unit;
  minic::Parser P(Source, Ctx, Diags);
  if (!P.parseUnit(Unit))
    return Result;
  minic::Sema S(Ctx, Diags);
  if (!S.check(Unit))
    return Result;

  std::unique_ptr<ir::Module> M = lowerToIR(Unit, Types, Diags);
  if (!M)
    return Result;
  M->setSourceName(std::string(FileName));
  if (!ir::verifyModule(*M, Diags))
    return Result;

  // The stand-in for the -O2 pipeline the paper's pass runs inside:
  // canonicalize repeated address computations so the subsumed-check
  // rule sees them as one (see CheckOptimizer.h).
  localCSE(*M);
  if (!ir::verifyModule(*M, Diags))
    return Result;

  Result.Stats = instrumentModule(*M, Opts);
  if (!ir::verifyModule(*M, Diags))
    return Result;

  // Post-instrumentation: merge checks duplicated across blocks (CSE
  // unified their operands, so whole check instructions are now
  // structurally identical between blocks).
  if (Opts.MergeCrossBlockChecks && Opts.V != Variant::None) {
    MergeStats Merged = mergeCrossBlockChecks(*M);
    Result.Stats.ElidedCrossBlock = Merged.merged();
    Result.Stats.TypeChecks -= Merged.MergedTypeChecks;
    Result.Stats.BoundsGets -= Merged.MergedBoundsGets;
    Result.Stats.BoundsChecks -= Merged.MergedBoundsChecks;
    if (!ir::verifyModule(*M, Diags))
      return Result;
  }

  // Lower to bytecode while the IR is hot: the VM input is a pipeline
  // product, not a caller afterthought. Verified modules always fit
  // the encoding; a failure here is a compiler bug surfaced as a
  // diagnostic (M is still returned for the tree-walker).
  std::string BcError;
  Result.BC = bytecode::compile(*M, &BcError);
  if (!Result.BC)
    Diags.error(SourceLoc(), "bytecode lowering failed: " + BcError);

  Result.M = std::move(M);
  return Result;
}
