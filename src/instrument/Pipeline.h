//===- instrument/Pipeline.h - Source-to-instrumented-IR driver -*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two-step compilation pipeline of Section 6: parse + type-check
/// MiniC into a type-annotated AST, lower to IR, then instrument with
/// the Figure 3 schema. Used by tests, the ablation benchmark and the
/// minic_sanitizer example driver.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_INSTRUMENT_PIPELINE_H
#define EFFECTIVE_INSTRUMENT_PIPELINE_H

#include "api/CheckPolicy.h"
#include "bytecode/Bytecode.h"
#include "instrument/InstrumentPass.h"
#include "ir/IR.h"

#include <memory>
#include <string_view>

namespace effective {
namespace instrument {

/// Maps a session check policy onto pass options, so the Section 6.2
/// ablation is driven by one CheckPolicy value end to end (compile-time
/// instrumentation here, runtime dispatch in api/Sanitizer.h). \p Base
/// supplies the optimization toggles. CountOnly instruments like Full —
/// the checks must execute to be counted; the session policy is what
/// keeps them from probing or reporting.
InstrumentOptions
instrumentOptionsFor(CheckPolicy Policy,
                     const InstrumentOptions &Base = InstrumentOptions());

/// The result of compiling one MiniC source buffer.
struct CompileResult {
  std::unique_ptr<ir::Module> M; ///< Null on any frontend/verifier error.
  InstrumentStats Stats;         ///< What the instrumentation pass did.
  /// The module lowered to bytecode (the fast engine's input; see
  /// bytecode/VM.h). Produced whenever M is — verified pipeline output
  /// always fits the encoding. M owns the types and site table BC
  /// references, so keep both alive together.
  std::unique_ptr<bytecode::Program> BC;
};

/// Compiles \p Source under \p Opts. Diagnostics (including verifier
/// failures, which indicate compiler bugs) accumulate in \p Diags.
/// \p FileName becomes the module's source name — the file component
/// of every check site's attribution, shown in printed IR
/// (`!site N @ "file:line:col"`) and in runtime error reports.
CompileResult compileMiniC(std::string_view Source, TypeContext &Types,
                           DiagnosticEngine &Diags,
                           const InstrumentOptions &Opts,
                           std::string_view FileName = "<minic>");

} // namespace instrument
} // namespace effective

#endif // EFFECTIVE_INSTRUMENT_PIPELINE_H
