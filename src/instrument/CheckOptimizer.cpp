//===- instrument/CheckOptimizer.cpp - Pre-pass IR cleanups ---------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "instrument/CheckOptimizer.h"

#include "support/Hashing.h"

#include <algorithm>
#include <bit>
#include <unordered_map>
#include <vector>

using namespace effective;
using namespace effective::instrument;
using namespace effective::ir;

namespace {

/// True for instructions whose result depends only on their operands
/// (no memory reads, no side effects), so a repeated occurrence with
/// identical operands computes the same value.
bool isPure(const Instr &I) {
  switch (I.Op) {
  case Opcode::ConstInt:
  case Opcode::ConstFloat:
  case Opcode::ConstNull:
  case Opcode::StringAddr:
  case Opcode::GlobalAddr:
  case Opcode::SlotAddr:
  case Opcode::Arith:
  case Opcode::Compare:
  case Opcode::Convert:
  case Opcode::PtrCast:
  case Opcode::FieldAddr:
  case Opcode::IndexAddr:
  case Opcode::PtrDiff:
    return true;
  default:
    return false;
  }
}

/// Value-numbering key for a pure instruction.
struct VNKey {
  uint8_t Op, AOp, Pred;
  Reg A, B;
  const TypeInfo *Type;
  uint64_t Imm, FBits;

  static VNKey of(const Instr &I) {
    return VNKey{static_cast<uint8_t>(I.Op), static_cast<uint8_t>(I.AOp),
                 static_cast<uint8_t>(I.CmpPred), I.A, I.B, I.Type,
                 I.Imm, std::bit_cast<uint64_t>(I.FImm)};
  }

  bool operator==(const VNKey &) const = default;
};

struct VNKeyHash {
  size_t operator()(const VNKey &K) const {
    uint64_t H = K.Op;
    H = hashCombine(H, (uint64_t(K.AOp) << 8) | K.Pred);
    H = hashCombine(H, (uint64_t(K.A) << 32) | K.B);
    H = hashCombine(H, reinterpret_cast<uintptr_t>(K.Type));
    H = hashCombine(H, K.Imm);
    H = hashCombine(H, K.FBits);
    return static_cast<size_t>(H);
  }
};

class BlockCSE {
public:
  BlockCSE(Function &F, const std::vector<bool> &BlockLocal,
           CSEStats &Stats)
      : F(F), BlockLocal(BlockLocal), Stats(Stats) {}

  void run(Block &B) {
    Fwd.clear();
    Values.clear();

    std::vector<Instr> Out;
    Out.reserve(B.Instrs.size());
    for (Instr &I : B.Instrs) {
      // Rewrite operand registers through copy forwarding.
      rewrite(I.A);
      rewrite(I.B);
      for (Reg &Arg : I.Args)
        rewrite(Arg);

      if (I.Op == Opcode::Copy) {
        invalidate(I.Dst);
        if (I.Dst != I.A)
          Fwd[I.Dst] = I.A;
        Out.push_back(I);
        continue;
      }

      if (isPure(I) && I.Dst != NoReg) {
        VNKey K = VNKey::of(I);
        auto It = Values.find(K);
        if (It != Values.end() && It->second != I.Dst &&
            BlockLocal[I.Dst]) {
          // Same value already available: drop the instruction and
          // forward the register.
          invalidate(I.Dst);
          Fwd[I.Dst] = It->second;
          ++Stats.Deduplicated;
          continue;
        }
        invalidate(I.Dst);
        Values[K] = I.Dst;
        Out.push_back(I);
        continue;
      }

      if (I.Dst != NoReg)
        invalidate(I.Dst);
      Out.push_back(I);
    }
    B.Instrs = std::move(Out);
  }

private:
  void rewrite(Reg &R) {
    if (R == NoReg)
      return;
    unsigned Guard = 0;
    auto It = Fwd.find(R);
    while (It != Fwd.end() && ++Guard < 64) {
      if (R != It->second)
        ++Stats.CopiesForwarded;
      R = It->second;
      It = Fwd.find(R);
    }
  }

  /// Register \p R was redefined: every cached fact mentioning it dies.
  void invalidate(Reg R) {
    Fwd.erase(R);
    for (auto It = Fwd.begin(); It != Fwd.end();) {
      if (It->second == R)
        It = Fwd.erase(It);
      else
        ++It;
    }
    for (auto It = Values.begin(); It != Values.end();) {
      if (It->first.A == R || It->first.B == R || It->second == R)
        It = Values.erase(It);
      else
        ++It;
    }
  }

  Function &F;
  const std::vector<bool> &BlockLocal;
  CSEStats &Stats;
  std::unordered_map<Reg, Reg> Fwd;
  std::unordered_map<VNKey, Reg, VNKeyHash> Values;
};

/// Registers whose every occurrence (read or write) is confined to a
/// single block; only their definitions may be deleted.
std::vector<bool> computeBlockLocal(const Function &F) {
  constexpr uint32_t None = ~0u;
  constexpr uint32_t Many = ~0u - 1;
  std::vector<uint32_t> Home(F.numRegs(), None);
  auto touch = [&](Reg R, uint32_t B) {
    if (R == NoReg)
      return;
    if (Home[R] == None)
      Home[R] = B;
    else if (Home[R] != B)
      Home[R] = Many;
  };
  for (uint32_t B = 0; B < F.Blocks.size(); ++B) {
    for (const Instr &I : F.Blocks[B].Instrs) {
      touch(I.Dst, B);
      touch(I.A, B);
      touch(I.B, B);
      for (Reg Arg : I.Args)
        touch(Arg, B);
    }
  }
  // Parameters are defined by the caller, i.e. outside every block.
  for (const Param &P : F.Params)
    if (P.R != NoReg)
      Home[P.R] = Many;
  std::vector<bool> Local(F.numRegs());
  for (Reg R = 0; R < F.numRegs(); ++R)
    Local[R] = Home[R] != Many && Home[R] != None;
  return Local;
}

//===----------------------------------------------------------------------===//
// Cross-block check merging
//===----------------------------------------------------------------------===//

/// One must-available check fact. For TypeCheck/BoundsGet the fact is
/// the whole instruction identity (pointer reg, static type, bounds
/// destination); for BoundsCheck it is the (pointer, bounds) pair with
/// the widest size already checked.
struct CheckFact {
  Opcode Op;
  Reg A;
  const TypeInfo *Type; ///< Null for bounds_check facts.
  BReg B;               ///< BDst (input checks) / BSrc (bounds_check).

  bool operator==(const CheckFact &) const = default;
};

struct CheckFactHash {
  size_t operator()(const CheckFact &K) const {
    uint64_t H = static_cast<uint8_t>(K.Op);
    H = hashCombine(H, (uint64_t(K.A) << 32) | K.B);
    H = hashCombine(H, reinterpret_cast<uintptr_t>(K.Type));
    return static_cast<size_t>(H);
  }
};

/// Fact set: fact -> checked size (meaningful for bounds_check facts;
/// 0 otherwise).
using FactMap = std::unordered_map<CheckFact, uint64_t, CheckFactHash>;

class CrossBlockMerge {
public:
  CrossBlockMerge(Function &F, MergeStats &Stats) : F(F), Stats(Stats) {}

  void run() {
    if (F.Blocks.size() < 2)
      return; // Single block: the in-block subsumption rule owns it.
    computeOrder();
    computeOut();
    rewrite();
  }

private:
  static CheckFact factOf(const Instr &I) {
    if (I.Op == Opcode::BoundsCheck)
      return CheckFact{I.Op, I.A, nullptr, I.BSrc};
    return CheckFact{I.Op, I.A, I.Type, I.BDst};
  }

  /// Applies \p I's effect to \p Facts: kill everything its
  /// definitions invalidate, then (for checks) add its own fact.
  static void transfer(const Instr &I, FactMap &Facts) {
    if (I.Op == Opcode::Call || I.Op == Opcode::Free) {
      // May free memory: a surviving fact could mask a use-after-free
      // that has since become a bounds/type error. Same rule as the
      // in-block subsumption pass.
      Facts.clear();
      return;
    }
    if (I.Dst != NoReg)
      std::erase_if(Facts,
                    [&](const auto &E) { return E.first.A == I.Dst; });
    if (I.BDst != NoBReg)
      std::erase_if(Facts,
                    [&](const auto &E) { return E.first.B == I.BDst; });
    switch (I.Op) {
    case Opcode::TypeCheck:
    case Opcode::BoundsGet:
      Facts[factOf(I)] = 0;
      break;
    case Opcode::BoundsCheck: {
      uint64_t &Size = Facts[factOf(I)];
      if (I.Imm > Size)
        Size = I.Imm;
      break;
    }
    default:
      break;
    }
  }

  /// Reverse post-order over the CFG from the entry block.
  void computeOrder() {
    std::vector<uint8_t> State(F.Blocks.size(), 0);
    std::vector<std::pair<BlockId, size_t>> Stack{{0, 0}};
    State[0] = 1;
    Order.clear();
    while (!Stack.empty()) {
      auto &[B, NextSucc] = Stack.back();
      std::vector<BlockId> Succs = successors(B);
      if (NextSucc < Succs.size()) {
        BlockId S = Succs[NextSucc++];
        if (State[S] == 0) {
          State[S] = 1;
          Stack.push_back({S, 0});
        }
        continue;
      }
      Order.push_back(B);
      Stack.pop_back();
    }
    std::reverse(Order.begin(), Order.end());
    Preds.assign(F.Blocks.size(), {});
    for (BlockId B : Order)
      for (BlockId S : successors(B))
        Preds[S].push_back(B);
  }

  std::vector<BlockId> successors(BlockId B) const {
    const Block &Blk = F.Blocks[B];
    if (Blk.Instrs.empty())
      return {};
    const Instr &T = Blk.Instrs.back();
    if (T.Op == Opcode::Br)
      return {T.Target0};
    if (T.Op == Opcode::CondBr)
      return {T.Target0, T.Target1};
    return {};
  }

  /// IN[b] = ∩ OUT[preds]; a predecessor whose OUT is not yet known
  /// (back edge or unreachable) contributes the empty set, which makes
  /// the intersection empty — conservative, and it converges in one
  /// RPO sweep.
  FactMap inOf(BlockId B, const std::vector<bool> &Computed) const {
    FactMap In;
    bool First = true;
    for (BlockId P : Preds[B]) {
      if (!Computed[P])
        return {};
      if (First) {
        In = Out[P];
        First = false;
        continue;
      }
      std::erase_if(In, [&](const auto &E) {
        auto It = Out[P].find(E.first);
        return It == Out[P].end();
      });
      for (auto &[Fact, Size] : In) {
        uint64_t Other = Out[P].at(Fact);
        if (Other < Size)
          Size = Other; // A merged bounds fact covers only the min.
      }
    }
    return Preds[B].empty() ? FactMap{} : In;
  }

  void computeOut() {
    Out.assign(F.Blocks.size(), {});
    std::vector<bool> Computed(F.Blocks.size(), false);
    for (BlockId B : Order) {
      FactMap Facts = inOf(B, Computed);
      for (const Instr &I : F.Blocks[B].Instrs)
        transfer(I, Facts);
      Out[B] = std::move(Facts);
      Computed[B] = true;
    }
  }

  void rewrite() {
    std::vector<bool> Computed(F.Blocks.size(), true);
    for (BlockId B : Order) {
      // Deletion consults only facts *inherited* from predecessors —
      // in-block duplicates stay the subsumption rule's business (and
      // stay put when that rule is disabled for the ablation).
      FactMap Inherited = inOf(B, Computed);
      std::vector<Instr> Kept;
      Kept.reserve(F.Blocks[B].Instrs.size());
      for (Instr &I : F.Blocks[B].Instrs) {
        bool Remove = false;
        switch (I.Op) {
        case Opcode::TypeCheck:
        case Opcode::BoundsGet:
          Remove = Inherited.contains(factOf(I));
          if (Remove)
            ++(I.Op == Opcode::TypeCheck ? Stats.MergedTypeChecks
                                         : Stats.MergedBoundsGets);
          break;
        case Opcode::BoundsCheck: {
          auto It = Inherited.find(factOf(I));
          Remove = It != Inherited.end() && I.Imm <= It->second;
          if (Remove)
            ++Stats.MergedBoundsChecks;
          break;
        }
        default:
          break;
        }
        if (Remove)
          continue; // The earlier identical check already defined B/reported.
        transfer(I, Inherited);
        Kept.push_back(std::move(I));
      }
      F.Blocks[B].Instrs = std::move(Kept);
    }
  }

  Function &F;
  MergeStats &Stats;
  std::vector<BlockId> Order;
  std::vector<std::vector<BlockId>> Preds;
  std::vector<FactMap> Out;
};

} // namespace

CSEStats instrument::localCSE(Function &F) {
  CSEStats Stats;
  std::vector<bool> BlockLocal = computeBlockLocal(F);
  BlockCSE CSE(F, BlockLocal, Stats);
  for (Block &B : F.Blocks)
    CSE.run(B);
  return Stats;
}

CSEStats instrument::localCSE(Module &M) {
  CSEStats Stats;
  for (auto &F : M.Functions) {
    CSEStats S = localCSE(*F);
    Stats.Deduplicated += S.Deduplicated;
    Stats.CopiesForwarded += S.CopiesForwarded;
  }
  return Stats;
}

MergeStats instrument::mergeCrossBlockChecks(Function &F) {
  MergeStats Stats;
  CrossBlockMerge(F, Stats).run();
  return Stats;
}

MergeStats instrument::mergeCrossBlockChecks(Module &M) {
  MergeStats Stats;
  for (auto &F : M.Functions) {
    MergeStats S = mergeCrossBlockChecks(*F);
    Stats.MergedTypeChecks += S.MergedTypeChecks;
    Stats.MergedBoundsGets += S.MergedBoundsGets;
    Stats.MergedBoundsChecks += S.MergedBoundsChecks;
  }
  return Stats;
}
