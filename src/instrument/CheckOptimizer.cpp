//===- instrument/CheckOptimizer.cpp - Pre-pass IR cleanups ---------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "instrument/CheckOptimizer.h"

#include "support/Hashing.h"

#include <bit>
#include <unordered_map>
#include <vector>

using namespace effective;
using namespace effective::instrument;
using namespace effective::ir;

namespace {

/// True for instructions whose result depends only on their operands
/// (no memory reads, no side effects), so a repeated occurrence with
/// identical operands computes the same value.
bool isPure(const Instr &I) {
  switch (I.Op) {
  case Opcode::ConstInt:
  case Opcode::ConstFloat:
  case Opcode::ConstNull:
  case Opcode::StringAddr:
  case Opcode::GlobalAddr:
  case Opcode::SlotAddr:
  case Opcode::Arith:
  case Opcode::Compare:
  case Opcode::Convert:
  case Opcode::PtrCast:
  case Opcode::FieldAddr:
  case Opcode::IndexAddr:
  case Opcode::PtrDiff:
    return true;
  default:
    return false;
  }
}

/// Value-numbering key for a pure instruction.
struct VNKey {
  uint8_t Op, AOp, Pred;
  Reg A, B;
  const TypeInfo *Type;
  uint64_t Imm, FBits;

  static VNKey of(const Instr &I) {
    return VNKey{static_cast<uint8_t>(I.Op), static_cast<uint8_t>(I.AOp),
                 static_cast<uint8_t>(I.CmpPred), I.A, I.B, I.Type,
                 I.Imm, std::bit_cast<uint64_t>(I.FImm)};
  }

  bool operator==(const VNKey &) const = default;
};

struct VNKeyHash {
  size_t operator()(const VNKey &K) const {
    uint64_t H = K.Op;
    H = hashCombine(H, (uint64_t(K.AOp) << 8) | K.Pred);
    H = hashCombine(H, (uint64_t(K.A) << 32) | K.B);
    H = hashCombine(H, reinterpret_cast<uintptr_t>(K.Type));
    H = hashCombine(H, K.Imm);
    H = hashCombine(H, K.FBits);
    return static_cast<size_t>(H);
  }
};

class BlockCSE {
public:
  BlockCSE(Function &F, const std::vector<bool> &BlockLocal,
           CSEStats &Stats)
      : F(F), BlockLocal(BlockLocal), Stats(Stats) {}

  void run(Block &B) {
    Fwd.clear();
    Values.clear();

    std::vector<Instr> Out;
    Out.reserve(B.Instrs.size());
    for (Instr &I : B.Instrs) {
      // Rewrite operand registers through copy forwarding.
      rewrite(I.A);
      rewrite(I.B);
      for (Reg &Arg : I.Args)
        rewrite(Arg);

      if (I.Op == Opcode::Copy) {
        invalidate(I.Dst);
        if (I.Dst != I.A)
          Fwd[I.Dst] = I.A;
        Out.push_back(I);
        continue;
      }

      if (isPure(I) && I.Dst != NoReg) {
        VNKey K = VNKey::of(I);
        auto It = Values.find(K);
        if (It != Values.end() && It->second != I.Dst &&
            BlockLocal[I.Dst]) {
          // Same value already available: drop the instruction and
          // forward the register.
          invalidate(I.Dst);
          Fwd[I.Dst] = It->second;
          ++Stats.Deduplicated;
          continue;
        }
        invalidate(I.Dst);
        Values[K] = I.Dst;
        Out.push_back(I);
        continue;
      }

      if (I.Dst != NoReg)
        invalidate(I.Dst);
      Out.push_back(I);
    }
    B.Instrs = std::move(Out);
  }

private:
  void rewrite(Reg &R) {
    if (R == NoReg)
      return;
    unsigned Guard = 0;
    auto It = Fwd.find(R);
    while (It != Fwd.end() && ++Guard < 64) {
      if (R != It->second)
        ++Stats.CopiesForwarded;
      R = It->second;
      It = Fwd.find(R);
    }
  }

  /// Register \p R was redefined: every cached fact mentioning it dies.
  void invalidate(Reg R) {
    Fwd.erase(R);
    for (auto It = Fwd.begin(); It != Fwd.end();) {
      if (It->second == R)
        It = Fwd.erase(It);
      else
        ++It;
    }
    for (auto It = Values.begin(); It != Values.end();) {
      if (It->first.A == R || It->first.B == R || It->second == R)
        It = Values.erase(It);
      else
        ++It;
    }
  }

  Function &F;
  const std::vector<bool> &BlockLocal;
  CSEStats &Stats;
  std::unordered_map<Reg, Reg> Fwd;
  std::unordered_map<VNKey, Reg, VNKeyHash> Values;
};

/// Registers whose every occurrence (read or write) is confined to a
/// single block; only their definitions may be deleted.
std::vector<bool> computeBlockLocal(const Function &F) {
  constexpr uint32_t None = ~0u;
  constexpr uint32_t Many = ~0u - 1;
  std::vector<uint32_t> Home(F.numRegs(), None);
  auto touch = [&](Reg R, uint32_t B) {
    if (R == NoReg)
      return;
    if (Home[R] == None)
      Home[R] = B;
    else if (Home[R] != B)
      Home[R] = Many;
  };
  for (uint32_t B = 0; B < F.Blocks.size(); ++B) {
    for (const Instr &I : F.Blocks[B].Instrs) {
      touch(I.Dst, B);
      touch(I.A, B);
      touch(I.B, B);
      for (Reg Arg : I.Args)
        touch(Arg, B);
    }
  }
  // Parameters are defined by the caller, i.e. outside every block.
  for (const Param &P : F.Params)
    if (P.R != NoReg)
      Home[P.R] = Many;
  std::vector<bool> Local(F.numRegs());
  for (Reg R = 0; R < F.numRegs(); ++R)
    Local[R] = Home[R] != Many && Home[R] != None;
  return Local;
}

} // namespace

CSEStats instrument::localCSE(Function &F) {
  CSEStats Stats;
  std::vector<bool> BlockLocal = computeBlockLocal(F);
  BlockCSE CSE(F, BlockLocal, Stats);
  for (Block &B : F.Blocks)
    CSE.run(B);
  return Stats;
}

CSEStats instrument::localCSE(Module &M) {
  CSEStats Stats;
  for (auto &F : M.Functions) {
    CSEStats S = localCSE(*F);
    Stats.Deduplicated += S.Deduplicated;
    Stats.CopiesForwarded += S.CopiesForwarded;
  }
  return Stats;
}
