//===- instrument/Lowering.cpp - MiniC AST to IR --------------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "instrument/Lowering.h"

#include <unordered_map>
#include <unordered_set>

using namespace effective;
using namespace effective::instrument;
using namespace effective::minic;
using ir::BlockId;
using ir::Instr;
using ir::NoReg;
using ir::Opcode;
using ir::Reg;

namespace {

//===----------------------------------------------------------------------===//
// Address-taken analysis
//===----------------------------------------------------------------------===//

/// Collects every VarDecl whose address is taken with unary '&'. Such
/// variables (plus all aggregates) live in stack slots; the rest are
/// promoted to registers.
class AddressTakenScan {
public:
  std::unordered_set<const VarDecl *> Taken;

  void scanStmt(const Stmt *S) {
    if (!S)
      return;
    switch (S->kind()) {
    case StmtKind::Expr:
      scanExpr(cast<ExprStmt>(S)->expr());
      break;
    case StmtKind::Decl:
      scanExpr(cast<DeclStmt>(S)->decl()->init());
      break;
    case StmtKind::Compound:
      for (const Stmt *Sub : cast<CompoundStmt>(S)->body())
        scanStmt(Sub);
      break;
    case StmtKind::If: {
      const auto *If = cast<IfStmt>(S);
      scanExpr(If->cond());
      scanStmt(If->thenStmt());
      scanStmt(If->elseStmt());
      break;
    }
    case StmtKind::While: {
      const auto *W = cast<WhileStmt>(S);
      scanExpr(W->cond());
      scanStmt(W->body());
      break;
    }
    case StmtKind::For: {
      const auto *For = cast<ForStmt>(S);
      scanStmt(For->init());
      scanExpr(For->cond());
      scanExpr(For->step());
      scanStmt(For->body());
      break;
    }
    case StmtKind::Return:
      scanExpr(cast<ReturnStmt>(S)->value());
      break;
    case StmtKind::Break:
    case StmtKind::Continue:
      break;
    }
  }

  void scanExpr(const Expr *E) {
    if (!E)
      return;
    switch (E->kind()) {
    case ExprKind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      if (U->op() == UnaryOp::AddrOf)
        if (const auto *Ref = dyn_cast<VarRefExpr>(U->sub()))
          if (Ref->decl())
            Taken.insert(Ref->decl());
      scanExpr(U->sub());
      break;
    }
    case ExprKind::Binary:
      scanExpr(cast<BinaryExpr>(E)->lhs());
      scanExpr(cast<BinaryExpr>(E)->rhs());
      break;
    case ExprKind::Assign:
      scanExpr(cast<AssignExpr>(E)->target());
      scanExpr(cast<AssignExpr>(E)->value());
      break;
    case ExprKind::Index:
      scanExpr(cast<IndexExpr>(E)->base());
      scanExpr(cast<IndexExpr>(E)->index());
      break;
    case ExprKind::Member:
      scanExpr(cast<MemberExpr>(E)->base());
      break;
    case ExprKind::Call:
      for (const Expr *Arg : cast<CallExpr>(E)->args())
        scanExpr(Arg);
      break;
    case ExprKind::Cast:
      scanExpr(cast<CastExpr>(E)->sub());
      break;
    case ExprKind::Malloc:
      scanExpr(cast<MallocExpr>(E)->size());
      break;
    case ExprKind::Free:
      scanExpr(cast<FreeExpr>(E)->ptr());
      break;
    default:
      break;
    }
  }
};

//===----------------------------------------------------------------------===//
// Module-level lowering state
//===----------------------------------------------------------------------===//

struct ModuleState {
  ir::Module *M = nullptr;
  TypeContext *Types = nullptr;
  DiagnosticEngine *Diags = nullptr;
  std::unordered_map<const VarDecl *, uint32_t> GlobalIndex;
  std::unordered_map<const FunctionDecl *, ir::Function *> FuncMap;
};

/// Returns the allocation element type and size for a declared object
/// type: arrays bind their scalar element (Section 3's allocation-type
/// convention); everything else binds the type itself.
void allocationTypeFor(const TypeInfo *Decl, const TypeInfo *&Elem,
                       uint64_t &Size) {
  Size = Decl->size();
  if (const auto *A = dyn_cast<ArrayType>(Decl))
    Elem = A->scalarElement();
  else
    Elem = Decl;
}

//===----------------------------------------------------------------------===//
// Function lowering
//===----------------------------------------------------------------------===//

class FunctionLowering {
public:
  FunctionLowering(ModuleState &MS, ir::Function *F) : MS(MS), F(F) {}

  void lowerBody(const FunctionDecl *Decl);
  /// Lowers global initializers into this function (the synthetic
  /// __global_init).
  void lowerGlobalInits(const std::vector<VarDecl *> &Globals);

private:
  TypeContext &types() { return *MS.Types; }

  void error(SourceLoc Loc, std::string Msg) {
    MS.Diags->error(Loc, std::move(Msg));
  }

  //===--------------------------------------------------------------------===//
  // Block and instruction plumbing
  //===--------------------------------------------------------------------===//

  BlockId newBlock(const char *Hint) {
    return F->newBlock(std::string(Hint) + "." + std::to_string(++NameCnt));
  }

  void setBlock(BlockId B) {
    Cur = B;
    Terminated = false;
  }

  Instr &emit(Instr I) {
    if (Terminated) {
      // Code after return/break/continue: emit into a fresh unreachable
      // block so the block invariant (single trailing terminator) holds.
      setBlock(newBlock("dead"));
    }
    F->Blocks[Cur].Instrs.push_back(std::move(I));
    Instr &Ref = F->Blocks[Cur].Instrs.back();
    if (Ref.isTerminator())
      Terminated = true;
    return Ref;
  }

  void branchTo(BlockId Target, SourceLoc Loc) {
    if (Terminated)
      return;
    Instr I;
    I.Op = Opcode::Br;
    I.Target0 = Target;
    I.Loc = Loc;
    emit(std::move(I));
  }

  Reg constInt(int64_t V, const TypeInfo *T, SourceLoc Loc) {
    Instr I;
    I.Op = Opcode::ConstInt;
    I.Dst = F->newReg(T);
    I.Type = T;
    I.Imm = static_cast<uint64_t>(V);
    I.Loc = Loc;
    Reg R = I.Dst;
    emit(std::move(I));
    return R;
  }

  /// Converts \p R from type \p From to \p To when needed.
  Reg convert(Reg R, const TypeInfo *From, const TypeInfo *To,
              SourceLoc Loc) {
    if (!From || !To || From == To)
      return R;
    if (From->isPointer() && To->isPointer())
      return R; // Representation-identical; casts are explicit PtrCast.
    Instr I;
    I.Op = Opcode::Convert;
    I.Dst = F->newReg(To);
    I.A = R;
    I.Type = To;
    I.Loc = Loc;
    Reg D = I.Dst;
    emit(std::move(I));
    return D;
  }

  /// The usual arithmetic conversions over decayed scalar types.
  const TypeInfo *commonType(const TypeInfo *L, const TypeInfo *R) {
    if (L->isPointer())
      return L;
    if (R->isPointer())
      return R;
    if (L->isFloating() || R->isFloating()) {
      if (!L->isFloating())
        return R;
      if (!R->isFloating())
        return L;
      return L->size() >= R->size() ? L : R;
    }
    // Integers: promote to at least int, wider size wins.
    const TypeInfo *Int = types().getInt();
    if (L->size() < Int->size())
      L = Int;
    if (R->size() < Int->size())
      R = Int;
    return L->size() >= R->size() ? L : R;
  }

  const TypeInfo *decayed(const TypeInfo *T) {
    if (const auto *A = dyn_cast<ArrayType>(T))
      return types().getPointer(A->element());
    return T;
  }

  //===--------------------------------------------------------------------===//
  // Variables
  //===--------------------------------------------------------------------===//

  void bindLocal(const VarDecl *D) {
    const TypeInfo *T = D->type();
    bool Promote = (T->isInteger() || T->isFloating() || T->isPointer()) &&
                   !T->isVoid() && !Taken.count(D);
    if (Promote) {
      RegVars[D] = F->newReg(T);
      return;
    }
    ir::StackSlot Slot;
    Slot.Name = std::string(D->name());
    Slot.DeclType = T;
    allocationTypeFor(T, Slot.ElemType, Slot.Size);
    F->Slots.push_back(Slot);
    SlotVars[D] = static_cast<uint32_t>(F->Slots.size() - 1);
  }

  /// The address of a slot or global variable.
  Reg emitVarAddr(const VarDecl *D, SourceLoc Loc) {
    Instr I;
    I.Loc = Loc;
    if (auto It = SlotVars.find(D); It != SlotVars.end()) {
      I.Op = Opcode::SlotAddr;
      I.Imm = It->second;
    } else if (auto GIt = MS.GlobalIndex.find(D);
               GIt != MS.GlobalIndex.end()) {
      I.Op = Opcode::GlobalAddr;
      I.Imm = GIt->second;
    } else {
      error(Loc, "variable '" + std::string(D->name()) +
                     "' has no storage (lowering bug)");
      return constInt(0, types().getPointer(types().getVoid()), Loc);
    }
    // The address register is typed as pointer-to-declared-type; array
    // decay happens at use sites (loadFrom).
    I.Dst = F->newReg(types().getPointer(D->type()));
    Reg R = I.Dst;
    emit(std::move(I));
    return R;
  }

  //===--------------------------------------------------------------------===//
  // L-values and loads
  //===--------------------------------------------------------------------===//

  /// Lowers an lvalue expression to an address register. Returns NoReg
  /// for promoted-variable lvalues (caller handles them specially).
  Reg lowerAddr(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::VarRef: {
      const auto *Ref = cast<VarRefExpr>(E);
      if (RegVars.count(Ref->decl()))
        return NoReg;
      return emitVarAddr(Ref->decl(), E->loc());
    }
    case ExprKind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      if (U->op() == UnaryOp::Deref)
        return lowerExpr(U->sub());
      break;
    }
    case ExprKind::Index: {
      const auto *Ix = cast<IndexExpr>(E);
      Reg Base = lowerExpr(Ix->base()); // Decays arrays.
      Reg Index = lowerExpr(Ix->index());
      const TypeInfo *Elem = E->type();
      Instr I;
      I.Op = Opcode::IndexAddr;
      I.Dst = F->newReg(types().getPointer(decayed(Elem)));
      I.A = Base;
      I.B = Index;
      I.Type = Elem;
      I.Loc = E->loc();
      Reg R = I.Dst;
      emit(std::move(I));
      return R;
    }
    case ExprKind::Member: {
      const auto *Mem = cast<MemberExpr>(E);
      Reg Base;
      const RecordType *Record;
      if (Mem->isArrow()) {
        Base = lowerExpr(Mem->base());
        Record = cast<RecordType>(
            cast<PointerType>(decayed(Mem->base()->type()))->pointee());
      } else {
        Base = lowerAddrStrict(Mem->base());
        Record = cast<RecordType>(Mem->base()->type());
      }
      uint64_t FieldIdx = 0;
      for (const FieldInfo &Fi : Record->fields()) {
        if (&Fi == Mem->field())
          break;
        ++FieldIdx;
      }
      Instr I;
      I.Op = Opcode::FieldAddr;
      I.Dst = F->newReg(types().getPointer(decayed(E->type())));
      I.A = Base;
      I.Type = Record;
      I.Imm = FieldIdx;
      I.Loc = E->loc();
      Reg R = I.Dst;
      emit(std::move(I));
      return R;
    }
    default:
      break;
    }
    error(E->loc(), "expression is not a supported lvalue");
    return constInt(0, types().getPointer(types().getVoid()), E->loc());
  }

  /// lowerAddr for contexts that cannot handle promoted variables
  /// (struct bases); Sema guarantees these are aggregates, which are
  /// never promoted.
  Reg lowerAddrStrict(const Expr *E) {
    Reg R = lowerAddr(E);
    if (R == NoReg) {
      error(E->loc(), "aggregate lvalue unexpectedly promoted");
      return constInt(0, types().getPointer(types().getVoid()), E->loc());
    }
    return R;
  }

  /// Loads a scalar of type \p T from \p Addr; arrays decay to a typed
  /// pointer without loading.
  Reg loadFrom(Reg Addr, const TypeInfo *T, SourceLoc Loc) {
    if (const auto *A = dyn_cast<ArrayType>(T)) {
      // Array lvalue used as a value: decay to pointer-to-first-element.
      Instr I;
      I.Op = Opcode::PtrCast;
      I.Dst = F->newReg(types().getPointer(A->element()));
      I.A = Addr;
      I.Type = A->element();
      I.Loc = Loc;
      // Array decay is not a bounds-resetting cast: mark it so the
      // instrumentation pass propagates bounds instead of re-checking.
      I.Imm = 1; // IsDecay flag.
      Reg R = I.Dst;
      emit(std::move(I));
      return R;
    }
    if (isa<RecordType>(T)) {
      error(Loc, "loading a whole struct value is not supported");
      return constInt(0, types().getInt(), Loc);
    }
    Instr I;
    I.Op = Opcode::Load;
    I.Dst = F->newReg(T);
    I.A = Addr;
    I.Type = T;
    I.Loc = Loc;
    Reg R = I.Dst;
    emit(std::move(I));
    return R;
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  Reg lowerExpr(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::IntLiteral:
      return constInt(
          static_cast<int64_t>(cast<IntLiteralExpr>(E)->value()), E->type(),
          E->loc());
    case ExprKind::FloatLiteral: {
      Instr I;
      I.Op = Opcode::ConstFloat;
      I.Dst = F->newReg(E->type());
      I.Type = E->type();
      I.FImm = cast<FloatLiteralExpr>(E)->value();
      I.Loc = E->loc();
      Reg R = I.Dst;
      emit(std::move(I));
      return R;
    }
    case ExprKind::StringLiteral: {
      MS.M->Strings.push_back(
          std::string(cast<StringLiteralExpr>(E)->bytes()));
      Instr I;
      I.Op = Opcode::StringAddr;
      I.Dst = F->newReg(types().getPointer(types().getChar()));
      I.Imm = MS.M->Strings.size() - 1;
      I.Loc = E->loc();
      Reg R = I.Dst;
      emit(std::move(I));
      return R;
    }
    case ExprKind::Null: {
      Instr I;
      I.Op = Opcode::ConstNull;
      I.Dst = F->newReg(E->type());
      I.Type = E->type();
      I.Loc = E->loc();
      Reg R = I.Dst;
      emit(std::move(I));
      return R;
    }
    case ExprKind::VarRef: {
      const auto *Ref = cast<VarRefExpr>(E);
      if (auto It = RegVars.find(Ref->decl()); It != RegVars.end()) {
        // Copy into a temp so later re-assignment of the variable does
        // not retroactively change this use.
        Instr I;
        I.Op = Opcode::Copy;
        I.Dst = F->newReg(Ref->decl()->type());
        I.A = It->second;
        I.Loc = E->loc();
        Reg R = I.Dst;
        emit(std::move(I));
        return R;
      }
      Reg Addr = emitVarAddr(Ref->decl(), E->loc());
      return loadFrom(Addr, Ref->decl()->type(), E->loc());
    }
    case ExprKind::Unary:
      return lowerUnary(cast<UnaryExpr>(E));
    case ExprKind::Binary:
      return lowerBinary(cast<BinaryExpr>(E));
    case ExprKind::Assign:
      return lowerAssign(cast<AssignExpr>(E));
    case ExprKind::Index:
    case ExprKind::Member: {
      Reg Addr = lowerAddrStrict(E);
      return loadFrom(Addr, E->type(), E->loc());
    }
    case ExprKind::Call:
      return lowerCall(cast<CallExpr>(E));
    case ExprKind::Cast:
      return lowerCast(cast<CastExpr>(E));
    case ExprKind::SizeofType:
      return constInt(
          static_cast<int64_t>(cast<SizeofExpr>(E)->target()->size()),
          E->type(), E->loc());
    case ExprKind::Malloc: {
      const auto *M = cast<MallocExpr>(E);
      Reg Size = lowerExpr(M->size());
      Size = convert(Size, decayed(M->size()->type()), types().getULong(),
                     E->loc());
      Instr I;
      I.Op = Opcode::Malloc;
      I.Dst = F->newReg(E->type());
      I.A = Size;
      I.Type = M->allocType(); // May be null: untyped allocation.
      I.Loc = E->loc();
      Reg R = I.Dst;
      emit(std::move(I));
      return R;
    }
    case ExprKind::Free: {
      const auto *Fr = cast<FreeExpr>(E);
      Reg Ptr = lowerExpr(Fr->ptr());
      Instr I;
      I.Op = Opcode::Free;
      I.A = Ptr;
      I.Loc = E->loc();
      emit(std::move(I));
      return constInt(0, types().getInt(), E->loc());
    }
    }
    EFFSAN_UNREACHABLE("unknown expression kind");
  }

  Reg lowerUnary(const UnaryExpr *E) {
    switch (E->op()) {
    case UnaryOp::AddrOf: {
      const Expr *Sub = E->sub();
      if (const auto *Ref = dyn_cast<VarRefExpr>(Sub))
        if (RegVars.count(Ref->decl())) {
          // Cannot happen: address-taken vars are not promoted.
          error(E->loc(), "address of promoted variable (lowering bug)");
          return constInt(0, E->type(), E->loc());
        }
      return lowerAddrStrict(Sub);
    }
    case UnaryOp::Deref: {
      Reg Addr = lowerExpr(E->sub());
      return loadFrom(Addr, E->type(), E->loc());
    }
    case UnaryOp::Neg: {
      Reg Zero = lowerZeroOf(E->type(), E->loc());
      Reg V = lowerExpr(E->sub());
      V = convert(V, decayed(E->sub()->type()), E->type(), E->loc());
      return emitArith(ir::ArithOp::Sub, Zero, V, E->type(), E->loc());
    }
    case UnaryOp::BitNot: {
      Reg AllOnes = constInt(-1, E->type(), E->loc());
      Reg V = lowerExpr(E->sub());
      V = convert(V, decayed(E->sub()->type()), E->type(), E->loc());
      return emitArith(ir::ArithOp::Xor, V, AllOnes, E->type(), E->loc());
    }
    case UnaryOp::LogicalNot: {
      Reg V = lowerExpr(E->sub());
      Reg Zero = lowerZeroOf(decayed(E->sub()->type()), E->loc());
      return emitCompare(ir::Pred::Eq, V, Zero,
                         decayed(E->sub()->type()), E->loc());
    }
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
      return lowerIncDec(E);
    }
    EFFSAN_UNREACHABLE("unknown unary operator");
  }

  /// Zero constant of an arithmetic or pointer type.
  Reg lowerZeroOf(const TypeInfo *T, SourceLoc Loc) {
    if (T->isFloating()) {
      Instr I;
      I.Op = Opcode::ConstFloat;
      I.Dst = F->newReg(T);
      I.Type = T;
      I.FImm = 0;
      I.Loc = Loc;
      Reg R = I.Dst;
      emit(std::move(I));
      return R;
    }
    if (T->isPointer()) {
      Instr I;
      I.Op = Opcode::ConstNull;
      I.Dst = F->newReg(T);
      I.Type = T;
      I.Loc = Loc;
      Reg R = I.Dst;
      emit(std::move(I));
      return R;
    }
    return constInt(0, T, Loc);
  }

  Reg emitArith(ir::ArithOp Op, Reg A, Reg B, const TypeInfo *T,
                SourceLoc Loc) {
    Instr I;
    I.Op = Opcode::Arith;
    I.AOp = Op;
    I.Dst = F->newReg(T);
    I.A = A;
    I.B = B;
    I.Type = T;
    I.Loc = Loc;
    Reg R = I.Dst;
    emit(std::move(I));
    return R;
  }

  Reg emitCompare(ir::Pred P, Reg A, Reg B, const TypeInfo *OperandType,
                  SourceLoc Loc) {
    Instr I;
    I.Op = Opcode::Compare;
    I.CmpPred = P;
    I.Dst = F->newReg(types().getInt());
    I.A = A;
    I.B = B;
    I.Type = OperandType;
    I.Loc = Loc;
    Reg R = I.Dst;
    emit(std::move(I));
    return R;
  }

  /// Pointer arithmetic: Base + Index * sizeof(elem) — rule (f).
  Reg emitIndexAddr(Reg Base, Reg Index, const TypeInfo *PtrType,
                    SourceLoc Loc) {
    const auto *PT = cast<PointerType>(PtrType);
    Instr I;
    I.Op = Opcode::IndexAddr;
    I.Dst = F->newReg(PtrType);
    I.A = Base;
    I.B = Index;
    I.Type = PT->pointee();
    I.Loc = Loc;
    Reg R = I.Dst;
    emit(std::move(I));
    return R;
  }

  Reg lowerIncDec(const UnaryExpr *E) {
    const Expr *Sub = E->sub();
    const TypeInfo *T = decayed(E->type());
    bool Inc = E->op() == UnaryOp::PreInc;

    auto Bump = [&](Reg Old) -> Reg {
      if (T->isPointer()) {
        Reg One = constInt(Inc ? 1 : -1, types().getLong(), E->loc());
        return emitIndexAddr(Old, One, T, E->loc());
      }
      Reg One;
      if (T->isFloating()) {
        Instr CI;
        CI.Op = Opcode::ConstFloat;
        CI.Dst = F->newReg(T);
        CI.Type = T;
        CI.FImm = 1;
        CI.Loc = E->loc();
        One = CI.Dst;
        emit(std::move(CI));
      } else {
        One = constInt(1, T, E->loc());
      }
      return emitArith(Inc ? ir::ArithOp::Add : ir::ArithOp::Sub, Old, One,
                       T, E->loc());
    };

    if (const auto *Ref = dyn_cast<VarRefExpr>(Sub)) {
      if (auto It = RegVars.find(Ref->decl()); It != RegVars.end()) {
        Reg New = Bump(It->second);
        Instr I;
        I.Op = Opcode::Copy;
        I.Dst = It->second;
        I.A = New;
        I.Loc = E->loc();
        emit(std::move(I));
        return New;
      }
    }
    Reg Addr = lowerAddrStrict(Sub);
    Reg Old = loadFrom(Addr, Sub->type(), E->loc());
    Reg New = Bump(Old);
    Instr I;
    I.Op = Opcode::Store;
    I.A = Addr;
    I.B = New;
    I.Type = decayed(Sub->type());
    I.Loc = E->loc();
    emit(std::move(I));
    return New;
  }

  Reg lowerBinary(const BinaryExpr *E) {
    BinaryOp Op = E->op();
    if (Op == BinaryOp::LogicalAnd || Op == BinaryOp::LogicalOr)
      return lowerLogical(E);

    const TypeInfo *LT = decayed(E->lhs()->type());
    const TypeInfo *RT = decayed(E->rhs()->type());

    // Pointer arithmetic forms.
    if (Op == BinaryOp::Add && LT->isPointer() && RT->isInteger()) {
      Reg Base = lowerExpr(E->lhs());
      Reg Index = lowerExpr(E->rhs());
      return emitIndexAddr(Base, Index, LT, E->loc());
    }
    if (Op == BinaryOp::Add && LT->isInteger() && RT->isPointer()) {
      Reg Index = lowerExpr(E->lhs());
      Reg Base = lowerExpr(E->rhs());
      return emitIndexAddr(Base, Index, RT, E->loc());
    }
    if (Op == BinaryOp::Sub && LT->isPointer() && RT->isInteger()) {
      Reg Base = lowerExpr(E->lhs());
      Reg Index = lowerExpr(E->rhs());
      Reg Zero = constInt(0, types().getLong(), E->loc());
      Reg Neg = emitArith(ir::ArithOp::Sub, Zero, Index, types().getLong(),
                          E->loc());
      return emitIndexAddr(Base, Neg, LT, E->loc());
    }
    if (Op == BinaryOp::Sub && LT->isPointer() && RT->isPointer()) {
      Reg A = lowerExpr(E->lhs());
      Reg B = lowerExpr(E->rhs());
      Instr I;
      I.Op = Opcode::PtrDiff;
      I.Dst = F->newReg(types().getLong());
      I.A = A;
      I.B = B;
      I.Type = cast<PointerType>(LT)->pointee();
      I.Loc = E->loc();
      Reg R = I.Dst;
      emit(std::move(I));
      return R;
    }

    // Comparisons.
    if (Op >= BinaryOp::Lt && Op <= BinaryOp::Ne) {
      const TypeInfo *CT = commonType(LT, RT);
      Reg A = convert(lowerExpr(E->lhs()), LT, CT, E->loc());
      Reg B = convert(lowerExpr(E->rhs()), RT, CT, E->loc());
      ir::Pred P;
      switch (Op) {
      case BinaryOp::Lt:
        P = ir::Pred::Lt;
        break;
      case BinaryOp::Gt:
        P = ir::Pred::Gt;
        break;
      case BinaryOp::Le:
        P = ir::Pred::Le;
        break;
      case BinaryOp::Ge:
        P = ir::Pred::Ge;
        break;
      case BinaryOp::Eq:
        P = ir::Pred::Eq;
        break;
      default:
        P = ir::Pred::Ne;
        break;
      }
      return emitCompare(P, A, B, CT, E->loc());
    }

    // Plain arithmetic; Sema computed the result type.
    const TypeInfo *T = E->type();
    Reg A = convert(lowerExpr(E->lhs()), LT, T, E->loc());
    Reg B = convert(lowerExpr(E->rhs()), RT, T, E->loc());
    ir::ArithOp AOp;
    switch (Op) {
    case BinaryOp::Add:
      AOp = ir::ArithOp::Add;
      break;
    case BinaryOp::Sub:
      AOp = ir::ArithOp::Sub;
      break;
    case BinaryOp::Mul:
      AOp = ir::ArithOp::Mul;
      break;
    case BinaryOp::Div:
      AOp = ir::ArithOp::Div;
      break;
    case BinaryOp::Rem:
      AOp = ir::ArithOp::Rem;
      break;
    case BinaryOp::BitAnd:
      AOp = ir::ArithOp::And;
      break;
    case BinaryOp::BitOr:
      AOp = ir::ArithOp::Or;
      break;
    case BinaryOp::BitXor:
      AOp = ir::ArithOp::Xor;
      break;
    case BinaryOp::Shl:
      AOp = ir::ArithOp::Shl;
      break;
    case BinaryOp::Shr:
      AOp = ir::ArithOp::Shr;
      break;
    default:
      EFFSAN_UNREACHABLE("handled above");
    }
    return emitArith(AOp, A, B, T, E->loc());
  }

  Reg lowerLogical(const BinaryExpr *E) {
    bool IsAnd = E->op() == BinaryOp::LogicalAnd;
    Reg Result = F->newReg(types().getInt());

    Reg L = lowerExpr(E->lhs());
    BlockId RhsB = newBlock(IsAnd ? "and.rhs" : "or.rhs");
    BlockId ShortB = newBlock(IsAnd ? "and.false" : "or.true");
    BlockId JoinB = newBlock(IsAnd ? "and.join" : "or.join");

    Instr Br;
    Br.Op = Opcode::CondBr;
    Br.A = L;
    Br.Target0 = IsAnd ? RhsB : ShortB;
    Br.Target1 = IsAnd ? ShortB : RhsB;
    Br.Loc = E->loc();
    emit(std::move(Br));

    setBlock(RhsB);
    Reg Rv = lowerExpr(E->rhs());
    Reg Zero = lowerZeroOf(decayed(E->rhs()->type()), E->loc());
    Reg Norm = emitCompare(ir::Pred::Ne, Rv, Zero,
                           decayed(E->rhs()->type()), E->loc());
    Instr CopyI;
    CopyI.Op = Opcode::Copy;
    CopyI.Dst = Result;
    CopyI.A = Norm;
    CopyI.Loc = E->loc();
    emit(std::move(CopyI));
    branchTo(JoinB, E->loc());

    setBlock(ShortB);
    Instr K;
    K.Op = Opcode::ConstInt;
    K.Dst = Result;
    K.Type = types().getInt();
    K.Imm = IsAnd ? 0 : 1;
    K.Loc = E->loc();
    emit(std::move(K));
    branchTo(JoinB, E->loc());

    setBlock(JoinB);
    return Result;
  }

  Reg lowerAssign(const AssignExpr *E) {
    const Expr *Target = E->target();
    const TypeInfo *TT = decayed(Target->type());

    auto Combine = [&](Reg Old, Reg Val) -> Reg {
      if (E->op() == AssignExpr::OpKind::Plain)
        return Val;
      if (TT->isPointer()) {
        Reg Index = Val;
        if (E->op() == AssignExpr::OpKind::Sub) {
          Reg Zero = constInt(0, types().getLong(), E->loc());
          Index = emitArith(ir::ArithOp::Sub, Zero, Val, types().getLong(),
                            E->loc());
        }
        return emitIndexAddr(Old, Index, TT, E->loc());
      }
      return emitArith(E->op() == AssignExpr::OpKind::Add
                           ? ir::ArithOp::Add
                           : ir::ArithOp::Sub,
                       Old, Val, TT, E->loc());
    };

    if (const auto *Ref = dyn_cast<VarRefExpr>(Target)) {
      if (auto It = RegVars.find(Ref->decl()); It != RegVars.end()) {
        Reg Val = lowerExpr(E->value());
        Val = convert(Val, decayed(E->value()->type()), TT, E->loc());
        Reg New = Combine(It->second, Val);
        Instr I;
        I.Op = Opcode::Copy;
        I.Dst = It->second;
        I.A = New;
        I.Loc = E->loc();
        emit(std::move(I));
        return New;
      }
    }

    Reg Addr = lowerAddrStrict(Target);
    Reg Val = lowerExpr(E->value());
    Val = convert(Val, decayed(E->value()->type()), TT, E->loc());
    Reg New = Val;
    if (E->op() != AssignExpr::OpKind::Plain) {
      Reg Old = loadFrom(Addr, Target->type(), E->loc());
      New = Combine(Old, Val);
    }
    Instr I;
    I.Op = Opcode::Store;
    I.A = Addr;
    I.B = New;
    I.Type = TT;
    I.Loc = E->loc();
    emit(std::move(I));
    return New;
  }

  Reg lowerCall(const CallExpr *E) {
    std::vector<Reg> Args;
    ir::BuiltinId BId;
    bool IsBuiltin = !E->decl() && ir::lookupBuiltin(E->callee(), BId);

    for (size_t I = 0; I < E->args().size(); ++I) {
      const Expr *Arg = E->args()[I];
      Reg R = lowerExpr(Arg);
      const TypeInfo *To = nullptr;
      if (E->decl() && I < E->decl()->params().size())
        To = decayed(E->decl()->params()[I]->type());
      else if (IsBuiltin && BId == ir::BuiltinId::PrintInt)
        To = types().getLong();
      else if (IsBuiltin && BId == ir::BuiltinId::PrintFloat)
        To = types().getDouble();
      if (To)
        R = convert(R, decayed(Arg->type()), To, Arg->loc());
      Args.push_back(R);
    }

    Instr I;
    I.Loc = E->loc();
    I.Args = std::move(Args);
    if (IsBuiltin) {
      I.Op = Opcode::CallBuiltin;
      I.Imm = static_cast<uint64_t>(BId);
      emit(std::move(I));
      return constInt(0, types().getInt(), E->loc());
    }
    if (!E->decl()) {
      error(E->loc(), "call to unknown function (lowering bug)");
      return constInt(0, types().getInt(), E->loc());
    }
    ir::Function *Callee = MS.FuncMap.at(E->decl());
    I.Op = Opcode::Call;
    I.Imm = MS.M->indexOf(Callee);
    const TypeInfo *RetT = E->decl()->returnType();
    Reg R = NoReg;
    if (RetT && !RetT->isVoid()) {
      I.Dst = F->newReg(RetT);
      R = I.Dst;
    }
    emit(std::move(I));
    if (R == NoReg)
      return constInt(0, types().getInt(), E->loc());
    return R;
  }

  Reg lowerCast(const CastExpr *E) {
    const TypeInfo *To = E->target();
    const TypeInfo *From = decayed(E->sub()->type());
    Reg V = lowerExpr(E->sub());
    if (To == From || To == E->sub()->type())
      return V;
    if (To->isPointer()) {
      // Pointer-producing cast: rule (d) site, whether from a pointer
      // or from an integer.
      Instr I;
      I.Op = Opcode::PtrCast;
      I.Dst = F->newReg(To);
      I.A = V;
      I.Type = cast<PointerType>(To)->pointee();
      I.Loc = E->loc();
      Reg R = I.Dst;
      emit(std::move(I));
      return R;
    }
    if (From->isPointer()) {
      // Pointer-to-integer: a plain value conversion.
      return convert(V, From, To, E->loc());
    }
    return convert(V, From, To, E->loc());
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void lowerStmt(const Stmt *S) {
    switch (S->kind()) {
    case StmtKind::Expr:
      lowerExpr(cast<ExprStmt>(S)->expr());
      break;
    case StmtKind::Decl: {
      const VarDecl *D = cast<DeclStmt>(S)->decl();
      bindLocal(D);
      if (const Expr *Init = D->init()) {
        Reg V = lowerExpr(Init);
        V = convert(V, decayed(Init->type()), decayed(D->type()),
                    D->loc());
        if (auto It = RegVars.find(D); It != RegVars.end()) {
          Instr I;
          I.Op = Opcode::Copy;
          I.Dst = It->second;
          I.A = V;
          I.Loc = D->loc();
          emit(std::move(I));
        } else {
          Reg Addr = emitVarAddr(D, D->loc());
          Instr I;
          I.Op = Opcode::Store;
          I.A = Addr;
          I.B = V;
          I.Type = decayed(D->type());
          I.Loc = D->loc();
          emit(std::move(I));
        }
      }
      break;
    }
    case StmtKind::Compound:
      for (const Stmt *Sub : cast<CompoundStmt>(S)->body())
        lowerStmt(Sub);
      break;
    case StmtKind::If: {
      const auto *If = cast<IfStmt>(S);
      Reg Cond = lowerExpr(If->cond());
      BlockId ThenB = newBlock("if.then");
      BlockId ElseB = If->elseStmt() ? newBlock("if.else") : 0;
      BlockId JoinB = newBlock("if.join");
      if (!If->elseStmt())
        ElseB = JoinB;
      Instr Br;
      Br.Op = Opcode::CondBr;
      Br.A = Cond;
      Br.Target0 = ThenB;
      Br.Target1 = ElseB;
      Br.Loc = S->loc();
      emit(std::move(Br));
      setBlock(ThenB);
      lowerStmt(If->thenStmt());
      branchTo(JoinB, S->loc());
      if (If->elseStmt()) {
        setBlock(ElseB);
        lowerStmt(If->elseStmt());
        branchTo(JoinB, S->loc());
      }
      setBlock(JoinB);
      break;
    }
    case StmtKind::While: {
      const auto *W = cast<WhileStmt>(S);
      BlockId CondB = newBlock("while.cond");
      BlockId BodyB = newBlock("while.body");
      BlockId ExitB = newBlock("while.exit");
      branchTo(CondB, S->loc());
      setBlock(CondB);
      Reg Cond = lowerExpr(W->cond());
      Instr Br;
      Br.Op = Opcode::CondBr;
      Br.A = Cond;
      Br.Target0 = BodyB;
      Br.Target1 = ExitB;
      Br.Loc = S->loc();
      emit(std::move(Br));
      setBlock(BodyB);
      BreakStack.push_back(ExitB);
      ContinueStack.push_back(CondB);
      lowerStmt(W->body());
      BreakStack.pop_back();
      ContinueStack.pop_back();
      branchTo(CondB, S->loc());
      setBlock(ExitB);
      break;
    }
    case StmtKind::For: {
      const auto *For = cast<ForStmt>(S);
      if (For->init())
        lowerStmt(For->init());
      BlockId CondB = newBlock("for.cond");
      BlockId BodyB = newBlock("for.body");
      BlockId StepB = newBlock("for.step");
      BlockId ExitB = newBlock("for.exit");
      branchTo(CondB, S->loc());
      setBlock(CondB);
      if (For->cond()) {
        Reg Cond = lowerExpr(For->cond());
        Instr Br;
        Br.Op = Opcode::CondBr;
        Br.A = Cond;
        Br.Target0 = BodyB;
        Br.Target1 = ExitB;
        Br.Loc = S->loc();
        emit(std::move(Br));
      } else {
        branchTo(BodyB, S->loc());
      }
      setBlock(BodyB);
      BreakStack.push_back(ExitB);
      ContinueStack.push_back(StepB);
      lowerStmt(For->body());
      BreakStack.pop_back();
      ContinueStack.pop_back();
      branchTo(StepB, S->loc());
      setBlock(StepB);
      if (For->step())
        lowerExpr(For->step());
      branchTo(CondB, S->loc());
      setBlock(ExitB);
      break;
    }
    case StmtKind::Return: {
      const auto *Ret = cast<ReturnStmt>(S);
      Instr I;
      I.Op = Opcode::Ret;
      I.Loc = S->loc();
      if (Ret->value()) {
        Reg V = lowerExpr(Ret->value());
        I.A = convert(V, decayed(Ret->value()->type()),
                      decayed(F->returnType()), S->loc());
      }
      emit(std::move(I));
      break;
    }
    case StmtKind::Break:
      if (BreakStack.empty())
        error(S->loc(), "break outside a loop");
      else
        branchTo(BreakStack.back(), S->loc());
      Terminated = true;
      break;
    case StmtKind::Continue:
      if (ContinueStack.empty())
        error(S->loc(), "continue outside a loop");
      else
        branchTo(ContinueStack.back(), S->loc());
      Terminated = true;
      break;
    }
  }

  ModuleState &MS;
  ir::Function *F;
  BlockId Cur = 0;
  bool Terminated = false;
  unsigned NameCnt = 0;
  std::unordered_set<const VarDecl *> Taken;
  std::unordered_map<const VarDecl *, Reg> RegVars;
  std::unordered_map<const VarDecl *, uint32_t> SlotVars;
  std::vector<BlockId> BreakStack;
  std::vector<BlockId> ContinueStack;
};

void FunctionLowering::lowerBody(const FunctionDecl *Decl) {
  AddressTakenScan Scan;
  Scan.scanStmt(Decl->body());
  Taken = std::move(Scan.Taken);

  setBlock(F->newBlock("entry"));

  // Parameters: a register each; address-taken ones are spilled into a
  // slot at entry.
  for (size_t I = 0; I < Decl->params().size(); ++I) {
    const VarDecl *P = Decl->params()[I];
    Reg R = F->Params[I].R;
    if (!Taken.count(P) &&
        (P->type()->isInteger() || P->type()->isFloating() ||
         P->type()->isPointer())) {
      RegVars[P] = R;
      continue;
    }
    bindLocal(P);
    Reg Addr = emitVarAddr(P, P->loc());
    Instr I2;
    I2.Op = Opcode::Store;
    I2.A = Addr;
    I2.B = R;
    I2.Type = decayed(P->type());
    I2.Loc = P->loc();
    emit(std::move(I2));
  }

  lowerStmt(Decl->body());

  // Implicit trailing return.
  if (!Terminated) {
    Instr I;
    I.Op = Opcode::Ret;
    if (F->returnType() && !F->returnType()->isVoid())
      I.A = lowerZeroOf(decayed(F->returnType()), Decl->loc());
    emit(std::move(I));
  }
}

void FunctionLowering::lowerGlobalInits(
    const std::vector<VarDecl *> &Globals) {
  setBlock(F->newBlock("entry"));
  for (const VarDecl *G : Globals) {
    if (!G->init())
      continue;
    Reg V = lowerExpr(G->init());
    V = convert(V, decayed(G->init()->type()), decayed(G->type()),
                G->loc());
    Reg Addr = emitVarAddr(G, G->loc());
    Instr I;
    I.Op = Opcode::Store;
    I.A = Addr;
    I.B = V;
    I.Type = decayed(G->type());
    I.Loc = G->loc();
    emit(std::move(I));
  }
  Instr I;
  I.Op = Opcode::Ret;
  emit(std::move(I));
}

} // namespace

std::unique_ptr<ir::Module>
instrument::lowerToIR(const TranslationUnit &Unit, TypeContext &Types,
                      DiagnosticEngine &Diags) {
  auto M = std::make_unique<ir::Module>(Types);
  ModuleState MS;
  MS.M = M.get();
  MS.Types = &Types;
  MS.Diags = &Diags;

  // Globals first (functions reference them).
  for (const VarDecl *G : Unit.Globals) {
    ir::Global IG;
    IG.Name = std::string(G->name());
    IG.DeclType = G->type();
    allocationTypeFor(G->type(), IG.ElemType, IG.Size);
    MS.GlobalIndex[G] = static_cast<uint32_t>(M->Globals.size());
    M->Globals.push_back(std::move(IG));
  }

  // Group forward declarations with their definitions: one IR function
  // per name, built from the defining declaration when there is one.
  std::unordered_map<std::string_view, const FunctionDecl *> Chosen;
  for (const FunctionDecl *FD : Unit.Functions) {
    auto [It, Fresh] = Chosen.try_emplace(FD->name(), FD);
    if (!Fresh && FD->body() && !It->second->body())
      It->second = FD;
  }

  // Declare every function (bodies may call forward).
  std::unordered_map<std::string_view, ir::Function *> ByName;
  for (const FunctionDecl *FD : Unit.Functions) {
    if (Chosen.at(FD->name()) != FD)
      continue;
    ir::Function *F = M->addFunction(std::string(FD->name()),
                                     FD->returnType());
    for (const VarDecl *P : FD->params()) {
      ir::Param IP;
      IP.Name = std::string(P->name());
      IP.Type = P->type();
      IP.R = F->newReg(P->type());
      IP.Loc = P->loc();
      F->Params.push_back(std::move(IP));
    }
    ByName[FD->name()] = F;
  }
  // Calls may resolve to any declaration of the name.
  for (const FunctionDecl *FD : Unit.Functions)
    MS.FuncMap[FD] = ByName.at(FD->name());

  // Synthetic global initializer, run by the interpreter before main.
  bool AnyInit = false;
  for (const VarDecl *G : Unit.Globals)
    AnyInit |= G->init() != nullptr;
  if (AnyInit) {
    ir::Function *InitF =
        M->addFunction("__global_init", Types.getVoid());
    FunctionLowering FL(MS, InitF);
    FL.lowerGlobalInits(Unit.Globals);
  }

  // Lower bodies (only the chosen declaration of each name).
  for (const FunctionDecl *FD : Unit.Functions) {
    if (!FD->body() || Chosen.at(FD->name()) != FD)
      continue;
    FunctionLowering FL(MS, MS.FuncMap.at(FD));
    FL.lowerBody(FD);
  }

  // A used function that was never defined has no blocks; diagnose it
  // rather than letting the verifier fault later.
  for (const auto &F : M->Functions)
    if (F->Blocks.empty())
      Diags.error(SourceLoc(), "function '" + F->name() +
                                   "' declared but never defined");

  if (Diags.hasErrors())
    return nullptr;
  return M;
}
