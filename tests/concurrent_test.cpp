//===- tests/concurrent_test.cpp - Concurrent runtime tests ---------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Covers the src/concurrent/ subsystem: the lock-free MPSC ErrorRing
/// (ordering, wraparound, overflow accounting, concurrent producers),
/// the ShardedHeap (disjoint per-shard sub-arenas with globally valid
/// base/size arithmetic), and the SessionPool (thread-affine checkout,
/// shard isolation, merged counters, cross-shard dedup through the
/// central drain, per-shard reset) plus the harness's multi-threaded
/// mode. Also exercised under -fsanitize=thread by the CI TSan job.
///
//===----------------------------------------------------------------------===//

#include "concurrent/ErrorRing.h"
#include "concurrent/SessionPool.h"
#include "concurrent/ShardedHeap.h"
#include "workloads/Harness.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

using namespace effective;
using namespace effective::concurrent;

namespace {

SessionOptions quietOptions(CheckPolicy Policy = CheckPolicy::Full) {
  SessionOptions Options;
  Options.Policy = Policy;
  Options.Reporter.Mode = ReportMode::Count;
  return Options;
}

PoolOptions quietPool(unsigned Shards,
                      CheckPolicy Policy = CheckPolicy::Full) {
  PoolOptions Options;
  Options.Shards = Shards;
  Options.Policy = Policy;
  Options.Reporter.Mode = ReportMode::Count;
  return Options;
}

//===----------------------------------------------------------------------===//
// ErrorRing
//===----------------------------------------------------------------------===//

ErrorInfo boundsEvent(int64_t Offset) {
  ErrorInfo Info;
  Info.Kind = ErrorKind::BoundsError;
  Info.Offset = Offset;
  return Info;
}

TEST(ErrorRingTest, FifoOrderAndWraparound) {
  ErrorRing Ring(4); // Power of two; forces several laps below.
  EXPECT_EQ(Ring.capacity(), 4u);

  ErrorInfo Out;
  EXPECT_FALSE(Ring.tryPop(Out)) << "empty ring pops nothing";

  for (int Lap = 0; Lap < 5; ++Lap) {
    for (int I = 0; I < 3; ++I)
      ASSERT_TRUE(Ring.tryPush(boundsEvent(Lap * 10 + I)));
    for (int I = 0; I < 3; ++I) {
      ASSERT_TRUE(Ring.tryPop(Out));
      EXPECT_EQ(Out.Offset, Lap * 10 + I);
    }
  }
  EXPECT_EQ(Ring.overflows(), 0u);
}

TEST(ErrorRingTest, FullRingCountsOverflows) {
  ErrorRing Ring(2);
  EXPECT_TRUE(Ring.tryPush(boundsEvent(0)));
  EXPECT_TRUE(Ring.tryPush(boundsEvent(1)));
  EXPECT_FALSE(Ring.tryPush(boundsEvent(2)));
  EXPECT_FALSE(Ring.tryPush(boundsEvent(3)));
  EXPECT_EQ(Ring.overflows(), 2u);

  ErrorInfo Out;
  ASSERT_TRUE(Ring.tryPop(Out));
  EXPECT_EQ(Out.Offset, 0);
  EXPECT_TRUE(Ring.tryPush(boundsEvent(4))) << "slot freed by pop";
}

TEST(ErrorRingTest, CapacityRoundsUpToPowerOfTwo) {
  ErrorRing Ring(5);
  EXPECT_EQ(Ring.capacity(), 8u);
  ErrorRing Tiny(0);
  EXPECT_EQ(Tiny.capacity(), 2u);
}

TEST(ErrorRingTest, ConcurrentProducersLoseNothing) {
  constexpr unsigned Producers = 4;
  constexpr unsigned PerProducer = 5000;
  ErrorRing Ring(256);

  std::vector<ErrorInfo> Drained;
  Drained.reserve(Producers * PerProducer);
  std::atomic<unsigned> LiveProducers{Producers};

  std::thread Consumer([&] {
    ErrorInfo Out;
    for (;;) {
      // Read quiescence *before* the failed pop: if the ring is empty
      // after all producers were already done, nothing can arrive.
      bool Quiescent =
          LiveProducers.load(std::memory_order_acquire) == 0;
      if (Ring.tryPop(Out)) {
        Drained.push_back(Out);
        continue;
      }
      if (Quiescent)
        break;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> Threads;
  for (unsigned P = 0; P < Producers; ++P) {
    Threads.emplace_back([&, P] {
      for (unsigned I = 0; I < PerProducer; ++I) {
        // Spin until accepted: producers outpace the consumer at
        // times, and this test wants exact accounting.
        while (!Ring.tryPush(boundsEvent(
            static_cast<int64_t>(P) * PerProducer + I)))
          std::this_thread::yield();
      }
      LiveProducers.fetch_sub(1, std::memory_order_release);
    });
  }
  for (std::thread &T : Threads)
    T.join();
  Consumer.join();

  ASSERT_EQ(Drained.size(), size_t(Producers) * PerProducer);
  // Every event arrives exactly once, and each producer's events stay
  // in program order.
  std::vector<int64_t> PerProducerNext(Producers, 0);
  std::set<int64_t> Seen;
  for (const ErrorInfo &Info : Drained) {
    ASSERT_TRUE(Seen.insert(Info.Offset).second) << "duplicate event";
    auto P = static_cast<unsigned>(Info.Offset / PerProducer);
    int64_t Index = Info.Offset % PerProducer;
    EXPECT_EQ(Index, PerProducerNext[P]) << "producer order broken";
    PerProducerNext[P] = Index + 1;
  }
}

//===----------------------------------------------------------------------===//
// ShardedHeap
//===----------------------------------------------------------------------===//

TEST(ShardedHeapTest, ShardsAllocateFromDisjointSubArenas) {
  ShardedHeap Heap(4);
  ASSERT_EQ(Heap.numShards(), 4u);

  for (unsigned S = 0; S < 4; ++S) {
    HeapShard Shard = Heap.shard(S);
    void *P = Shard.allocate(100);
    ASSERT_TRUE(Heap.heap().isLowFat(P));
    EXPECT_EQ(Heap.heap().shardOf(P), S)
        << "block must land in the allocating shard's sub-arena";
    Shard.deallocate(P);
  }
}

TEST(ShardedHeapTest, BaseAndSizeAreGlobalAcrossShards) {
  ShardedHeap Heap(4);
  // Allocate on shard 2, query through shard 0's view: the low-fat
  // arithmetic is address-based and shard-blind.
  char *P = static_cast<char *>(Heap.shard(2).allocate(100));
  HeapShard Other = Heap.shard(0);
  size_t Size = Other.size(P);
  EXPECT_GE(Size, 100u);
  EXPECT_EQ(Other.base(P), P);
  for (size_t Off : {size_t(1), size_t(50), size_t(99), Size - 1}) {
    EXPECT_EQ(Other.base(P + Off), P) << Off;
    EXPECT_EQ(Other.size(P + Off), Size) << Off;
  }
  Other.deallocate(P); // Cross-shard free is legal.
  EXPECT_EQ(Heap.stats().NumFrees, 1u);
}

TEST(ShardedHeapTest, ShardZeroResolvesRequestedCount) {
  EXPECT_GE(ShardedHeap::resolveShardCount(0), 1u);
  EXPECT_EQ(ShardedHeap::resolveShardCount(3), 3u);
  EXPECT_EQ(ShardedHeap::resolveShardCount(1 << 20),
            lowfat::MaxHeapShards);
}

TEST(ShardedHeapTest, ConcurrentShardsNeverShareABlock) {
  // The satellite requirement: multi-thread alloc/free with quarantine
  // enabled; no block may be handed to two threads at once, and
  // base/size arithmetic must hold for pointers allocated on other
  // shards.
  constexpr unsigned Threads = 4;
  constexpr unsigned Iterations = 3000;
  lowfat::HeapOptions Base;
  Base.QuarantineBytes = 1 << 16; // Delay reuse on every shard.
  ShardedHeap Heap(Threads, Base);

  // Every pointer ever handed out, per thread. Threads never free, so
  // all blocks stay live and any overlap is a double hand-out.
  std::vector<std::vector<char *>> Handed(Threads);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T] {
      HeapShard Shard = Heap.shard(T);
      Handed[T].reserve(Iterations);
      for (unsigned I = 0; I < Iterations; ++I) {
        size_t Size = 1 + (I * 37 + T * 101) % 300;
        auto *P = static_cast<char *>(Shard.allocate(Size));
        // The block is writable and class-sized.
        P[0] = static_cast<char>(T);
        ASSERT_GE(Shard.size(P), Size);
        ASSERT_EQ(Shard.base(P), P);
        Handed[T].push_back(P);
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();

  // Global uniqueness across all threads.
  std::vector<char *> All;
  for (auto &V : Handed)
    All.insert(All.end(), V.begin(), V.end());
  std::sort(All.begin(), All.end());
  EXPECT_EQ(std::adjacent_find(All.begin(), All.end()), All.end())
      << "a block was handed to two threads";

  // Cross-shard arithmetic: thread 0's view resolves every other
  // thread's pointers.
  HeapShard View = Heap.shard(0);
  for (unsigned T = 0; T < Threads; ++T) {
    for (char *P : Handed[T]) {
      EXPECT_EQ(View.base(P + 1), P);
      EXPECT_EQ(Heap.heap().shardOf(P), T);
    }
  }
  for (char *P : All)
    View.deallocate(P);
}

TEST(ShardedHeapTest, ConcurrentAllocFreeWithQuarantine) {
  constexpr unsigned Threads = 4;
  constexpr unsigned Iterations = 2000;
  lowfat::HeapOptions Base;
  Base.QuarantineBytes = 1 << 14;
  ShardedHeap Heap(Threads, Base);

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T] {
      HeapShard Shard = Heap.shard(T);
      std::vector<void *> Live;
      for (unsigned I = 0; I < Iterations; ++I) {
        void *P = Shard.allocate(1 + (I * 13) % 500);
        ASSERT_EQ(Shard.base(P), P);
        Live.push_back(P);
        if (Live.size() > 16) {
          Shard.deallocate(Live.front());
          Live.erase(Live.begin());
        }
      }
      for (void *P : Live)
        Shard.deallocate(P);
    });
  }
  for (std::thread &W : Workers)
    W.join();
  lowfat::HeapStats Stats = Heap.stats();
  EXPECT_EQ(Stats.NumAllocs, Stats.NumFrees);
  EXPECT_EQ(Stats.BlockBytesInUse, 0u) << "everything was freed";
  // Each shard parks at most its quarantine budget (plus one block of
  // slack while evicting).
  EXPECT_LE(Stats.QuarantinedBytes,
            uint64_t(Threads) * ((1 << 14) + 1024));
  EXPECT_GT(Stats.QuarantinedBytes, 0u)
      << "the quarantine must actually delay reuse";
}

TEST(ShardedHeapTest, ResetShardLeavesSiblingsIntact) {
  ShardedHeap Heap(2);
  char *A = static_cast<char *>(Heap.shard(0).allocate(64));
  char *B = static_cast<char *>(Heap.shard(1).allocate(64));
  B[0] = 42;

  Heap.resetShard(0);
  EXPECT_FALSE(Heap.heap().isLowFat(A))
      << "reset shard's pointers degrade to legacy";
  ASSERT_TRUE(Heap.heap().isLowFat(B));
  EXPECT_EQ(Heap.shard(1).base(B), B);
  EXPECT_EQ(B[0], 42) << "sibling shard's memory untouched";

  // The shard's sub-arena is recycled from the start.
  void *A2 = Heap.shard(0).allocate(64);
  EXPECT_EQ(A2, static_cast<void *>(A)) << "bump pointer rewound";
  Heap.shard(0).deallocate(A2);
  Heap.shard(1).deallocate(B);
}

//===----------------------------------------------------------------------===//
// SessionPool
//===----------------------------------------------------------------------===//

struct Victim {
  int Data[4];
};

} // namespace

EFFECTIVE_REFLECT(Victim, Data);

namespace {

/// One type error + Events bounds events against the shard session.
void misbehave(Sanitizer &S, unsigned Events) {
  TypeContext &Ctx = S.types();
  void *P = S.malloc(sizeof(Victim), TypeOf<Victim>::get(Ctx));
  S.typeCheck(P, Ctx.getDouble()); // Type confusion.
  Bounds B = S.boundsGet(P);
  auto *Raw = static_cast<char *>(P);
  for (unsigned I = 0; I < Events; ++I)
    S.boundsCheck(Raw + sizeof(Victim) + 4, 4, B); // Same bucket.
  S.free(P);
}

TEST(SessionPoolTest, ShardsAreIsolatedAndCountersMerge) {
  SessionPool Pool(quietPool(3));
  ASSERT_EQ(Pool.numShards(), 3u);

  // Distinct per-shard work; counters must not bleed.
  std::thread T0([&] { misbehave(Pool.shard(0), 1); });
  std::thread T1([&] { misbehave(Pool.shard(1), 2); });
  T0.join();
  T1.join();

  EXPECT_EQ(Pool.shard(0).counters().snapshot().TypeChecks, 1u);
  EXPECT_EQ(Pool.shard(1).counters().snapshot().TypeChecks, 1u);
  EXPECT_EQ(Pool.shard(2).counters().snapshot().TypeChecks, 0u);

  CheckCounters::Snapshot Merged = Pool.counters();
  EXPECT_EQ(Merged.TypeChecks, 2u);
  EXPECT_EQ(Merged.BoundsGets, 2u);
  EXPECT_EQ(Merged.BoundsChecks, 3u);
}

TEST(SessionPoolTest, CentralDrainDedupsAcrossShards) {
  SessionPool Pool(quietPool(4));
  // Every shard trips the same two logical issues (same types, same
  // offsets). The pool-level story matches the paper's: one bucket per
  // distinct issue, all events counted.
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < 4; ++T)
    Workers.emplace_back([&, T] { misbehave(Pool.shard(T), 1); });
  for (std::thread &W : Workers)
    W.join();

  EXPECT_EQ(Pool.issuesFound(), 2u)
      << "same issue from four shards buckets once";
  EXPECT_EQ(Pool.reporter().numEvents(), 8u) << "all events counted";
  // Shard reporters never bucket anything themselves.
  EXPECT_EQ(Pool.shard(0).reporter().numIssues(), 0u);
}

TEST(SessionPoolTest, RingOverflowFallsBackWithoutLosingEvents) {
  PoolOptions Options = quietPool(2);
  Options.ErrorRingCapacity = 4; // Tiny: force overflow.
  SessionPool Pool(Options);

  constexpr unsigned Events = 500;
  std::thread A([&] { misbehave(Pool.shard(0), Events); });
  std::thread B([&] { misbehave(Pool.shard(1), Events); });
  A.join();
  B.join();
  Pool.drain();

  // 2 shards x (1 type_check + 1 bounds error x Events).
  EXPECT_EQ(Pool.reporter().numEvents(), 2u * (Events + 1));
  EXPECT_GT(Pool.ringOverflows(), 0u) << "the tiny ring must overflow";
}

TEST(SessionPoolTest, CheckoutIsThreadAffine) {
  SessionPool Pool(quietPool(2));

  // Fresh threads (fresh thread-local affinity) land round-robin and
  // stick to their shard on every re-checkout.
  unsigned A = ~0u, B = ~0u;
  std::thread T1([&] {
    A = Pool.checkoutIndex();
    for (int I = 0; I < 10; ++I)
      EXPECT_EQ(Pool.checkoutIndex(), A) << "sticky per thread";
    EXPECT_EQ(&Pool.checkout(), &Pool.shard(A));
  });
  T1.join();
  std::thread T2([&] { B = Pool.checkoutIndex(); });
  T2.join();
  EXPECT_LT(A, 2u);
  EXPECT_LT(B, 2u);
  EXPECT_NE(A, B)
      << "second thread lands on the other shard (round-robin)";
}

TEST(SessionPoolTest, CrossShardPointersCheckCorrectly) {
  SessionPool Pool(quietPool(2));
  TypeContext &Ctx = Pool.types();
  const TypeInfo *IntTy = Ctx.getInt();

  // Shard 0 allocates; shard 1 checks the pointer: one shared arena,
  // so base/size/META resolution works from any shard's session.
  auto *P = static_cast<int *>(
      Pool.shard(0).malloc(10 * sizeof(int), IntTy));
  Bounds B = Pool.shard(1).typeCheck(P, IntTy);
  EXPECT_EQ(B, Bounds::forObject(P, 10 * sizeof(int)));
  EXPECT_EQ(Pool.shard(1).dynamicTypeOf(P), IntTy);

  // And shard 1 catches an overflow on shard 0's object.
  Pool.shard(1).boundsCheck(P + 10, sizeof(int), B);
  EXPECT_EQ(Pool.issuesFound(), 1u);
  Pool.shard(1).free(P); // Cross-shard free.
}

TEST(SessionPoolTest, CrossShardReallocKeepsOwningShardAffinity) {
  SessionPool Pool(quietPool(2));
  TypeContext &Ctx = Pool.types();
  const TypeInfo *IntTy = Ctx.getInt();
  lowfat::LowFatHeap &Heap = Pool.heap().heap();

  // Shard 0 allocates; shard 1's session grows the block. The fresh
  // block must be carved from shard 0's slice (the owner), not shard
  // 1's — otherwise the object migrates into the calling tenant's
  // footprint and a later resetShard(0) would miss it (or resetShard(1)
  // would free it from under shard 0's tenant).
  auto *P = static_cast<int *>(Pool.shard(0).malloc(8 * sizeof(int), IntTy));
  ASSERT_TRUE(Heap.isLowFat(P));
  ASSERT_EQ(Heap.shardOf(P), 0u);
  for (int I = 0; I != 8; ++I)
    P[I] = I;

  auto *Grown = static_cast<int *>(
      Pool.shard(1).realloc(P, 64 * sizeof(int), IntTy));
  ASSERT_TRUE(Heap.isLowFat(Grown));
  EXPECT_EQ(Heap.shardOf(Grown), 0u) << "realloc migrated the block off "
                                        "its owning shard";
  for (int I = 0; I != 8; ++I)
    EXPECT_EQ(Grown[I], I);
  EXPECT_EQ(Pool.shard(1).dynamicTypeOf(Grown), IntTy);

  // Shrinking through yet another cross-shard call stays put too.
  auto *Shrunk = static_cast<int *>(
      Pool.shard(1).realloc(Grown, 2 * sizeof(int), IntTy));
  ASSERT_TRUE(Heap.isLowFat(Shrunk));
  EXPECT_EQ(Heap.shardOf(Shrunk), 0u);
  EXPECT_EQ(Shrunk[1], 1);
  Pool.shard(0).free(Shrunk);
  EXPECT_EQ(Pool.issuesFound(), 0u);
}

TEST(SessionPoolTest, ResetShardRecyclesArenaAndCounters) {
  SessionPool Pool(quietPool(2));
  TypeContext &Ctx = Pool.types();
  const TypeInfo *IntTy = Ctx.getInt();

  // Tenant 1 on shard 0; a long-lived object on shard 1.
  auto *Survivor = static_cast<int *>(
      Pool.shard(1).malloc(4 * sizeof(int), IntTy));
  Survivor[0] = 7;
  void *First = Pool.shard(0).malloc(64, IntTy);
  misbehave(Pool.shard(0), 3);
  EXPECT_GT(Pool.shard(0).counters().snapshot().BoundsChecks, 0u);

  Pool.resetShard(0);

  // Fresh tenant: zeroed counters, recycled sub-arena (the very first
  // address is served again), sibling shard untouched.
  CheckCounters::Snapshot Snap = Pool.shard(0).counters().snapshot();
  EXPECT_EQ(Snap.TypeChecks + Snap.BoundsChecks + Snap.BoundsGets, 0u);
  void *Fresh = Pool.shard(0).malloc(64, IntTy);
  EXPECT_EQ(Fresh, First) << "arena slice rewound for reuse";
  EXPECT_EQ(Survivor[0], 7);
  EXPECT_EQ(Pool.shard(1).dynamicTypeOf(Survivor), IntTy);
  Pool.shard(0).free(Fresh);
  Pool.shard(1).free(Survivor);
}

TEST(SessionPoolTest, SiteAttributionSurvivesTheErrorRingDrain) {
  // Every shard errs at a *registered* site from its own thread; the
  // events cross the lock-free ring as plain values and the central
  // drainer must still render the source-located report — the SiteInfo
  // pointers target the pool-wide registry, not any shard state.
  SessionPool Pool(quietPool(4));
  TypeContext &Ctx = Pool.types();
  const TypeInfo *IntTy = Ctx.getInt();

  SiteTable Table;
  Table.File = "mt.c";
  Table.Entries.push_back({CheckSiteKind::BoundsCheck, SourceLoc{7, 3},
                           "worker", nullptr});
  // Registration through one shard session lands in the pool-wide
  // registry (RuntimeOptions::SharedSites).
  SiteId Base = Pool.shard(0).registerSiteTable(Table);
  ASSERT_NE(Base, NoSite);
  EXPECT_EQ(Pool.siteTables().numTables(), 1u);

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < 4; ++T) {
    Workers.emplace_back([&, T] {
      Sanitizer &S = Pool.shard(T);
      auto *P = static_cast<int *>(S.malloc(8 * sizeof(int), IntTy));
      Bounds B = S.typeCheck(P, IntTy);
      S.boundsCheck(P + 8, sizeof(int), B, Base); // Overflow at site 0.
      S.free(P);
    });
  }
  for (std::thread &W : Workers)
    W.join();

  Pool.drain();
  // Four shards, one site, one offense: one pool-wide issue, four
  // events, attributed to the registered location.
  EXPECT_EQ(Pool.reporter().numIssues(), 1u);
  EXPECT_EQ(Pool.reporter().numEventsAtSite(Base), 4u);
  EXPECT_TRUE(Pool.reporter().hasIssueMatching("mt.c:7:3"));
  EXPECT_TRUE(Pool.reporter().hasIssueMatching("in worker"));
  // The rendered message is the attributed form — no raw pointer.
  for (const ErrorBucket &B : Pool.reporter().buckets())
    EXPECT_EQ(B.Message.find("pointer 0x"), std::string::npos)
        << B.Message;
}

//===----------------------------------------------------------------------===//
// Site-indexed type-check inline caches under concurrency (PR 3)
//===----------------------------------------------------------------------===//

TEST(SiteCacheConcurrencyTest, SharedSessionSeqlockIsRaceFreeAndCorrect) {
  // The worst case for the seqlock: several threads hammer ONE session
  // at ONE site slot with two alternating resolutions, so concurrent
  // fills and probes constantly interleave. Every returned bounds
  // value must be one of the two correct results (a torn read must be
  // impossible); TSan (the CI job runs this file) verifies the
  // synchronization discipline itself.
  Sanitizer S(quietOptions());
  TypeContext &Ctx = S.types();
  RecordType *Rec = RecordBuilder(Ctx, TypeKind::Struct, "pair")
                        .addField("a", Ctx.getArray(Ctx.getInt(), 4))
                        .addField("b", Ctx.getDouble())
                        .finish();
  char *P = static_cast<char *>(S.malloc(Rec->size(), Rec));
  Runtime &RT = S.runtime();

  const Bounds IntRef = RT.typeCheckUncached(P, Ctx.getInt());
  const Bounds DblRef = RT.typeCheckUncached(P + 16, Ctx.getDouble());
  const SiteId Site = 5;

  std::atomic<bool> Wrong{false};
  std::vector<std::thread> Threads;
  for (int W = 0; W < 4; ++W) {
    Threads.emplace_back([&] {
      for (int I = 0; I < 4000; ++I) {
        Bounds BI = RT.typeCheck(P, Ctx.getInt(), Site);
        Bounds BD = RT.typeCheck(P + 16, Ctx.getDouble(), Site);
        if (BI != IntRef || BD != DblRef)
          Wrong.store(true, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_FALSE(Wrong.load()) << "a probe returned torn/stale bounds";
  EXPECT_EQ(S.reporter().numIssues(), 0u);
  S.free(P);
}

TEST(SiteCacheConcurrencyTest, PoolShardCachesAreIndependent) {
  SessionPool Pool(quietPool(2));
  const TypeInfo *IntTy = Pool.types().getInt();

  // Warm shard 0's cache; shard 1 must stay cold.
  auto *P = static_cast<int *>(Pool.shard(0).malloc(64, IntTy));
  for (int I = 0; I < 5; ++I)
    Pool.shard(0).typeCheck(P, IntTy);
  auto C0 = Pool.shard(0).counters().snapshot();
  auto C1 = Pool.shard(1).counters().snapshot();
  EXPECT_EQ(C0.TypeCheckCacheMisses, 1u);
  EXPECT_EQ(C0.TypeCheckCacheHits, 4u);
  EXPECT_EQ(C1.TypeCheckCacheHits + C1.TypeCheckCacheMisses, 0u);

  // Merged counters fold the hit/miss columns like every other field.
  CheckCounters::Snapshot Merged = Pool.counters();
  EXPECT_EQ(Merged.TypeCheckCacheHits, 4u);
  EXPECT_EQ(Merged.TypeCheckCacheMisses, 1u);

  // resetShard drops the shard's cache with the rest of its state: the
  // recycled address must re-fill, not replay.
  Pool.resetShard(0);
  auto *Q = static_cast<int *>(Pool.shard(0).malloc(64, IntTy));
  ASSERT_EQ(static_cast<void *>(Q), static_cast<void *>(P));
  Pool.shard(0).typeCheck(Q, IntTy);
  auto After = Pool.shard(0).counters().snapshot();
  EXPECT_EQ(After.TypeCheckCacheHits, 0u);
  EXPECT_EQ(After.TypeCheckCacheMisses, 1u);
  Pool.shard(0).free(Q);
}

TEST(SiteCacheConcurrencyTest, PoolOptionSizesAndDisablesShardCaches) {
  PoolOptions Options = quietPool(2);
  Options.SiteCacheEntries = 0; // Disabled on every shard.
  SessionPool Pool(Options);
  const TypeInfo *IntTy = Pool.types().getInt();
  auto *P = static_cast<int *>(Pool.shard(0).malloc(64, IntTy));
  for (int I = 0; I < 3; ++I)
    Pool.shard(0).typeCheck(P, IntTy);
  auto C = Pool.shard(0).counters().snapshot();
  EXPECT_EQ(C.TypeCheckCacheHits, 0u);
  EXPECT_EQ(C.TypeCheckCacheMisses, 3u);
  Pool.shard(0).free(P);
}

TEST(SessionPoolTest, PolicyAppliesToEveryShard) {
  SessionPool Pool(quietPool(2, CheckPolicy::BoundsOnly));
  TypeContext &Ctx = Pool.types();
  auto *P = static_cast<int *>(
      Pool.shard(0).malloc(4 * sizeof(int), Ctx.getInt()));
  // BoundsOnly: typeCheck degrades to bounds_get — no type error even
  // for a confused type.
  Pool.shard(0).typeCheck(P, Ctx.getDouble());
  EXPECT_EQ(Pool.issuesFound(), 0u);
  EXPECT_EQ(Pool.counters().BoundsGets, 1u);
  EXPECT_EQ(Pool.counters().TypeChecks, 0u);
  Pool.shard(0).free(P);
}

//===----------------------------------------------------------------------===//
// Read-mostly site registry: lock-free resolve under registration
//===----------------------------------------------------------------------===//

TEST(SiteRegistrySnapshotTest, ResolveRacesRegistrationSafely) {
  // The error-storm scenario the snapshot design exists for: worker
  // threads resolve sites continuously (the error slow path) while
  // another thread keeps registering new module tables. Every resolve
  // must return either null (id not yet published) or a permanently
  // valid SiteInfo — and previously returned pointers must stay
  // readable forever (snapshots retire, never free). TSan (the CI job
  // runs this file) checks the synchronization discipline itself.
  SiteTableRegistry Registry;
  constexpr unsigned Tables = 64;
  constexpr unsigned SitesPerTable = 8;

  std::atomic<bool> Stop{false};
  std::atomic<SiteId> Published{0};
  std::vector<std::thread> Readers;
  for (int W = 0; W < 3; ++W) {
    Readers.emplace_back([&] {
      while (!Stop.load(std::memory_order_acquire)) {
        SiteId Max = Published.load(std::memory_order_acquire);
        for (SiteId S = 0; S < Max + 4; ++S) {
          const SiteInfo *Info = Registry.resolve(S);
          if (S < Max) {
            ASSERT_NE(Info, nullptr) << "published site vanished";
            ASSERT_EQ(Info->Site, S);
            ASSERT_EQ(Info->Line, S % SitesPerTable + 1);
          }
          if (Info) {
            // The strings must be dereferenceable no matter how many
            // snapshots have been superseded since.
            ASSERT_NE(Info->File[0], '\0');
          }
        }
      }
    });
  }

  for (unsigned T = 0; T < Tables; ++T) {
    SiteTable Table;
    Table.File = "storm.c";
    for (unsigned I = 0; I < SitesPerTable; ++I)
      Table.Entries.push_back(
          {CheckSiteKind::BoundsCheck, SourceLoc{I + 1, 1}, "f",
           nullptr});
    SiteId Base = Registry.registerTable(Table, /*Key=*/T + 1);
    ASSERT_EQ(Base, T * SitesPerTable);
    Published.store(Base + SitesPerTable, std::memory_order_release);
  }
  Stop.store(true, std::memory_order_release);
  for (std::thread &R : Readers)
    R.join();
  EXPECT_EQ(Registry.numTables(), Tables);
  EXPECT_EQ(Registry.numSites(), uint64_t(Tables) * SitesPerTable);
}

//===----------------------------------------------------------------------===//
// Pool wiring of the allocator fast-path knobs (ABI 1.4 options)
//===----------------------------------------------------------------------===//

TEST(SessionPoolTest, HeapOptionsWireMagazinesAndStealingThrough) {
  PoolOptions Options = quietPool(2);
  Options.Heap.MagazineSize = 8;
  Options.Heap.EnableWorkStealing = true;
  SessionPool Pool(Options);
  EXPECT_EQ(Pool.heap().heap().magazineSize(), 8u);
  EXPECT_TRUE(Pool.heap().heap().workStealingEnabled());

  // Churn through a shard session: the steady state must be served by
  // the magazines (hits visible in the shard's heap stats).
  const TypeInfo *IntTy = Pool.types().getInt();
  for (int I = 0; I < 50; ++I) {
    void *P = Pool.shard(0).malloc(64, IntTy);
    Pool.shard(0).free(P);
  }
  lowfat::HeapStats Stats = Pool.heap().shardStats(0);
  EXPECT_GT(Stats.MagazineHits, 40u);
  EXPECT_EQ(Stats.ExhaustFallbacks, 0u);
}

TEST(SessionPoolTest, ResetShardReclaimsWorkerMagazines) {
  // The pool-level stale-TLS regression: a worker thread's magazine
  // caches blocks of its shard; the supervisor recycles the shard for
  // a new tenant; the worker's next allocation must not replay a
  // stale block that now belongs to the tenant.
  PoolOptions Options = quietPool(2);
  Options.Heap.MagazineSize = 8;
  SessionPool Pool(Options);
  const TypeInfo *IntTy = Pool.types().getInt();

  void *A = nullptr, *B = nullptr;
  std::atomic<int> Phase{0};
  std::thread Worker([&] {
    Sanitizer &S = Pool.shard(0);
    A = S.malloc(64, IntTy);
    B = S.malloc(64, IntTy);
    S.free(B); // Parks in the worker's magazine.
    Phase.store(1, std::memory_order_release);
    while (Phase.load(std::memory_order_acquire) != 2)
      std::this_thread::yield();
    void *D = S.malloc(64, IntTy);
    EXPECT_NE(D, A) << "stale magazine block aliased the new tenant";
    EXPECT_NE(D, B) << "stale magazine block aliased the new tenant";
  });
  while (Phase.load(std::memory_order_acquire) != 1)
    std::this_thread::yield();

  Pool.resetShard(0);
  void *C1 = Pool.shard(0).malloc(64, IntTy);
  void *C2 = Pool.shard(0).malloc(64, IntTy);
  EXPECT_EQ(C1, A) << "recycled slice serves from its start";
  EXPECT_EQ(C2, B);
  Phase.store(2, std::memory_order_release);
  Worker.join();
}

//===----------------------------------------------------------------------===//
// Multi-threaded harness mode
//===----------------------------------------------------------------------===//

const workloads::Workload &findWorkload(const char *Name) {
  for (const workloads::Workload &W : workloads::specWorkloads())
    if (std::string_view(W.Info.Name) == Name)
      return W;
  ADD_FAILURE() << "workload not found: " << Name;
  return workloads::specWorkloads().front();
}

TEST(HarnessMTTest, FanOutMatchesSingleThreadedRun) {
  const workloads::Workload &W = findWorkload("mcf"); // Clean kernel.
  workloads::RunStats Single =
      workloads::runWorkload(W, workloads::PolicyKind::Full, 2);
  workloads::RunStats MT =
      workloads::runWorkloadMT(W, workloads::PolicyKind::Full, 2, 3);

  EXPECT_EQ(MT.Checksum, Single.Checksum)
      << "every shard must reproduce the deterministic kernel result";
  // Merged counters are exactly N single runs.
  EXPECT_EQ(MT.Checks.TypeChecks, 3 * Single.Checks.TypeChecks);
  EXPECT_EQ(MT.Checks.BoundsChecks, 3 * Single.Checks.BoundsChecks);
  EXPECT_EQ(MT.Issues, Single.Issues);
}

TEST(HarnessMTTest, SeededIssuesDedupAcrossShards) {
  // A workload with seeded bugs: every shard finds the same issues;
  // the pool's central reporter buckets them once, like one process
  // would (Figure 7 semantics).
  const workloads::Workload &W = findWorkload("perlbench");
  ASSERT_GT(W.Info.SeededIssues, 0u);
  workloads::RunStats Single =
      workloads::runWorkload(W, workloads::PolicyKind::Full, 1);
  workloads::RunStats MT =
      workloads::runWorkloadMT(W, workloads::PolicyKind::Full, 1, 2);
  EXPECT_EQ(MT.Issues, Single.Issues);
  EXPECT_EQ(MT.Checksum, Single.Checksum);
  EXPECT_GE(MT.ErrorEvents, 2 * Single.ErrorEvents)
      << "events accumulate across shards even though issues dedup";
}

} // namespace
