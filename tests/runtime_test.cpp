//===- tests/runtime_test.cpp - Runtime (type_check et al.) tests ---------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Covers Figure 6 (type_malloc / type_check), Example 5, the FREE type
/// (use-after-free / double-free / reuse-after-free semantics), legacy
/// pointers, coercions, bucketing and the counting/logging modes.
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"

#include "core/Layout.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

using namespace effective;

namespace {

class RuntimeTest : public ::testing::Test {
protected:
  RuntimeTest() : RT(Ctx, quietOptions()) {
    // The paper's Example 2 types with its padding-free layout.
    S = Ctx.createRecord(TypeKind::Struct, "S");
    T = Ctx.createRecord(TypeKind::Struct, "T");
    FieldInfo SFields[] = {
        {"a", Ctx.getArray(Ctx.getInt(), 3), 0, false},
        {"s", Ctx.getPointer(Ctx.getChar()), 12, false},
    };
    Ctx.defineRecord(S, SFields, 20, 4);
    FieldInfo TFields[] = {
        {"f", Ctx.getFloat(), 0, false},
        {"t", S, 4, false},
    };
    Ctx.defineRecord(T, TFields, 24, 4);
  }

  static RuntimeOptions quietOptions() {
    RuntimeOptions Options;
    Options.Reporter.Mode = ReportMode::Count;
    return Options;
  }

  TypeContext Ctx;
  Runtime RT;
  RecordType *S = nullptr;
  RecordType *T = nullptr;
};

} // namespace

//===----------------------------------------------------------------------===//
// Typed allocation
//===----------------------------------------------------------------------===//

TEST_F(RuntimeTest, AllocateBindsTypeAndSize) {
  void *P = RT.allocate(100 * sizeof(int), Ctx.getInt());
  const MetaHeader *Meta = RT.metaOf(P);
  ASSERT_NE(Meta, nullptr);
  EXPECT_EQ(Meta->Type, Ctx.getInt());
  EXPECT_EQ(Meta->Size, 100 * sizeof(int));
  EXPECT_EQ(RT.dynamicTypeOf(P), Ctx.getInt());
  Bounds B = RT.allocationBounds(P);
  EXPECT_EQ(B.Lo, reinterpret_cast<uintptr_t>(P));
  EXPECT_EQ(B.Hi - B.Lo, 100 * sizeof(int));
  RT.deallocate(P);
}

TEST_F(RuntimeTest, MetaIsInvisibleToTheObject) {
  // Writing the full object must not corrupt the META header.
  char *P = static_cast<char *>(RT.allocate(64, Ctx.getChar()));
  std::memset(P, 0xff, 64);
  EXPECT_EQ(RT.dynamicTypeOf(P), Ctx.getChar());
  EXPECT_EQ(RT.metaOf(P)->Size, 64u);
  RT.deallocate(P);
}

TEST_F(RuntimeTest, CallocZeroes) {
  int *P = static_cast<int *>(RT.allocateZeroed(16, sizeof(int),
                                                Ctx.getInt()));
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(P[I], 0) << I;
  RT.deallocate(P);
}

TEST_F(RuntimeTest, ReallocCopiesAndRebinds) {
  int *P = static_cast<int *>(RT.allocate(4 * sizeof(int), Ctx.getInt()));
  for (int I = 0; I < 4; ++I)
    P[I] = I + 1;
  auto *Q = static_cast<int *>(
      RT.reallocate(P, 100 * sizeof(int), Ctx.getInt()));
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(Q[I], I + 1) << I;
  EXPECT_EQ(RT.metaOf(Q)->Size, 100 * sizeof(int));
  // The old block is now FREE.
  EXPECT_TRUE(RT.dynamicTypeOf(P)->isFree());
  RT.deallocate(Q);
}

//===----------------------------------------------------------------------===//
// type_check: Example 5 and friends
//===----------------------------------------------------------------------===//

TEST_F(RuntimeTest, Example5InteriorPointerCheck) {
  // Let p point to an object of type T; q = p + 12.
  char *P = static_cast<char *>(RT.allocate(24, T));
  char *Q = P + 12;
  // type_check(q, int[]) matches <int[3], 8>: bounds p+4 .. p+16.
  Bounds B = RT.typeCheck(Q, Ctx.getInt());
  EXPECT_EQ(B.Lo, reinterpret_cast<uintptr_t>(P) + 4);
  EXPECT_EQ(B.Hi, reinterpret_cast<uintptr_t>(P) + 16);
  EXPECT_EQ(RT.reporter().numIssues(), 0u);
  // type_check(q, double[]) fails: no matching sub-object.
  Bounds W = RT.typeCheck(Q, Ctx.getDouble());
  EXPECT_TRUE(W.isWide());
  EXPECT_EQ(RT.reporter().numIssues(ErrorKind::TypeError), 1u);
  RT.deallocate(P);
}

TEST_F(RuntimeTest, CheckAtBaseReturnsAllocationBounds) {
  char *P = static_cast<char *>(RT.allocate(10 * 24, T)); // T[10]
  Bounds B = RT.typeCheck(P, T);
  EXPECT_EQ(B.Lo, reinterpret_cast<uintptr_t>(P));
  EXPECT_EQ(B.Hi, reinterpret_cast<uintptr_t>(P) + 10 * 24);
  // Element 7 also matches with full array bounds (T[] is incomplete).
  Bounds B7 = RT.typeCheck(P + 7 * 24, T);
  EXPECT_EQ(B7, B);
  RT.deallocate(P);
}

TEST_F(RuntimeTest, SubObjectBoundsStopOverflow) {
  // The introduction's account example: an overflow of number[8] into
  // balance must be stopped by the narrowed bounds.
  RecordType *Account = RecordBuilder(Ctx, TypeKind::Struct, "account")
                            .addField("number", Ctx.getArray(Ctx.getInt(), 8))
                            .addField("balance", Ctx.getFloat())
                            .finish();
  char *P = static_cast<char *>(RT.allocate(Account->size(), Account));
  Bounds B = RT.typeCheck(P, Ctx.getInt()); // int* into number[8].
  EXPECT_EQ(B.Hi - B.Lo, 8 * sizeof(int))
      << "bounds must cover number[8] only, not balance";
  EXPECT_TRUE(B.contains(P + 7 * sizeof(int), sizeof(int)));
  EXPECT_FALSE(B.contains(P + 8 * sizeof(int), sizeof(int)))
      << "number[8] aliases balance and must be out of bounds";
  RT.boundsCheck(P + 8 * sizeof(int), sizeof(int), B);
  EXPECT_EQ(RT.reporter().numIssues(ErrorKind::BoundsError), 1u);
  RT.deallocate(P);
}

TEST_F(RuntimeTest, OneElementAllocationEndPointer) {
  char *P = static_cast<char *>(RT.allocate(24, T));
  // One-past-the-end pointer may be formed and checked, but any access
  // through it must fail the bounds check.
  Bounds B = RT.typeCheck(P + 24, T);
  EXPECT_EQ(RT.reporter().numIssues(), 0u)
      << "one-past-the-end is not an error by itself";
  EXPECT_FALSE(B.contains(P + 24, 1));
  RT.deallocate(P);
}

TEST_F(RuntimeTest, PointerOutsideAllocationReports) {
  char *P = static_cast<char *>(RT.allocate(24, T));
  // Far out-of-bounds input pointer (still within the low-fat region of
  // another block would be different; here beyond the alloc size but
  // within the block's size class).
  RT.typeCheck(P + 30, Ctx.getInt());
  EXPECT_GE(RT.reporter().numIssues(ErrorKind::BoundsError), 1u);
  RT.deallocate(P);
}

TEST_F(RuntimeTest, LegacyPointersGetWideBounds) {
  int Local[4] = {0, 1, 2, 3};
  Bounds B = RT.typeCheck(&Local[0], Ctx.getFloat());
  EXPECT_TRUE(B.isWide());
  EXPECT_EQ(RT.reporter().numIssues(), 0u)
      << "legacy pointers are never type errors";
  auto C = RT.counters().snapshot();
  EXPECT_EQ(C.LegacyTypeChecks, 1u);
  EXPECT_EQ(C.TypeChecks, 1u);
}

TEST_F(RuntimeTest, UntypedAllocationGetsWideBounds) {
  void *P = RT.allocate(64, nullptr);
  Bounds B = RT.typeCheck(P, Ctx.getInt());
  EXPECT_TRUE(B.isWide());
  EXPECT_EQ(RT.reporter().numIssues(), 0u);
  RT.deallocate(P);
}

//===----------------------------------------------------------------------===//
// Coercions
//===----------------------------------------------------------------------===//

TEST_F(RuntimeTest, CharCastResetsBoundsToAllocation) {
  char *P = static_cast<char *>(RT.allocate(24, T));
  Bounds B = RT.typeCheck(P + 4, Ctx.getChar());
  EXPECT_EQ(B.Lo, reinterpret_cast<uintptr_t>(P));
  EXPECT_EQ(B.Hi, reinterpret_cast<uintptr_t>(P) + 24);
  EXPECT_EQ(RT.reporter().numIssues(), 0u);
  RT.deallocate(P);
}

TEST_F(RuntimeTest, CharBufferCoercesToAnyType) {
  // An allocation first used as char[] may later be read as any type
  // (the paper's second hash table lookup).
  char *P = static_cast<char *>(RT.allocate(64, Ctx.getChar()));
  Bounds B = RT.typeCheck(P + 8, Ctx.getInt());
  EXPECT_EQ(RT.reporter().numIssues(), 0u);
  EXPECT_EQ(B.Lo, reinterpret_cast<uintptr_t>(P));
  EXPECT_EQ(B.Hi, reinterpret_cast<uintptr_t>(P) + 64);
  RT.deallocate(P);
}

TEST_F(RuntimeTest, VoidPointerCoercions) {
  RecordType *Holder = RecordBuilder(Ctx, TypeKind::Struct, "holder")
                           .addField("vp", Ctx.getPointer(Ctx.getVoid()))
                           .addField("x", Ctx.getLong())
                           .addField("ip", Ctx.getPointer(Ctx.getInt()))
                           .finish();
  char *P = static_cast<char *>(RT.allocate(Holder->size(), Holder));
  // A static (int*) matches the void* member at offset 0...
  RT.typeCheck(P + 0, Ctx.getPointer(Ctx.getInt()));
  EXPECT_EQ(RT.reporter().numIssues(), 0u);
  // ...and a static (void*) matches the int* member at offset 16.
  RT.typeCheck(P + 16, Ctx.getPointer(Ctx.getVoid()));
  EXPECT_EQ(RT.reporter().numIssues(), 0u);
  // But (float*) against the (int*) member is a type error (perlbench's
  // T* vs T** class of bugs must stay detectable; offset 16 is not
  // adjacent to any void* member, so no coercion applies).
  RT.typeCheck(P + 16, Ctx.getPointer(Ctx.getFloat()));
  EXPECT_EQ(RT.reporter().numIssues(ErrorKind::TypeError), 1u);
  RT.deallocate(P);
}

//===----------------------------------------------------------------------===//
// FREE type: use-after-free, double free, reuse-after-free
//===----------------------------------------------------------------------===//

TEST_F(RuntimeTest, UseAfterFreeDetected) {
  int *P = static_cast<int *>(RT.allocate(sizeof(int), Ctx.getInt()));
  RT.deallocate(P);
  EXPECT_TRUE(RT.dynamicTypeOf(P)->isFree());
  Bounds B = RT.typeCheck(P, Ctx.getInt());
  EXPECT_TRUE(B.isWide());
  EXPECT_EQ(RT.reporter().numIssues(ErrorKind::UseAfterFree), 1u);
}

TEST_F(RuntimeTest, DoubleFreeDetected) {
  int *P = static_cast<int *>(RT.allocate(sizeof(int), Ctx.getInt()));
  RT.deallocate(P);
  RT.deallocate(P);
  EXPECT_EQ(RT.reporter().numIssues(ErrorKind::DoubleFree), 1u);
}

TEST_F(RuntimeTest, ReuseAfterFreeDifferentTypeDetected) {
  // Free an int block, reallocate (LIFO gives the same block) as float;
  // the dangling int* check now sees dynamic type float -> type error.
  int *P = static_cast<int *>(RT.allocate(40, Ctx.getInt()));
  RT.deallocate(P);
  void *Q = RT.allocate(40, Ctx.getFloat());
  ASSERT_EQ(static_cast<void *>(P), Q) << "test requires block reuse";
  RT.typeCheck(P, Ctx.getInt());
  EXPECT_EQ(RT.reporter().numIssues(ErrorKind::TypeError), 1u)
      << "reuse-after-free with a different type is a type error";
  RT.deallocate(Q);
}

TEST_F(RuntimeTest, ReuseAfterFreeSameTypeIsMissed) {
  // The paper's documented partial coverage: same-type reuse passes.
  int *P = static_cast<int *>(RT.allocate(40, Ctx.getInt()));
  RT.deallocate(P);
  void *Q = RT.allocate(40, Ctx.getInt());
  ASSERT_EQ(static_cast<void *>(P), Q);
  RT.typeCheck(P, Ctx.getInt());
  EXPECT_EQ(RT.reporter().numIssues(), 0u)
      << "same-type reuse-after-free is (by design) not detected";
  RT.deallocate(Q);
}

TEST_F(RuntimeTest, ReallocOfFreedObjectReports) {
  int *P = static_cast<int *>(RT.allocate(sizeof(int), Ctx.getInt()));
  RT.deallocate(P);
  void *Q = RT.reallocate(P, 64, Ctx.getInt());
  EXPECT_NE(Q, nullptr);
  EXPECT_EQ(RT.reporter().numIssues(ErrorKind::UseAfterFree), 1u);
  RT.deallocate(Q);
}

//===----------------------------------------------------------------------===//
// Typed stack and globals
//===----------------------------------------------------------------------===//

TEST_F(RuntimeTest, StackObjectsAreTyped) {
  size_t Mark = RT.stackMark();
  void *P = RT.stackAllocate(24, T);
  EXPECT_EQ(RT.dynamicTypeOf(P), T);
  Bounds B = RT.typeCheck(P, T);
  EXPECT_EQ(B.Hi - B.Lo, 24u);
  RT.stackRelease(Mark);
  // The dangling stack pointer is now STACK-FREE, and the temporal
  // error classifies as a stack use-after-return, not a heap UAF.
  RT.typeCheck(P, T);
  EXPECT_EQ(RT.reporter().numIssues(ErrorKind::StackUseAfterReturn), 1u);
  EXPECT_EQ(RT.reporter().numIssues(ErrorKind::UseAfterFree), 0u);
}

TEST_F(RuntimeTest, GlobalObjectsAreTypedAndZeroed) {
  auto *G = static_cast<int *>(
      RT.globalAllocate(8 * sizeof(int), Ctx.getInt(), "counters"));
  EXPECT_EQ(RT.dynamicTypeOf(G), Ctx.getInt());
  for (int I = 0; I < 8; ++I)
    EXPECT_EQ(G[I], 0) << I;
  Bounds B = RT.typeCheck(G + 5, Ctx.getInt());
  EXPECT_TRUE(B.contains(G + 5, sizeof(int)));
}

//===----------------------------------------------------------------------===//
// bounds_check / bounds_narrow / bounds_get
//===----------------------------------------------------------------------===//

TEST_F(RuntimeTest, BoundsCheckCountsAndReports) {
  int *P = static_cast<int *>(RT.allocate(4 * sizeof(int), Ctx.getInt()));
  Bounds B = RT.typeCheck(P, Ctx.getInt());
  RT.boundsCheck(P + 3, sizeof(int), B); // OK.
  EXPECT_EQ(RT.reporter().numIssues(), 0u);
  RT.boundsCheck(P + 4, sizeof(int), B); // Overflow.
  EXPECT_EQ(RT.reporter().numIssues(ErrorKind::BoundsError), 1u);
  auto C = RT.counters().snapshot();
  EXPECT_EQ(C.BoundsChecks, 2u);
  RT.deallocate(P);
}

TEST_F(RuntimeTest, BoundsNarrowIsIntersection) {
  int *P = static_cast<int *>(RT.allocate(24, T));
  Bounds B = RT.allocationBounds(P);
  Bounds N = RT.boundsNarrow(B, reinterpret_cast<char *>(P) + 4, 12);
  EXPECT_EQ(N.Lo, reinterpret_cast<uintptr_t>(P) + 4);
  EXPECT_EQ(N.Hi, reinterpret_cast<uintptr_t>(P) + 16);
  auto C = RT.counters().snapshot();
  EXPECT_EQ(C.BoundsNarrows, 1u);
  RT.deallocate(P);
}

TEST_F(RuntimeTest, BoundsGetSkipsTypeCheck) {
  // bounds_get must succeed even with a mismatched static type
  // (EffectiveSan-bounds protects object bounds only).
  char *P = static_cast<char *>(RT.allocate(24, T));
  Bounds B = RT.boundsGet(P + 4);
  EXPECT_EQ(B.Lo, reinterpret_cast<uintptr_t>(P));
  EXPECT_EQ(B.Hi, reinterpret_cast<uintptr_t>(P) + 24);
  EXPECT_EQ(RT.reporter().numIssues(), 0u);
  auto C = RT.counters().snapshot();
  EXPECT_EQ(C.BoundsGets, 1u);
  EXPECT_EQ(C.TypeChecks, 0u);
  RT.deallocate(P);
}

//===----------------------------------------------------------------------===//
// Reporting modes and bucketing
//===----------------------------------------------------------------------===//

TEST_F(RuntimeTest, ErrorsAreBucketedByTypeAndOffset) {
  char *P = static_cast<char *>(RT.allocate(24, T));
  for (int I = 0; I < 100; ++I)
    RT.typeCheck(P + 12, Ctx.getDouble()); // Same issue repeatedly.
  EXPECT_EQ(RT.reporter().numIssues(), 1u) << "one bucket";
  EXPECT_EQ(RT.reporter().numEvents(), 100u) << "many events";
  RT.typeCheck(P + 4, Ctx.getDouble()); // Different offset, new bucket.
  EXPECT_EQ(RT.reporter().numIssues(), 2u);
  RT.deallocate(P);
}

TEST_F(RuntimeTest, LoggingModeWritesMessages) {
  std::FILE *Tmp = std::tmpfile();
  ASSERT_NE(Tmp, nullptr);
  RuntimeOptions Options;
  Options.Reporter.Mode = ReportMode::Log;
  Options.Reporter.Stream = Tmp;
  Runtime LogRT(Ctx, Options);
  char *P = static_cast<char *>(LogRT.allocate(24, T));
  LogRT.typeCheck(P + 12, Ctx.getDouble());
  LogRT.deallocate(P);
  std::fflush(Tmp);
  std::rewind(Tmp);
  char Buffer[512] = {};
  ASSERT_NE(std::fgets(Buffer, sizeof(Buffer), Tmp), nullptr);
  EXPECT_NE(std::string(Buffer).find("TYPE ERROR"), std::string::npos);
  EXPECT_NE(std::string(Buffer).find("double"), std::string::npos);
  EXPECT_NE(std::string(Buffer).find("struct T"), std::string::npos);
  std::fclose(Tmp);
}

//===----------------------------------------------------------------------===//
// Site-indexed type-check inline cache (PR 3)
//===----------------------------------------------------------------------===//

namespace {

/// Plain-value cache statistics for assertions.
struct CacheStats {
  uint64_t Hits;
  uint64_t Misses;
};

CacheStats cacheStats(Runtime &RT) {
  auto C = RT.counters().snapshot();
  return CacheStats{C.TypeCheckCacheHits, C.TypeCheckCacheMisses};
}

} // namespace

TEST_F(RuntimeTest, CacheHitIsBitIdenticalToSlowAndUncachedPaths) {
  char *P = static_cast<char *>(RT.allocate(24, T));
  char *Q = P + 12; // Example 5's interior pointer.
  const SiteId Site = 7;

  Bounds Reference = RT.typeCheckUncached(Q, Ctx.getInt());
  Bounds Miss = RT.typeCheck(Q, Ctx.getInt(), Site); // Fills the cache.
  Bounds Hit = RT.typeCheck(Q, Ctx.getInt(), Site);  // Replays it.
  EXPECT_EQ(Miss, Reference);
  EXPECT_EQ(Hit, Reference);

  CacheStats S = cacheStats(RT);
  EXPECT_EQ(S.Misses, 1u) << "first sited check must fill";
  EXPECT_EQ(S.Hits, 1u) << "second sited check must hit";
  EXPECT_EQ(RT.reporter().numIssues(), 0u);
  RT.deallocate(P);
}

TEST_F(RuntimeTest, CacheHitAtDifferentOffsetSameNormalization) {
  // T[10]: element bases at K = 2*24 .. 9*24 all normalize to offset 0
  // (element 1's base is the special sizeof(T) domain position, so it
  // gets its own resolution), and one cache entry serves them all.
  char *P = static_cast<char *>(RT.allocate(10 * 24, T));
  const SiteId Site = 9;
  Bounds First = RT.typeCheck(P, T, Site); // K=0: the filling miss.
  for (int I = 2; I < 10; ++I) {
    Bounds B = RT.typeCheck(P + I * 24, T, Site);
    EXPECT_EQ(B, First) << "element " << I;
  }
  CacheStats S = cacheStats(RT);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Hits, 8u);
  // Element 1 (K = sizeof(T), the table's "element 1 base" position)
  // resolves to the same full-array bounds through the slow path.
  EXPECT_EQ(RT.typeCheck(P + 24, T, Site), First);
  EXPECT_EQ(cacheStats(RT).Misses, 2u);
  RT.deallocate(P);
}

TEST_F(RuntimeTest, FreeInvalidatesCacheEntries) {
  // The temporal-safety regression: a hot cache entry must never mask
  // a use-after-free. free() rebinds the META type to FREE, which can
  // never equal a cached allocation type, so the revalidating fast
  // path falls through and the slow path reports.
  int *P = static_cast<int *>(RT.allocate(40, Ctx.getInt()));
  const SiteId Site = 11;
  RT.typeCheck(P, Ctx.getInt(), Site);
  RT.typeCheck(P, Ctx.getInt(), Site);
  ASSERT_EQ(cacheStats(RT).Hits, 1u) << "entry must be hot before free";

  RT.deallocate(P);
  Bounds B = RT.typeCheck(P, Ctx.getInt(), Site);
  EXPECT_TRUE(B.isWide());
  EXPECT_EQ(RT.reporter().numIssues(ErrorKind::UseAfterFree), 1u)
      << "cached entry masked the use-after-free";
  EXPECT_EQ(cacheStats(RT).Hits, 1u)
      << "the post-free check must not hit the cache";
}

TEST_F(RuntimeTest, ReuseAfterFreeThroughHotCacheEntry) {
  // Same-address reuse with a *different* type through a hot entry:
  // the fresh META type mismatches the cached key, so the slow path
  // runs and reports the type error (same coverage as the uncached
  // ReuseAfterFreeDifferentTypeDetected).
  int *P = static_cast<int *>(RT.allocate(40, Ctx.getInt()));
  const SiteId Site = 13;
  RT.typeCheck(P, Ctx.getInt(), Site);
  RT.typeCheck(P, Ctx.getInt(), Site);
  RT.deallocate(P);
  void *Q = RT.allocate(40, Ctx.getFloat());
  ASSERT_EQ(static_cast<void *>(P), Q) << "test requires block reuse";
  RT.typeCheck(P, Ctx.getInt(), Site);
  EXPECT_EQ(RT.reporter().numIssues(ErrorKind::TypeError), 1u);
  RT.deallocate(Q);
}

TEST_F(RuntimeTest, ReallocatedBlockRevalidatesSizeOnHit) {
  // Same type, same address, different size: the key matches (that's a
  // hit), and the bounds must come from the *fresh* META size — the
  // hit path clamps to the live allocation, never a remembered one.
  // 40 and 44 byte requests share the 64-byte size class, so the LIFO
  // free list hands the same block back with a different META size.
  int *P = static_cast<int *>(RT.allocate(10 * sizeof(int), Ctx.getInt()));
  const SiteId Site = 17;
  Bounds Small = RT.typeCheck(P, Ctx.getInt(), Site);
  EXPECT_EQ(Small.Hi - Small.Lo, 10 * sizeof(int));
  RT.deallocate(P);
  void *Q = RT.allocate(11 * sizeof(int), Ctx.getInt());
  ASSERT_EQ(static_cast<void *>(P), Q) << "test requires block reuse";
  Bounds Big = RT.typeCheck(Q, Ctx.getInt(), Site);
  EXPECT_EQ(Big.Hi - Big.Lo, 11 * sizeof(int))
      << "hit must rebuild bounds from the live META header";
  EXPECT_EQ(Big, RT.typeCheckUncached(Q, Ctx.getInt()));
  RT.deallocate(Q);
}

TEST_F(RuntimeTest, DifferentialCoercionsCachedVsUncached) {
  // The three layout-coercion fallbacks must behave identically cached
  // and uncached: (T*) <-> (void*) member coercion, the (char[])
  // second lookup, and one-past-the-end entries.
  RecordType *Holder = RecordBuilder(Ctx, TypeKind::Struct, "holder2")
                           .addField("vp", Ctx.getPointer(Ctx.getVoid()))
                           .addField("x", Ctx.getLong())
                           .addField("ip", Ctx.getPointer(Ctx.getInt()))
                           .finish();
  char *H = static_cast<char *>(RT.allocate(Holder->size(), Holder));
  char *C64 = static_cast<char *>(RT.allocate(64, Ctx.getChar()));
  char *TP = static_cast<char *>(RT.allocate(24, T));

  struct Probe {
    const char *Name;
    const void *Ptr;
    const TypeInfo *Static;
  } Probes[] = {
      // (int*) static matches the (void*) member at offset 0.
      {"int* vs void* member", H, Ctx.getPointer(Ctx.getInt())},
      // (void*) static matches the (int*) member at offset 16.
      {"void* vs int* member", H + 16, Ctx.getPointer(Ctx.getVoid())},
      // char[] allocation probed as int[]: the second (char) lookup.
      {"char[] second lookup", C64 + 8, Ctx.getInt()},
      // One-past-the-end of a single-element allocation.
      {"one past the end", TP + 24, T},
  };

  SiteId Site = 100;
  for (const Probe &Pr : Probes) {
    Bounds Reference = RT.typeCheckUncached(Pr.Ptr, Pr.Static);
    CacheStats Before = cacheStats(RT);
    Bounds Miss = RT.typeCheck(Pr.Ptr, Pr.Static, Site);
    Bounds Hit = RT.typeCheck(Pr.Ptr, Pr.Static, Site);
    CacheStats After = cacheStats(RT);
    EXPECT_EQ(Miss, Reference) << Pr.Name;
    EXPECT_EQ(Hit, Reference) << Pr.Name;
    EXPECT_EQ(After.Misses, Before.Misses + 1) << Pr.Name;
    EXPECT_EQ(After.Hits, Before.Hits + 1)
        << Pr.Name << ": coercion results must be cacheable";
    ++Site;
  }
  EXPECT_EQ(RT.reporter().numIssues(), 0u);

  RT.deallocate(H);
  RT.deallocate(C64);
  RT.deallocate(TP);
}

TEST_F(RuntimeTest, CharCoercionCachesAcrossOffsets) {
  // A (char*) check resolves to the allocation bounds regardless of
  // offset, so its cache entry matches at ANY in-bounds offset.
  char *P = static_cast<char *>(RT.allocate(24, T));
  const SiteId Site = 23;
  Bounds A = RT.typeCheck(P + 4, Ctx.getChar(), Site);
  Bounds B = RT.typeCheck(P + 17, Ctx.getChar(), Site);
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.Lo, reinterpret_cast<uintptr_t>(P));
  EXPECT_EQ(A.Hi, reinterpret_cast<uintptr_t>(P) + 24);
  CacheStats S = cacheStats(RT);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Hits, 1u) << "char coercion entries are offset-independent";
  RT.deallocate(P);
}

TEST_F(RuntimeTest, TypeErrorsAreNeverCached) {
  char *P = static_cast<char *>(RT.allocate(24, T));
  const SiteId Site = 29;
  for (int I = 0; I < 3; ++I) {
    Bounds B = RT.typeCheck(P + 12, Ctx.getDouble(), Site);
    EXPECT_TRUE(B.isWide());
  }
  CacheStats S = cacheStats(RT);
  EXPECT_EQ(S.Hits, 0u) << "error results must not be replayed";
  EXPECT_EQ(S.Misses, 3u);
  EXPECT_EQ(RT.reporter().numEvents(), 3u)
      << "every erring check must keep reporting";
  RT.deallocate(P);
}

TEST(SiteCacheVictimTest, PrefersOldestFillNotHighestVersion) {
  // The squatter regression: version counts fills *per entry*, not
  // recency. A way churned hot in the past (high version) but filled
  // long ago must be the victim against a way filled just now —
  // otherwise a stale colliding site pins its slot forever and the
  // set degrades to direct-mapped.
  SiteCache Cache(16);
  SiteCacheEntry *Set = Cache.setFor(0);
  Set[0].Version.store(40, std::memory_order_relaxed); // Old churner.
  Set[0].FillTick.store(nextSiteFillTick(), std::memory_order_relaxed);
  Set[1].Version.store(2, std::memory_order_relaxed); // Fresh fill.
  Set[1].FillTick.store(nextSiteFillTick(), std::memory_order_relaxed);
  EXPECT_EQ(&SiteCache::victimIn(Set), &Set[0])
      << "the older fill must age out regardless of its version";
  // Empty ways always win over recency.
  Set[1].Version.store(0, std::memory_order_relaxed);
  EXPECT_EQ(&SiteCache::victimIn(Set), &Set[1]);
}

TEST_F(RuntimeTest, PolymorphicSiteKeepsTwoResolutionsResident) {
  // The 2-way associativity win: two resolutions alternating through
  // ONE site coexist in the site's set — after the two filling misses
  // every probe is a hit (the direct-mapped cache ping-ponged here at
  // ~3.5x the hit cost).
  char *P = static_cast<char *>(RT.allocate(24, T));
  const SiteId Site = 31;
  Bounds IntRef = RT.typeCheckUncached(P + 12, Ctx.getInt());
  Bounds SRef = RT.typeCheckUncached(P + 4, S);
  for (int I = 0; I < 4; ++I) {
    EXPECT_EQ(RT.typeCheck(P + 12, Ctx.getInt(), Site), IntRef);
    EXPECT_EQ(RT.typeCheck(P + 4, S, Site), SRef);
  }
  CacheStats Stats = cacheStats(RT);
  EXPECT_EQ(Stats.Misses, 2u) << "one filling miss per resolution";
  EXPECT_EQ(Stats.Hits, 6u) << "both resolutions stay resident";
  EXPECT_EQ(RT.reporter().numIssues(), 0u);
  RT.deallocate(P);
}

TEST_F(RuntimeTest, SiteCollisionBeyondAssociativityEvictsButStaysCorrect) {
  // THREE incompatible resolutions fighting over one 2-way set:
  // every probe evicts the oldest way and misses, but the returned
  // bounds are never wrong.
  char *P = static_cast<char *>(RT.allocate(24, T));
  const SiteId Site = 31;
  Bounds IntRef = RT.typeCheckUncached(P + 12, Ctx.getInt());
  Bounds SRef = RT.typeCheckUncached(P + 4, S);
  Bounds FloatRef = RT.typeCheckUncached(P, Ctx.getFloat());
  for (int I = 0; I < 4; ++I) {
    EXPECT_EQ(RT.typeCheck(P + 12, Ctx.getInt(), Site), IntRef);
    EXPECT_EQ(RT.typeCheck(P + 4, S, Site), SRef);
    EXPECT_EQ(RT.typeCheck(P, Ctx.getFloat(), Site), FloatRef);
  }
  EXPECT_EQ(cacheStats(RT).Hits, 0u)
      << "oldest-fill eviction ping-pongs on a 3-way conflict";
  EXPECT_EQ(RT.reporter().numIssues(), 0u);
  RT.deallocate(P);
}

TEST_F(RuntimeTest, ResetClearsSiteCache) {
  void *P = RT.allocate(40, Ctx.getInt());
  const SiteId Site = 37;
  RT.typeCheck(P, Ctx.getInt(), Site);
  RT.typeCheck(P, Ctx.getInt(), Site);
  EXPECT_EQ(cacheStats(RT).Hits, 1u);

  RT.reset(); // Invalidates every pointer AND the cache.

  void *Q = RT.allocate(40, Ctx.getInt());
  RT.typeCheck(Q, Ctx.getInt(), Site);
  CacheStats After = cacheStats(RT);
  EXPECT_EQ(After.Hits, 0u) << "reset must drop cached resolutions";
  EXPECT_EQ(After.Misses, 1u);
  RT.deallocate(Q);
}

TEST_F(RuntimeTest, DisabledCacheTakesSlowPathEverywhere) {
  RuntimeOptions Options = quietOptions();
  Options.SiteCacheEntries = 0;
  Runtime Uncached(Ctx, Options);
  char *P = static_cast<char *>(Uncached.allocate(24, T));
  Bounds Ref = Uncached.typeCheckUncached(P + 12, Ctx.getInt());
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(Uncached.typeCheck(P + 12, Ctx.getInt(), 41), Ref);
  auto C = Uncached.counters().snapshot();
  EXPECT_EQ(C.TypeCheckCacheHits, 0u);
  EXPECT_EQ(C.TypeCheckCacheMisses, 3u);
  Uncached.deallocate(P);
}

TEST_F(RuntimeTest, PseudoSiteOverloadCachesByStaticType) {
  // The 2-argument overload (CheckedPtr / session APIs) derives its
  // site from the static type; repeated checks of one type must hit.
  char *P = static_cast<char *>(RT.allocate(100 * sizeof(int),
                                            Ctx.getInt()));
  RT.typeCheck(P + 40, Ctx.getInt());
  RT.typeCheck(P + 40, Ctx.getInt());
  RT.typeCheck(P + 80, Ctx.getInt()); // Same normalized offset (0).
  CacheStats S = cacheStats(RT);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Hits, 2u);
  RT.deallocate(P);
}

TEST_F(RuntimeTest, ConcurrentChecksAreSafe) {
  char *P = static_cast<char *>(RT.allocate(100 * 24, T));
  std::vector<std::thread> Threads;
  for (int W = 0; W < 4; ++W) {
    Threads.emplace_back([&] {
      for (int I = 0; I < 5000; ++I) {
        Bounds B = RT.typeCheck(P + (I % 100) * 24, T);
        RT.boundsCheck(P + (I % 100) * 24, 4, B);
      }
    });
  }
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_EQ(RT.reporter().numIssues(), 0u);
  EXPECT_EQ(RT.counters().snapshot().TypeChecks, 4u * 5000u);
  RT.deallocate(P);
}
