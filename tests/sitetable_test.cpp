//===- tests/sitetable_test.cpp - Site-attributed diagnostics -------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// End-to-end coverage of check-site attribution (docs/REPORT_FORMAT.md):
/// the SiteTableRegistry itself, the printed `!site N @ "file:line:col"`
/// round trip into rendered runtime reports, the exact paper-style
/// report strings for the examples/ error classes, site-keyed
/// deduplication, and the per-site error counters.
///
//===----------------------------------------------------------------------===//

#include "api/Sanitizer.h"
#include "instrument/Pipeline.h"
#include "interp/Interp.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

#include <regex>
#include <set>

using namespace effective;
using namespace effective::instrument;

namespace {

SessionOptions quiet() {
  SessionOptions Opts;
  Opts.Reporter.Mode = ReportMode::Count;
  return Opts;
}

struct Compiled {
  Sanitizer S;
  DiagnosticEngine Diags;
  CompileResult R;

  Compiled(std::string_view Source, std::string_view File,
           InstrumentOptions Opts = InstrumentOptions())
      : S(quiet()) {
    R = compileMiniC(Source, S.types(), Diags, Opts, File);
  }
};

/// Runs the program and returns every bucketed report message.
std::vector<std::string> runAndCollect(Compiled &C) {
  EXPECT_TRUE(C.R.M != nullptr);
  interp::RunResult Run = interp::run(*C.R.M, C.S);
  EXPECT_TRUE(Run.Ok) << Run.Fault;
  std::vector<std::string> Messages;
  for (const ErrorBucket &B : C.S.reporter().buckets())
    Messages.push_back(B.Message);
  return Messages;
}

} // namespace

//===----------------------------------------------------------------------===//
// SiteTableRegistry unit behavior
//===----------------------------------------------------------------------===//

TEST(SiteTableRegistry, RebasesAndResolves) {
  SiteTableRegistry Reg;
  SiteTable A;
  A.File = "a.c";
  A.Entries.push_back({CheckSiteKind::TypeCheck, SourceLoc{3, 7},
                       "alpha", nullptr});
  A.Entries.push_back({CheckSiteKind::BoundsCheck, SourceLoc{4, 1},
                       "alpha", nullptr});
  SiteTable B;
  B.File = "b.c";
  B.Entries.push_back({CheckSiteKind::BoundsGet, SourceLoc{9, 2},
                       "beta", nullptr});

  SiteId BaseA = Reg.registerTable(A);
  SiteId BaseB = Reg.registerTable(B);
  ASSERT_EQ(BaseA, 0u);
  ASSERT_EQ(BaseB, 2u) << "second table rebased past the first";
  EXPECT_EQ(Reg.numSites(), 3u);
  EXPECT_EQ(Reg.numTables(), 2u);

  const SiteInfo *S0 = Reg.resolve(BaseA + 1);
  ASSERT_NE(S0, nullptr);
  EXPECT_STREQ(S0->File, "a.c");
  EXPECT_EQ(S0->Line, 4u);
  EXPECT_EQ(S0->Kind, CheckSiteKind::BoundsCheck);
  EXPECT_STREQ(S0->Function, "alpha");

  const SiteInfo *S1 = Reg.resolve(BaseB);
  ASSERT_NE(S1, nullptr);
  EXPECT_STREQ(S1->File, "b.c");
  EXPECT_EQ(S1->Site, BaseB) << "SiteInfo carries the rebased id";

  // Out of range and the null site resolve to nothing.
  EXPECT_EQ(Reg.resolve(3), nullptr);
  EXPECT_EQ(Reg.resolve(NoSite), nullptr);
}

TEST(SiteTableRegistry, PseudoSitesNeverResolve) {
  SiteTableRegistry Reg;
  SiteTable T;
  T.File = "t.c";
  for (int I = 0; I < 64; ++I)
    T.Entries.push_back({CheckSiteKind::TypeCheck, SourceLoc{1, 1},
                         "f", nullptr});
  ASSERT_EQ(Reg.registerTable(T), 0u);

  // Type-derived pseudo-sites carry the tag bit, so they cannot
  // accidentally land inside a registered range and misattribute an
  // API-path error to module source.
  TypeContext Ctx;
  SiteId Pseudo = siteForType(Ctx.getInt());
  EXPECT_NE(Pseudo & PseudoSiteBit, 0u);
  EXPECT_EQ(Reg.resolve(Pseudo), nullptr);
}

TEST(SiteTableRegistry, KeyedRegistrationIsIdempotent) {
  SiteTableRegistry Reg;
  SiteTable T;
  T.File = "t.c";
  T.Entries.push_back({CheckSiteKind::TypeCheck, SourceLoc{1, 1}, "f",
                       nullptr});
  SiteId First = Reg.registerTable(T, /*Key=*/7);
  SiteId Again = Reg.registerTable(T, /*Key=*/7);
  EXPECT_EQ(First, Again) << "same module key reuses the range";
  EXPECT_EQ(Reg.numTables(), 1u);
  // A different key (another module) gets a fresh range.
  EXPECT_NE(Reg.registerTable(T, /*Key=*/8), First);
}

//===----------------------------------------------------------------------===//
// Printer -> verifier -> runtime round trip
//===----------------------------------------------------------------------===//

TEST(SiteRoundTrip, PrintedLocationMatchesRenderedReport) {
  // The location printed on the erring check instruction must be the
  // location the runtime report renders — one source of truth, the
  // module's site table, consumed by both.
  constexpr const char *Source = R"(int main() {
  int *a = (int *)malloc(8 * sizeof(int));
  int i;
  int t = 0;
  for (i = 0; i <= 8; i = i + 1)
    t = t + a[i];
  free(a);
  return t;
}
)";
  Compiled C(Source, "rt.c");
  ASSERT_TRUE(C.R.M != nullptr);

  // The printer annotates sites with their attribution...
  std::string Text = ir::printModule(*C.R.M);
  std::set<std::string> PrintedLocs;
  std::regex LocRe("!site [0-9]+ @ \"(rt\\.c:[0-9]+:[0-9]+)\"");
  for (std::sregex_iterator It(Text.begin(), Text.end(), LocRe), End;
       It != End; ++It)
    PrintedLocs.insert((*It)[1]);
  ASSERT_FALSE(PrintedLocs.empty()) << Text;

  // ...the verifier accepts the annotated module...
  DiagnosticEngine VDiags;
  EXPECT_TRUE(ir::verifyModule(*C.R.M, VDiags));

  // ...and the runtime report names one of exactly those locations.
  std::vector<std::string> Messages = runAndCollect(C);
  ASSERT_FALSE(Messages.empty());
  std::regex AtRe("at (rt\\.c:[0-9]+:[0-9]+)");
  bool Matched = false;
  for (const std::string &M : Messages) {
    std::smatch Match;
    if (std::regex_search(M, Match, AtRe)) {
      EXPECT_TRUE(PrintedLocs.count(Match[1]))
          << "report location " << Match[1]
          << " not among printed site annotations";
      Matched = true;
    }
  }
  EXPECT_TRUE(Matched) << "no report carried a source location";
}

//===----------------------------------------------------------------------===//
// Exact rendered reports for the examples/ error classes
//===----------------------------------------------------------------------===//

TEST(PaperStyleReports, TypeConfusionExactString) {
  // The examples/type_confusion scenario through the MiniC pipeline:
  // an int allocation used as struct S. The rendered report is fully
  // deterministic (no pointer values), so it is asserted verbatim.
  constexpr const char *Source = R"(struct S { float a; float b; };
int main() {
  int *p = (int *)malloc(10 * sizeof(int));
  struct S *s = (struct S *)p;
  float x = s->a;
  free(p);
  return (int)x;
}
)";
  Compiled C(Source, "confusion.c");
  std::vector<std::string> Messages = runAndCollect(C);
  ASSERT_EQ(Messages.size(), 1u);
  EXPECT_EQ(Messages[0],
            "TYPE ERROR at confusion.c:4:17 in main: allocated (int), "
            "used as (struct S) at offset 0");
}

TEST(PaperStyleReports, OutOfBoundsExactString) {
  // The examples/subobject_overflow scenario: an off-by-one read walks
  // past an int[10] heap object inside hot_loop.
  constexpr const char *Source = R"(int hot_loop() {
  int *a = (int *)malloc(10 * sizeof(int));
  int i;
  int t = 0;
  for (i = 0; i <= 10; i = i + 1)
    t = t + a[i];
  free(a);
  return t;
}
int main() { return hot_loop(); }
)";
  Compiled C(Source, "overflow.c");
  std::vector<std::string> Messages = runAndCollect(C);
  ASSERT_EQ(Messages.size(), 1u);
  EXPECT_EQ(Messages[0],
            "BOUNDS ERROR at overflow.c:6:14 in hot_loop: allocated "
            "(int), accessed via (bounds_check) at offset 40 "
            "[out-of-bounds access]");
}

TEST(PaperStyleReports, UseAfterFreeCarriesSiteAndFunction) {
  // The dangling pointer is reloaded from memory after the free, so
  // the rule (c) input check sees the FREE dynamic type (register-held
  // pointers keep their stale bounds — the paper's known limitation).
  constexpr const char *Source = R"(struct H { int *slot; };
int main() {
  struct H h;
  h.slot = (int *)malloc(4 * sizeof(int));
  free(h.slot);
  int *p = h.slot;
  return *p;
}
)";
  Compiled C(Source, "uaf.c");
  std::vector<std::string> Messages = runAndCollect(C);
  ASSERT_FALSE(Messages.empty());
  bool Found = false;
  for (const std::string &M : Messages)
    if (M.find("USE-AFTER-FREE ERROR at uaf.c:") != std::string::npos &&
        M.find(" in main:") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found) << Messages.front();
}

TEST(PaperStyleReports, ParamEntryCheckCarriesDeclarationLoc) {
  // Rule (a): pointer parameters are checked once at function entry.
  // The check site is the parameter's *declaration* loc (donated by the
  // front end through ir::Param::Loc), so the report renders the full
  // "at file:line:col in func" form — it must never degrade to the
  // file-only "at param.c in readFirst" rendering. The freed pointer
  // trips the entry type check the moment readFirst is entered.
  constexpr const char *Source = R"(int readFirst(int *p) {
  return *p;
}
int main() {
  int *q = (int *)malloc(4 * sizeof(int));
  free(q);
  return readFirst(q);
}
)";
  Compiled C(Source, "param.c");
  std::vector<std::string> Messages = runAndCollect(C);
  ASSERT_EQ(Messages.size(), 1u);
  EXPECT_EQ(Messages[0],
            "USE-AFTER-FREE ERROR at param.c:1:20 in readFirst: "
            "allocated (<free>), used as (int) at offset 0 "
            "[use of freed object]");
}

//===----------------------------------------------------------------------===//
// Site-keyed deduplication
//===----------------------------------------------------------------------===//

TEST(SiteDedup, OneLoopingSiteIsOneIssue) {
  // A thousand events through one static check site, same offense:
  // one bucket (the paper's "report each issue once").
  constexpr const char *Source = R"(struct S { float a; float b; };
int main() {
  int *p = (int *)malloc(10 * sizeof(int));
  int i;
  float t = 0.0;
  for (i = 0; i < 100; i = i + 1) {
    struct S *s = (struct S *)p;
    t = t + s->a;
  }
  free(p);
  return (int)t;
}
)";
  Compiled C(Source, "loop.c");
  std::vector<std::string> Messages = runAndCollect(C);
  EXPECT_EQ(Messages.size(), 1u);
  EXPECT_GT(C.S.reporter().numEvents(), 1u)
      << "every event counted, one bucket reported";
}

TEST(SiteDedup, TwoSourceSitesAreTwoIssues) {
  // The *same* type confusion (same static type, same allocation
  // type, same offset zero) reached from two distinct source lines —
  // two different functions, so CSE cannot unify the casts: two
  // buckets. Pre-site-keyed dedup collapsed these into one, hiding
  // the second offending line from the log.
  constexpr const char *Source = R"(struct S { float a; float b; };
float asS1(int *p) { struct S *s = (struct S *)p; return s->a; }
float asS2(int *p) { struct S *s = (struct S *)p; return s->a; }
int main() {
  int *p = (int *)malloc(10 * sizeof(int));
  float x = asS1(p) + asS2(p);
  free(p);
  return (int)x;
}
)";
  Compiled C(Source, "two.c");
  std::vector<std::string> Messages = runAndCollect(C);
  std::set<std::string> TypeErrors;
  for (const std::string &M : Messages)
    if (M.find("TYPE ERROR") != std::string::npos)
      TypeErrors.insert(M);
  EXPECT_EQ(TypeErrors.size(), 2u) << "one bucket per source site";
  // And they name different source lines.
  std::set<std::string> Locs;
  std::regex AtRe("at (two\\.c:[0-9]+:[0-9]+)");
  for (const std::string &M : TypeErrors) {
    std::smatch Match;
    if (std::regex_search(M, Match, AtRe))
      Locs.insert(Match[1]);
  }
  EXPECT_EQ(Locs.size(), 2u);
}

TEST(SiteDedup, UnsitedApiPathsKeepTypeOffsetBucketing) {
  // API checks derive pseudo-sites from the static type, so their
  // historical (kind, types, offset) bucketing is unchanged: the same
  // failing check repeated N times stays one issue.
  Sanitizer S(quiet());
  const TypeInfo *IntTy = S.types().getInt();
  const TypeInfo *FloatTy = S.types().getFloat();
  void *P = S.malloc(16 * sizeof(int), IntTy);
  for (int I = 0; I < 5; ++I)
    S.typeCheck(P, FloatTy);
  EXPECT_EQ(S.issuesFound(), 1u);
  EXPECT_EQ(S.reporter().numEvents(), 5u);
  S.free(P);
}

//===----------------------------------------------------------------------===//
// Per-site error counters
//===----------------------------------------------------------------------===//

TEST(SiteCounters, EventsCountPerSite) {
  Sanitizer S(quiet());
  SiteTable T;
  T.File = "count.c";
  T.Entries.push_back({CheckSiteKind::BoundsCheck, SourceLoc{10, 3},
                       "worker", nullptr});
  T.Entries.push_back({CheckSiteKind::BoundsCheck, SourceLoc{20, 3},
                       "worker", nullptr});
  SiteId Base = S.registerSiteTable(T);
  ASSERT_NE(Base, NoSite);

  const TypeInfo *IntTy = S.types().getInt();
  auto *P = static_cast<int *>(S.malloc(8 * sizeof(int), IntTy));
  Bounds B = S.typeCheck(P, IntTy);
  for (int I = 0; I < 3; ++I)
    S.boundsCheck(P + 8, sizeof(int), B, Base + 0); // Overflow, site 0.
  S.boundsCheck(P, sizeof(int), B, Base + 1);       // In bounds, site 1.

  EXPECT_EQ(S.errorEventsAtSite(Base + 0), 3u);
  EXPECT_EQ(S.errorEventsAtSite(Base + 1), 0u);
  EXPECT_EQ(S.issuesFound(), 1u) << "three events, one site bucket";

  // The bucket's rendered message is attributed to site 0's location.
  EXPECT_TRUE(S.reporter().hasIssueMatching("count.c:10:3"));
  EXPECT_TRUE(S.reporter().hasIssueMatching("in worker"));
  S.free(P);
}

TEST(SiteCounters, SurviveUntilClear) {
  Sanitizer S(quiet());
  SiteTable T;
  T.File = "c.c";
  T.Entries.push_back({CheckSiteKind::BoundsCheck, SourceLoc{1, 1}, "f",
                       nullptr});
  SiteId Base = S.registerSiteTable(T);
  const TypeInfo *IntTy = S.types().getInt();
  auto *P = static_cast<int *>(S.malloc(4 * sizeof(int), IntTy));
  S.boundsCheck(P + 4, 4, S.typeCheck(P, IntTy), Base);
  EXPECT_EQ(S.errorEventsAtSite(Base), 1u);
  S.free(P);
  S.reset();
  EXPECT_EQ(S.errorEventsAtSite(Base), 0u) << "reset clears counters";
  // The registration itself survives reset (attribution metadata is
  // immutable), so post-reset errors still attribute.
  auto *Q = static_cast<int *>(S.malloc(4 * sizeof(int), IntTy));
  S.boundsCheck(Q + 4, 4, S.typeCheck(Q, IntTy), Base);
  EXPECT_EQ(S.errorEventsAtSite(Base), 1u);
  EXPECT_TRUE(S.reporter().hasIssueMatching("c.c:1:1"));
  S.free(Q);
}

//===----------------------------------------------------------------------===//
// Repeated runs and multiple modules
//===----------------------------------------------------------------------===//

TEST(SiteRegistration, RerunningAModuleDoesNotGrowTheRegistry) {
  constexpr const char *Source = R"(int main() {
  int *a = (int *)malloc(4 * sizeof(int));
  int t = a[0];
  free(a);
  return t;
}
)";
  Compiled C(Source, "rerun.c");
  ASSERT_TRUE(C.R.M != nullptr);
  for (int I = 0; I < 3; ++I) {
    interp::RunResult Run = interp::run(*C.R.M, C.S);
    ASSERT_TRUE(Run.Ok) << Run.Fault;
  }
  EXPECT_EQ(C.S.siteTables().numTables(), 1u)
      << "keyed registration is idempotent across runs";
}

TEST(SiteRegistration, TwoModulesReportTheirOwnFiles) {
  constexpr const char *BadRead = R"(int main() {
  int *a = (int *)malloc(4 * sizeof(int));
  int t = a[4];
  free(a);
  return t;
}
)";
  Sanitizer S(quiet());
  DiagnosticEngine Diags;
  CompileResult A = compileMiniC(BadRead, S.types(), Diags,
                                 InstrumentOptions(), "first.c");
  CompileResult B = compileMiniC(BadRead, S.types(), Diags,
                                 InstrumentOptions(), "second.c");
  ASSERT_TRUE(A.M && B.M);
  ASSERT_TRUE(interp::run(*A.M, S).Ok);
  ASSERT_TRUE(interp::run(*B.M, S).Ok);
  EXPECT_TRUE(S.reporter().hasIssueMatching("first.c:"));
  EXPECT_TRUE(S.reporter().hasIssueMatching("second.c:"))
      << "the second module's sites were rebased, not collided";
}
