//===- tests/type_test.cpp - Dynamic type system unit tests ---------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Reflect.h"
#include "core/TypeContext.h"

#include <gtest/gtest.h>

using namespace effective;

//===----------------------------------------------------------------------===//
// Interning and primitive types
//===----------------------------------------------------------------------===//

TEST(TypeContextTest, PrimitiveSingletons) {
  TypeContext Ctx;
  EXPECT_EQ(Ctx.getInt(), Ctx.getInt());
  EXPECT_NE(Ctx.getInt(), Ctx.getUInt());
  EXPECT_EQ(Ctx.getInt()->size(), sizeof(int));
  EXPECT_EQ(Ctx.getDouble()->size(), sizeof(double));
  EXPECT_EQ(Ctx.getVoid()->size(), 0u);
  EXPECT_TRUE(Ctx.getFree()->isFree());
  EXPECT_TRUE(Ctx.getChar()->isCharLike());
  EXPECT_TRUE(Ctx.getUChar()->isCharLike());
  EXPECT_FALSE(Ctx.getInt()->isCharLike());
}

TEST(TypeContextTest, PointerInterning) {
  TypeContext Ctx;
  const PointerType *A = Ctx.getPointer(Ctx.getInt());
  const PointerType *B = Ctx.getPointer(Ctx.getInt());
  EXPECT_EQ(A, B);
  EXPECT_NE(A, Ctx.getPointer(Ctx.getFloat()));
  EXPECT_EQ(A->pointee(), Ctx.getInt());
  EXPECT_EQ(A->size(), sizeof(void *));
}

TEST(TypeContextTest, ArrayInterning) {
  TypeContext Ctx;
  const ArrayType *A = Ctx.getArray(Ctx.getInt(), 3);
  EXPECT_EQ(A, Ctx.getArray(Ctx.getInt(), 3));
  EXPECT_NE(A, Ctx.getArray(Ctx.getInt(), 4));
  EXPECT_EQ(A->size(), 3 * sizeof(int));
  EXPECT_EQ(A->count(), 3u);
  const ArrayType *Nested = Ctx.getArray(A, 2);
  EXPECT_EQ(Nested->size(), 24u);
  EXPECT_EQ(Nested->scalarElement(), Ctx.getInt());
}

TEST(TypeContextTest, FunctionInterning) {
  TypeContext Ctx;
  const TypeInfo *Params[] = {Ctx.getInt(), Ctx.getFloat()};
  const FunctionType *A = Ctx.getFunction(Ctx.getVoid(), Params);
  const FunctionType *B = Ctx.getFunction(Ctx.getVoid(), Params);
  EXPECT_EQ(A, B);
  const TypeInfo *Params2[] = {Ctx.getInt()};
  EXPECT_NE(A, Ctx.getFunction(Ctx.getVoid(), Params2));
  EXPECT_NE(A, Ctx.getGenericFunction());
  EXPECT_EQ(Ctx.getGenericFunction(), Ctx.getGenericFunction());
  EXPECT_TRUE(Ctx.getGenericFunction()->isGeneric());
}

TEST(TypeContextTest, DistinctContextsProduceDistinctTypes) {
  TypeContext A, B;
  EXPECT_NE(A.getInt(), B.getInt());
  EXPECT_EQ(&A.getInt()->context(), &A);
  EXPECT_EQ(&B.getInt()->context(), &B);
}

TEST(TypeContextTest, RecordsAreNominal) {
  TypeContext Ctx;
  // Two records with the same tag and layout are distinct dynamic types
  // unless the frontend reuses the TypeInfo — this is what lets the
  // runtime detect gcc's "incompatible definitions of the same tag".
  RecordType *A = Ctx.createRecord(TypeKind::Struct, "foo");
  RecordType *B = Ctx.createRecord(TypeKind::Struct, "foo");
  EXPECT_NE(A, B);
  EXPECT_EQ(A->name(), "foo");
}

//===----------------------------------------------------------------------===//
// RecordBuilder: C layout computation
//===----------------------------------------------------------------------===//

TEST(RecordBuilderTest, ComputesCLayout) {
  TypeContext Ctx;
  RecordType *R = RecordBuilder(Ctx, TypeKind::Struct, "mix")
                      .addField("c", Ctx.getChar())
                      .addField("i", Ctx.getInt())
                      .addField("d", Ctx.getDouble())
                      .addField("s", Ctx.getShort())
                      .finish();
  struct Mix {
    char C;
    int I;
    double D;
    short S;
  };
  ASSERT_EQ(R->fields().size(), 4u);
  EXPECT_EQ(R->fields()[0].Offset, offsetof(Mix, C));
  EXPECT_EQ(R->fields()[1].Offset, offsetof(Mix, I));
  EXPECT_EQ(R->fields()[2].Offset, offsetof(Mix, D));
  EXPECT_EQ(R->fields()[3].Offset, offsetof(Mix, S));
  EXPECT_EQ(R->size(), sizeof(Mix));
  EXPECT_EQ(R->align(), alignof(Mix));
}

TEST(RecordBuilderTest, UnionMembersOverlap) {
  TypeContext Ctx;
  RecordType *U = RecordBuilder(Ctx, TypeKind::Union, "u")
                      .addField("i", Ctx.getInt())
                      .addField("d", Ctx.getDouble())
                      .addField("a", Ctx.getArray(Ctx.getChar(), 3))
                      .finish();
  EXPECT_TRUE(U->isUnion());
  for (const FieldInfo &F : U->fields())
    EXPECT_EQ(F.Offset, 0u);
  EXPECT_EQ(U->size(), sizeof(double));
}

TEST(RecordBuilderTest, FlexibleArrayMember) {
  TypeContext Ctx;
  RecordType *R = RecordBuilder(Ctx, TypeKind::Struct, "fam")
                      .addField("len", Ctx.getInt())
                      .addFlexibleArray("data", Ctx.getDouble())
                      .finish();
  ASSERT_EQ(R->famElement(), Ctx.getDouble());
  // The FAM appears as a one-element array (the paper's convention).
  const FieldInfo &Fam = R->fields().back();
  const auto *FamArray = dyn_cast<ArrayType>(Fam.Type);
  ASSERT_NE(FamArray, nullptr);
  EXPECT_EQ(FamArray->count(), 1u);
  EXPECT_EQ(FamArray->element(), Ctx.getDouble());
}

TEST(RecordBuilderTest, PaperExample1Types) {
  // struct S {int a[3]; char *s;}; struct T {float f; struct S t;};
  TypeContext Ctx;
  RecordType *S = RecordBuilder(Ctx, TypeKind::Struct, "S")
                      .addField("a", Ctx.getArray(Ctx.getInt(), 3))
                      .addField("s", Ctx.getPointer(Ctx.getChar()))
                      .finish();
  RecordType *T = RecordBuilder(Ctx, TypeKind::Struct, "T")
                      .addField("f", Ctx.getFloat())
                      .addField("t", S)
                      .finish();
  struct CS {
    int A[3];
    char *Str;
  };
  struct CT {
    float F;
    CS T;
  };
  EXPECT_EQ(S->size(), sizeof(CS));
  EXPECT_EQ(T->size(), sizeof(CT));
  EXPECT_EQ(T->fields()[1].Offset, offsetof(CT, T));
}

//===----------------------------------------------------------------------===//
// Type rendering
//===----------------------------------------------------------------------===//

TEST(TypeStrTest, RendersSpellings) {
  TypeContext Ctx;
  EXPECT_EQ(Ctx.getInt()->str(), "int");
  EXPECT_EQ(Ctx.getPointer(Ctx.getChar())->str(), "char *");
  EXPECT_EQ(Ctx.getArray(Ctx.getInt(), 3)->str(), "int[3]");
  EXPECT_EQ(Ctx.getPointer(Ctx.getPointer(Ctx.getVoid()))->str(),
            "void * *");
  RecordType *R = Ctx.createRecord(TypeKind::Struct, "account");
  EXPECT_EQ(R->str(), "struct account");
  const TypeInfo *Params[] = {Ctx.getInt()};
  EXPECT_EQ(Ctx.getFunction(Ctx.getVoid(), Params)->str(), "void (int)");
}

//===----------------------------------------------------------------------===//
// Native reflection
//===----------------------------------------------------------------------===//

namespace reflect_test {

struct Account {
  int Number[8];
  float Balance;
};

struct Node {
  int Value;
  Node *Next;
};

union Scalar {
  int I;
  double D;
};

struct VBase {
  virtual ~VBase() = default;
  int BaseVal;
};

struct VDerived : VBase {
  float DerivedVal;
};

} // namespace reflect_test

EFFECTIVE_REFLECT(reflect_test::Account, Number, Balance);
EFFECTIVE_REFLECT(reflect_test::Node, Value, Next);
EFFECTIVE_REFLECT_UNION(reflect_test::Scalar, I, D);
EFFECTIVE_REFLECT_POLY(reflect_test::VBase, BaseVal);
EFFECTIVE_REFLECT_DERIVED(reflect_test::VDerived, reflect_test::VBase,
                          DerivedVal);

TEST(ReflectTest, Primitives) {
  TypeContext Ctx;
  EXPECT_EQ(TypeOf<int>::get(Ctx), Ctx.getInt());
  EXPECT_EQ(TypeOf<const int>::get(Ctx), Ctx.getInt());
  EXPECT_EQ(TypeOf<int *>::get(Ctx), Ctx.getPointer(Ctx.getInt()));
  EXPECT_EQ((TypeOf<int[3]>::get(Ctx)), Ctx.getArray(Ctx.getInt(), 3));
  EXPECT_EQ(TypeOf<void>::get(Ctx), Ctx.getVoid());
  EXPECT_EQ(TypeOf<void (*)(int)>::get(Ctx),
            Ctx.getPointer(Ctx.getGenericFunction()));
}

TEST(ReflectTest, StructReflection) {
  TypeContext Ctx;
  const auto *T =
      cast<RecordType>(TypeOf<reflect_test::Account>::get(Ctx));
  EXPECT_EQ(TypeOf<reflect_test::Account>::get(Ctx), T) << "memoized";
  EXPECT_EQ(T->size(), sizeof(reflect_test::Account));
  ASSERT_EQ(T->fields().size(), 2u);
  EXPECT_EQ(T->fields()[0].Name, "Number");
  EXPECT_EQ(T->fields()[0].Type, Ctx.getArray(Ctx.getInt(), 8));
  EXPECT_EQ(T->fields()[1].Offset,
            offsetof(reflect_test::Account, Balance));
}

TEST(ReflectTest, RecursiveStruct) {
  TypeContext Ctx;
  const auto *T = cast<RecordType>(TypeOf<reflect_test::Node>::get(Ctx));
  ASSERT_EQ(T->fields().size(), 2u);
  // Node.Next is Node* — the pointee must be the same interned record.
  const auto *NextType = cast<PointerType>(T->fields()[1].Type);
  EXPECT_EQ(NextType->pointee(), T);
}

TEST(ReflectTest, UnionReflection) {
  TypeContext Ctx;
  const auto *T = cast<RecordType>(TypeOf<reflect_test::Scalar>::get(Ctx));
  EXPECT_TRUE(T->isUnion());
  EXPECT_EQ(T->size(), sizeof(reflect_test::Scalar));
  for (const FieldInfo &F : T->fields())
    EXPECT_EQ(F.Offset, 0u);
}

TEST(ReflectTest, PolymorphicClassHasVPtr) {
  TypeContext Ctx;
  const auto *T = cast<RecordType>(TypeOf<reflect_test::VBase>::get(Ctx));
  ASSERT_GE(T->fields().size(), 2u);
  EXPECT_EQ(T->fields()[0].Name, "__vptr");
  EXPECT_EQ(T->fields()[0].Offset, 0u);
  EXPECT_EQ(T->fields()[0].Type,
            Ctx.getPointer(Ctx.getGenericFunction()));
  EXPECT_EQ(T->size(), sizeof(reflect_test::VBase));
}

TEST(ReflectTest, DerivedClassEmbedsBase) {
  TypeContext Ctx;
  const auto *D =
      cast<RecordType>(TypeOf<reflect_test::VDerived>::get(Ctx));
  const auto *B = cast<RecordType>(TypeOf<reflect_test::VBase>::get(Ctx));
  ASSERT_GE(D->fields().size(), 2u);
  EXPECT_EQ(D->fields()[0].Type, B);
  EXPECT_TRUE(D->fields()[0].IsBase);
  EXPECT_EQ(D->fields()[0].Offset, 0u);
  EXPECT_EQ(D->size(), sizeof(reflect_test::VDerived));
}
