//===- tests/stackglobal_test.cpp - Typed stack & global object tests -----===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The typed stack & global object error classes, end to end:
///
///  * a differential sweep of the four new error programs — stack
///    use-after-return, stack out-of-bounds, global out-of-bounds and
///    global type confusion — through the tree-walking interpreter and
///    the bytecode VM, under every instrumentation variant and with
///    superinstruction fusion on and off, asserting identical exit
///    codes, check counts, fault strings and error-report streams, and
///    pinning the exact paper-style report text;
///
///  * a TSan-targeted stress test of the epoch-guarded thread-local
///    stack pools under concurrent frame churn interleaved with
///    Runtime::reset (the session-reset / tenant-eviction / shard-
///    recycle path): stale pools are abandoned on next use, never
///    replayed into the recycled arena;
///
///  * ABI 1.8 back-compat: 1.6/1.7-sized effsan_options and
///    effsan_pool_options prefixes are still accepted, the growable
///    effsan_object_stats tail follows the caller-sized prefix
///    contract, and the new stack/global entry points behave through
///    the C ABI exactly as they do in-process.
///
//===----------------------------------------------------------------------===//

#include "api/effsan.h"
#include "bytecode/Compiler.h"
#include "bytecode/VM.h"
#include "core/Runtime.h"
#include "instrument/Pipeline.h"
#include "interp/Interp.h"

#include <gtest/gtest.h>

#include <barrier>
#include <cctype>
#include <cstddef>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace effective;
using namespace effective::instrument;

namespace {

//===----------------------------------------------------------------------===//
// Differential harness (the bytecode_test.cpp contract)
//===----------------------------------------------------------------------===//

/// Replaces hex pointer renderings ("0x1a2b...") with "<ptr>" so legacy
/// (unattributed) report lines compare equal across runtimes with
/// different arena placements. Site-attributed reports are address-free
/// by design.
std::string normalizePointers(std::string_view In) {
  std::string Out;
  for (size_t I = 0; I < In.size();) {
    if (I + 1 < In.size() && In[I] == '0' &&
        (In[I + 1] == 'x' || In[I + 1] == 'X')) {
      size_t J = I + 2;
      while (J < In.size() && std::isxdigit(static_cast<unsigned char>(In[J])))
        ++J;
      if (J > I + 2) {
        Out += "<ptr>";
        I = J;
        continue;
      }
    }
    Out += In[I++];
  }
  return Out;
}

/// One engine's observable behavior: the RunResult plus the full
/// error-report stream and per-kind bucket counts.
struct EngineRun {
  interp::RunResult R;
  std::vector<std::string> Msgs;
  uint64_t TypeErrors = 0;
  uint64_t BoundsErrors = 0;
  uint64_t UafErrors = 0;
  uint64_t DoubleFrees = 0;
  uint64_t StackUarErrors = 0;
};

enum class Engine { Tree, Bytecode };

/// Runs \p C on \p E against a fresh runtime, capturing every emitted
/// report in order.
EngineRun runEngine(TypeContext &Types, const CompileResult &C, Engine E) {
  EngineRun Out;
  RuntimeOptions RTOpts;
  RTOpts.Reporter.Mode = ReportMode::Count;
  RTOpts.Reporter.Callback = [](const ErrorInfo &, const char *Message,
                                void *User) {
    static_cast<std::vector<std::string> *>(User)->push_back(
        normalizePointers(Message ? Message : ""));
  };
  RTOpts.Reporter.CallbackUserData = &Out.Msgs;
  Runtime RT(Types, RTOpts);

  Out.R = E == Engine::Bytecode ? bytecode::run(*C.BC, RT, {})
                                : interp::run(*C.M, RT, {});
  Out.TypeErrors = RT.reporter().numIssues(ErrorKind::TypeError);
  Out.BoundsErrors = RT.reporter().numIssues(ErrorKind::BoundsError);
  Out.UafErrors = RT.reporter().numIssues(ErrorKind::UseAfterFree);
  Out.DoubleFrees = RT.reporter().numIssues(ErrorKind::DoubleFree);
  Out.StackUarErrors =
      RT.reporter().numIssues(ErrorKind::StackUseAfterReturn);
  return Out;
}

/// Everything must match except Steps (fusion changes instruction
/// granularity, not behavior).
void expectSameBehavior(const EngineRun &T, const EngineRun &B,
                        const std::string &Label) {
  EXPECT_EQ(T.R.Ok, B.R.Ok) << Label;
  EXPECT_EQ(normalizePointers(T.R.Fault), normalizePointers(B.R.Fault))
      << Label;
  EXPECT_EQ(T.R.ExitCode, B.R.ExitCode) << Label;
  EXPECT_EQ(T.R.Output, B.R.Output) << Label;
  EXPECT_EQ(T.R.Checks.TypeChecks, B.R.Checks.TypeChecks) << Label;
  EXPECT_EQ(T.R.Checks.BoundsGets, B.R.Checks.BoundsGets) << Label;
  EXPECT_EQ(T.R.Checks.BoundsChecks, B.R.Checks.BoundsChecks) << Label;
  EXPECT_EQ(T.R.Checks.BoundsNarrows, B.R.Checks.BoundsNarrows) << Label;
  EXPECT_EQ(T.R.IssuesReported, B.R.IssuesReported) << Label;
  EXPECT_EQ(T.TypeErrors, B.TypeErrors) << Label;
  EXPECT_EQ(T.BoundsErrors, B.BoundsErrors) << Label;
  EXPECT_EQ(T.UafErrors, B.UafErrors) << Label;
  EXPECT_EQ(T.DoubleFrees, B.DoubleFrees) << Label;
  EXPECT_EQ(T.StackUarErrors, B.StackUarErrors) << Label;
  EXPECT_EQ(T.Msgs, B.Msgs) << Label;
}

constexpr Variant AllVariants[] = {Variant::None, Variant::Type,
                                   Variant::Bounds, Variant::Full};

/// Compiles \p Source under \p V (optionally without superinstruction
/// fusion), diffs the two engines, and returns the tree run for
/// content assertions.
EngineRun diffProgram(const char *Name, const char *Source, Variant V,
                      bool Fused = true) {
  std::string Label = std::string(Name) + " [" +
                      std::string(variantName(V)) +
                      (Fused ? "" : " unfused") + "]";
  TypeContext Types;
  DiagnosticEngine Diags;
  InstrumentOptions Opts;
  Opts.V = V;
  CompileResult C = compileMiniC(Source, Types, Diags, Opts);
  for (const Diagnostic &D : Diags.diagnostics())
    ADD_FAILURE() << Label << ": " << D.Loc.Line << ":" << D.Loc.Column
                  << ": " << D.Message;
  EXPECT_TRUE(C.M) << Label;
  EXPECT_TRUE(C.BC) << Label << ": pipeline produced no bytecode";
  if (!C.M || !C.BC)
    return EngineRun();

  if (!Fused) {
    std::string Error;
    bytecode::CompileOptions BcOpts;
    BcOpts.FuseChecks = false;
    C.BC = bytecode::compile(*C.M, &Error, BcOpts);
    EXPECT_TRUE(C.BC) << Label << ": " << Error;
    if (!C.BC)
      return EngineRun();
  }

  EngineRun T = runEngine(Types, C, Engine::Tree);
  EngineRun B = runEngine(Types, C, Engine::Bytecode);
  expectSameBehavior(T, B, Label);
  return T;
}

//===----------------------------------------------------------------------===//
// The four error-class programs
//===----------------------------------------------------------------------===//

/// An escaping frame-local used after its frame returned. The callee's
/// slot is rebound to STACK-FREE at frame pop and parks in the
/// use-after-return quarantine (main's frame is still live), so the
/// dangling pointer faults as a stack use-after-return — its own error
/// class, distinct from heap UAF.
constexpr const char *StackUarSource = R"(
int *escape() {
  int local[4];
  local[0] = 9;
  int *p = local;
  return p;
}
int main() {
  int *p = escape();
  return *p;
}
)";

/// An off-by-one on a frame-local array. Stack slots carry full METAs,
/// so the overflow reports exactly like a heap bounds error.
constexpr const char *StackOobSource = R"(
int main() {
  int a[4];
  int i;
  for (i = 0; i <= 4; i = i + 1)
    a[i] = i;
  return a[0];
}
)";

/// An off-by-one on a module global. Globals are registered through the
/// typed global allocator at module load, so base(p)/size(p) and the
/// META header work exactly as for heap objects.
constexpr const char *GlobalOobSource = R"(
int g_table[8];
int main() {
  int i;
  for (i = 0; i <= 8; i = i + 1)
    g_table[i] = i;
  return g_table[3];
}
)";

/// A C cast reinterpreting a global struct as the wrong type. The
/// global's dynamic type comes from its registered META, so the
/// type_check at the cast-derived use faults like any heap confusion.
constexpr const char *GlobalConfusionSource = R"(
struct config { int verbose; int flags; };
struct config g_config;
int main() {
  g_config.verbose = 1;
  double *d = (double *)&g_config;
  double v = *d;
  return v == 0.0;
}
)";

struct ErrorProgram {
  const char *Name;
  const char *Source;
};

constexpr ErrorProgram ErrorPrograms[] = {
    {"StackUseAfterReturn", StackUarSource},
    {"StackOutOfBounds", StackOobSource},
    {"GlobalOutOfBounds", GlobalOobSource},
    {"GlobalTypeConfusion", GlobalConfusionSource},
};

} // namespace

//===----------------------------------------------------------------------===//
// Differential sweep: both engines, all variants, fused and unfused
//===----------------------------------------------------------------------===//

TEST(StackGlobalDifferential, AllErrorClassesAllVariants) {
  for (const ErrorProgram &P : ErrorPrograms)
    for (Variant V : AllVariants)
      diffProgram(P.Name, P.Source, V);
}

TEST(StackGlobalDifferential, AllErrorClassesUnfused) {
  for (const ErrorProgram &P : ErrorPrograms)
    diffProgram(P.Name, P.Source, Variant::Full, /*Fused=*/false);
}

//===----------------------------------------------------------------------===//
// Exact paper-style reports, identical under both engines
//===----------------------------------------------------------------------===//

TEST(StackGlobalReports, StackUseAfterReturnIsItsOwnErrorClass) {
  EngineRun T = diffProgram("StackUseAfterReturn", StackUarSource,
                            Variant::Full);
  ASSERT_TRUE(T.R.Ok) << T.R.Fault;
  EXPECT_EQ(T.R.ExitCode, 9) << "the stale value is still readable "
                                "(quarantine delays reuse)";
  EXPECT_EQ(T.StackUarErrors, 1u);
  EXPECT_EQ(T.UafErrors, 0u) << "not a heap use-after-free";
  ASSERT_EQ(T.Msgs.size(), 1u);
  EXPECT_EQ(T.Msgs[0],
            "STACK USE-AFTER-RETURN ERROR at <minic>:9:12 in main: "
            "allocated (<stack-free>), used as (int) at offset 0 "
            "[use of stack object after frame return]");
}

TEST(StackGlobalReports, StackOutOfBounds) {
  EngineRun T = diffProgram("StackOutOfBounds", StackOobSource,
                            Variant::Full);
  ASSERT_TRUE(T.R.Ok) << T.R.Fault;
  EXPECT_EQ(T.BoundsErrors, 1u);
  ASSERT_EQ(T.Msgs.size(), 1u);
  EXPECT_EQ(T.Msgs[0],
            "BOUNDS ERROR at <minic>:6:10 in main: allocated (int), "
            "accessed via (bounds_check) at offset 16 "
            "[out-of-bounds access]");
}

TEST(StackGlobalReports, GlobalOutOfBounds) {
  EngineRun T = diffProgram("GlobalOutOfBounds", GlobalOobSource,
                            Variant::Full);
  ASSERT_TRUE(T.R.Ok) << T.R.Fault;
  EXPECT_EQ(T.R.ExitCode, 3);
  EXPECT_EQ(T.BoundsErrors, 1u);
  ASSERT_EQ(T.Msgs.size(), 1u);
  EXPECT_EQ(T.Msgs[0],
            "BOUNDS ERROR at <minic>:6:16 in main: allocated (int), "
            "accessed via (bounds_check) at offset 32 "
            "[out-of-bounds access]");
}

TEST(StackGlobalReports, GlobalTypeConfusion) {
  EngineRun T = diffProgram("GlobalTypeConfusion", GlobalConfusionSource,
                            Variant::Full);
  ASSERT_TRUE(T.R.Ok) << T.R.Fault;
  EXPECT_EQ(T.TypeErrors, 1u);
  ASSERT_EQ(T.Msgs.size(), 1u);
  EXPECT_EQ(T.Msgs[0],
            "TYPE ERROR at <minic>:6:15 in main: allocated "
            "(struct config), used as (double) at offset 0");
}

TEST(StackGlobalReports, VariantBlindSpotsMatchThePaper) {
  // -bounds instruments every access input event, so the STACK-FREE
  // type surfaces at its bounds_get; -type instruments casts only and
  // is blind to a cast-free use-after-return but sees the global
  // confusion. Uninstrumented sees nothing.
  EngineRun T;

  T = diffProgram("StackUseAfterReturn", StackUarSource, Variant::Bounds);
  EXPECT_EQ(T.StackUarErrors, 1u);
  ASSERT_EQ(T.Msgs.size(), 1u);
  EXPECT_EQ(T.Msgs[0],
            "STACK USE-AFTER-RETURN ERROR at <minic>:9:12 in main: "
            "allocated (<stack-free>), accessed via (bounds_get) at "
            "offset 0 [use of stack object after frame return]");
  T = diffProgram("StackUseAfterReturn", StackUarSource, Variant::Type);
  EXPECT_EQ(T.StackUarErrors, 0u) << "no cast to check";
  T = diffProgram("StackUseAfterReturn", StackUarSource, Variant::None);
  EXPECT_EQ(T.StackUarErrors, 0u);

  T = diffProgram("GlobalOutOfBounds", GlobalOobSource, Variant::Bounds);
  EXPECT_EQ(T.BoundsErrors, 1u);
  T = diffProgram("GlobalOutOfBounds", GlobalOobSource, Variant::Type);
  EXPECT_EQ(T.BoundsErrors, 0u);

  T = diffProgram("GlobalTypeConfusion", GlobalConfusionSource,
                  Variant::Type);
  EXPECT_EQ(T.TypeErrors, 1u) << "the C cast is checked";
  T = diffProgram("GlobalTypeConfusion", GlobalConfusionSource,
                  Variant::Bounds);
  EXPECT_EQ(T.TypeErrors, 0u);
  T = diffProgram("GlobalTypeConfusion", GlobalConfusionSource,
                  Variant::None);
  EXPECT_EQ(T.TypeErrors, 0u);
}

//===----------------------------------------------------------------------===//
// Epoch-guarded TLS stack pools under concurrent reset (TSan target)
//===----------------------------------------------------------------------===//

TEST(StackPoolStress, FrameChurnAcrossSessionResets) {
  // Worker threads churn stack frames on a shared runtime; between
  // barrier-delimited phases the main thread recycles the session with
  // Runtime::reset() (the tenant-eviction path). Every reset rewinds
  // the arena and bumps the runtime epoch, so each worker's
  // thread-local stack pool is stale when the next phase starts and
  // must be abandoned on first use — its recorded slots discarded,
  // never freed or replayed into the recycled arena. Run under TSan,
  // this pins the epoch handshake; the counter checks below pin that
  // the final phase's pools were fresh.
  constexpr int Workers = 4;
  constexpr int Phases = 3;
  constexpr int FramesPerPhase = 64;
  constexpr int AllocsPerFrame = 4; // Alternating escaping/plain.

  TypeContext Types;
  RuntimeOptions Opts;
  Opts.Reporter.Mode = ReportMode::Count;
  Runtime RT(Types, Opts);
  const TypeInfo *IntTy = Types.getInt();

  std::barrier PhaseStart(Workers + 1);
  std::barrier PhaseEnd(Workers + 1);

  std::vector<std::thread> Threads;
  Threads.reserve(Workers);
  for (int W = 0; W < Workers; ++W)
    Threads.emplace_back([&, W] {
      for (int Ph = 0; Ph < Phases; ++Ph) {
        PhaseStart.arrive_and_wait();
        for (int F = 0; F < FramesPerPhase; ++F) {
          size_t Mark = RT.stackMark();
          int *Slots[AllocsPerFrame];
          for (int A = 0; A < AllocsPerFrame; ++A) {
            bool Escapes = (A & 1) != 0;
            Slots[A] = static_cast<int *>(
                RT.stackAllocate(8 * sizeof(int), IntTy, Escapes));
            Slots[A][0] = W * 100000 + Ph * 1000 + F;
            Slots[A][7] = A;
          }
          for (int A = 0; A < AllocsPerFrame; ++A) {
            EXPECT_EQ(Slots[A][0], W * 100000 + Ph * 1000 + F)
                << "live frame slot must never alias another frame";
            EXPECT_EQ(Slots[A][7], A);
          }
          RT.stackRelease(Mark);
        }
        // All frames closed before the main thread may reset.
        PhaseEnd.arrive_and_wait();
      }
    });

  for (int Ph = 0; Ph < Phases; ++Ph) {
    PhaseStart.arrive_and_wait();
    PhaseEnd.arrive_and_wait();
    // Workers are parked with no outstanding frames (the reset
    // precondition); recycle the session for the next "tenant".
    if (Ph + 1 < Phases)
      RT.reset();
  }
  for (std::thread &T : Threads)
    T.join();

  // reset() clears the object counters, so the totals reflect exactly
  // the final phase run on post-reset (abandoned-then-fresh) pools.
  const ObjectCounters &OC = RT.objectCounters();
  EXPECT_EQ(OC.StackAllocs.load(std::memory_order_relaxed),
            uint64_t(Workers) * FramesPerPhase * AllocsPerFrame);
  EXPECT_EQ(OC.StackFrames.load(std::memory_order_relaxed),
            uint64_t(Workers) * FramesPerPhase);
  EXPECT_EQ(OC.StackRetired.load(std::memory_order_relaxed),
            uint64_t(Workers) * FramesPerPhase * (AllocsPerFrame / 2))
      << "every escaping slot of the final phase retired through the "
         "quarantine";
}

TEST(StackPoolStress, ShardRecycleWithConcurrentSiblingChurn) {
  // Two runtimes over shards of one shared heap (the SessionPool
  // building block). Shard 1's workers churn frames continuously while
  // shard 0 is repeatedly recycled between its own quiescent points —
  // pinning that one shard's reset/epoch bump never disturbs a sibling
  // shard's live stack pools.
  constexpr int Cycles = 16;
  constexpr int FramesPerCycle = 32;

  TypeContext Types;
  lowfat::HeapOptions HeapOpts;
  HeapOpts.NumShards = 2;
  lowfat::LowFatHeap Heap(HeapOpts);
  RuntimeOptions Opts;
  Opts.Reporter.Mode = ReportMode::Count;
  Runtime RT0(Types, Heap, /*Shard=*/0, Opts);
  Runtime RT1(Types, Heap, /*Shard=*/1, Opts);
  const TypeInfo *IntTy = Types.getInt();

  std::atomic<bool> Stop{false};
  std::thread Sibling([&] {
    // At least a few hundred frames even if the recycling loop wins
    // the race, so the overlap window is never empty.
    uint64_t Seq = 0;
    while (Seq < 512 || !Stop.load(std::memory_order_acquire)) {
      size_t Mark = RT1.stackMark();
      auto *P = static_cast<uint64_t *>(
          RT1.stackAllocate(sizeof(uint64_t), IntTy, /*Escapes=*/true));
      *P = ++Seq;
      EXPECT_EQ(*P, Seq);
      RT1.stackRelease(Mark);
    }
  });

  for (int C = 0; C < Cycles; ++C) {
    for (int F = 0; F < FramesPerCycle; ++F) {
      size_t Mark = RT0.stackMark();
      auto *P = static_cast<int *>(
          RT0.stackAllocate(16 * sizeof(int), IntTy, /*Escapes=*/true));
      P[0] = C;
      P[15] = F;
      RT0.stackRelease(Mark);
    }
    RT0.reset(); // Shard 0 quiescent; shard 1 keeps running.
  }
  Stop.store(true, std::memory_order_release);
  Sibling.join();

  EXPECT_EQ(RT0.objectCounters().StackAllocs.load(
                std::memory_order_relaxed),
            0u)
      << "the final reset cleared shard 0's counters";
  EXPECT_GT(RT1.objectCounters().StackAllocs.load(
                std::memory_order_relaxed),
            0u);
}

//===----------------------------------------------------------------------===//
// ABI 1.8: back-compat prefixes and the new entry points
//===----------------------------------------------------------------------===//

namespace {

void kindCallback(const effsan_error *Error, void *UserData) {
  static_cast<std::vector<uint32_t> *>(UserData)->push_back(Error->kind);
}

} // namespace

TEST(StackGlobalAbi, StackObjectsThroughTheAbi) {
  EXPECT_GE(effsan_abi_version(), (1u << 16) | 8u);

  effsan_options Options;
  effsan_options_init(&Options);
  Options.log_errors = 0;
  effsan_session *S = effsan_session_create(&Options);
  ASSERT_NE(S, nullptr);
  std::vector<uint32_t> Kinds;
  effsan_set_error_callback(S, kindCallback, &Kinds);

  effsan_type IntTy = effsan_type_primitive(S, EFFSAN_PRIM_INT);

  // The caller (an instrumented function prologue) opens an outer
  // frame with a live local, then a callee frame whose escaping slot
  // outlives it.
  effsan_stack_mark Outer = effsan_stack_enter(S);
  int *Local = static_cast<int *>(
      effsan_stack_alloc_typed(S, 4 * sizeof(int), IntTy, /*escapes=*/0));
  ASSERT_NE(Local, nullptr);
  Local[0] = 7;

  effsan_stack_mark Inner = effsan_stack_enter(S);
  int *Escaped = static_cast<int *>(
      effsan_stack_alloc_typed(S, 4 * sizeof(int), IntTy, /*escapes=*/1));
  ASSERT_NE(Escaped, nullptr);
  Escaped[0] = 9;
  effsan_stack_leave(S, Inner);

  // The quarantine delayed reuse, so the dangling pointer still
  // addresses the (now STACK-FREE) block and the next input event
  // faults as a stack use-after-return.
  EXPECT_EQ(Escaped[0], 9);
  effsan_type_check(S, Escaped, IntTy);
  ASSERT_EQ(Kinds.size(), 1u);
  EXPECT_EQ(Kinds[0], (uint32_t)EFFSAN_ERROR_STACK_USE_AFTER_RETURN);

  // The live outer local is untouched by the callee's retirement.
  effsan_bounds B = effsan_type_check(S, Local, IntTy);
  effsan_bounds_check(S, Local, sizeof(int), B);
  EXPECT_EQ(Local[0], 7);
  EXPECT_EQ(Kinds.size(), 1u);

  effsan_stack_leave(S, Outer);

  effsan_object_stats Stats;
  std::memset(&Stats, 0, sizeof(Stats));
  Stats.struct_size = sizeof(Stats);
  effsan_get_object_stats(S, &Stats);
  EXPECT_EQ(Stats.stack_allocs, 2u);
  EXPECT_EQ(Stats.stack_frames, 2u);
  EXPECT_EQ(Stats.stack_retired, 1u) << "only the escaping slot";

  effsan_session_destroy(S);
}

TEST(StackGlobalAbi, GlobalsRegisterThroughTheAbi) {
  effsan_options Options;
  effsan_options_init(&Options);
  Options.log_errors = 0;
  effsan_session *S = effsan_session_create(&Options);
  ASSERT_NE(S, nullptr);
  std::vector<uint32_t> Kinds;
  effsan_set_error_callback(S, kindCallback, &Kinds);

  effsan_type IntTy = effsan_type_primitive(S, EFFSAN_PRIM_INT);
  effsan_type DblTy = effsan_type_primitive(S, EFFSAN_PRIM_DOUBLE);

  effsan_global_def Defs[2];
  Defs[0].name = "g_table";
  Defs[0].size = 8 * sizeof(int);
  Defs[0].type = IntTy;
  Defs[1].name = "g_scale";
  Defs[1].size = sizeof(double);
  Defs[1].type = DblTy;
  void *Addrs[2] = {nullptr, nullptr};
  ASSERT_EQ(effsan_globals_register(S, Defs, 2, Addrs), 2u);
  ASSERT_NE(Addrs[0], nullptr);
  ASSERT_NE(Addrs[1], nullptr);

  // Module globals are zero-initialized.
  int *Table = static_cast<int *>(Addrs[0]);
  for (int I = 0; I < 8; ++I)
    EXPECT_EQ(Table[I], 0);

  // base(p)/size(p) are O(1) for globals like any low-fat allocation:
  // a type_check mid-object yields the right sub-object bounds, and an
  // off-by-one access faults as a global out-of-bounds.
  effsan_bounds B = effsan_type_check(S, Table + 3, IntTy);
  effsan_bounds_check(S, Table + 3, sizeof(int), B);
  EXPECT_TRUE(Kinds.empty());
  effsan_bounds_check(S, Table + 8, sizeof(int), B);
  ASSERT_EQ(Kinds.size(), 1u);
  EXPECT_EQ(Kinds[0], (uint32_t)EFFSAN_ERROR_BOUNDS);

  // Global type confusion: the registered META drives the check.
  effsan_type_check(S, Addrs[0], DblTy);
  ASSERT_EQ(Kinds.size(), 2u);
  EXPECT_EQ(Kinds[1], (uint32_t)EFFSAN_ERROR_TYPE);

  effsan_object_stats Stats;
  std::memset(&Stats, 0, sizeof(Stats));
  Stats.struct_size = sizeof(Stats);
  effsan_get_object_stats(S, &Stats);
  EXPECT_EQ(Stats.global_objects, 2u);
  EXPECT_EQ(Stats.global_bytes, 8 * sizeof(int) + sizeof(double));

  // Degenerate inputs are rejected, not crashed on.
  EXPECT_EQ(effsan_globals_register(S, nullptr, 1, Addrs), 0u);
  EXPECT_EQ(effsan_globals_register(S, Defs, 0, Addrs), 0u);
  EXPECT_EQ(effsan_globals_register(S, Defs, 1, nullptr), 0u);

  effsan_session_destroy(S);
}

TEST(StackGlobalAbi, Abi17OptionsPrefixesStillAccepted) {
  // A caller compiled against the 1.7 header passes today's full
  // struct; a 1.6-era caller's struct ended before `engine`. Both
  // prefixes must create working sessions, and the 1.8 entry points
  // must work on them.
  EXPECT_GE(effsan_abi_version(), (1u << 16) | 8u);

  const uint32_t Sizes[] = {
      static_cast<uint32_t>(sizeof(effsan_options)), // 1.7/1.8 caller.
      static_cast<uint32_t>(offsetof(effsan_options, engine)), // 1.6.
  };
  for (uint32_t Size : Sizes) {
    effsan_options Options;
    effsan_options_init(&Options);
    Options.log_errors = 0;
    Options.struct_size = Size;
    effsan_session *S = effsan_session_create(&Options);
    ASSERT_NE(S, nullptr) << "struct_size=" << Size;

    effsan_type IntTy = effsan_type_primitive(S, EFFSAN_PRIM_INT);
    effsan_stack_mark M = effsan_stack_enter(S);
    void *P = effsan_stack_alloc_typed(S, 64, IntTy, 1);
    EXPECT_NE(P, nullptr) << "struct_size=" << Size;
    effsan_stack_leave(S, M);
    effsan_session_destroy(S);
  }

  // Same for pool options: a 1.6-era prefix stops before `engine`.
  const uint32_t PoolSizes[] = {
      static_cast<uint32_t>(sizeof(effsan_pool_options)),
      static_cast<uint32_t>(offsetof(effsan_pool_options, engine)),
  };
  for (uint32_t Size : PoolSizes) {
    effsan_pool_options PoolOptions;
    effsan_pool_options_init(&PoolOptions);
    PoolOptions.log_errors = 0;
    PoolOptions.shards = 2;
    PoolOptions.struct_size = Size;
    effsan_pool *Pool = effsan_pool_create(&PoolOptions);
    ASSERT_NE(Pool, nullptr) << "struct_size=" << Size;
    EXPECT_EQ(effsan_pool_num_shards(Pool), 2u);

    effsan_session *S = effsan_pool_checkout(Pool);
    ASSERT_NE(S, nullptr);
    effsan_type IntTy = effsan_type_primitive(S, EFFSAN_PRIM_INT);
    effsan_stack_mark M = effsan_stack_enter(S);
    void *P = effsan_stack_alloc_typed(S, 64, IntTy, 0);
    EXPECT_NE(P, nullptr) << "struct_size=" << Size;
    effsan_stack_leave(S, M);
    effsan_pool_destroy(Pool);
  }
}

TEST(StackGlobalAbi, ObjectStatsPrefixContract) {
  // effsan_object_stats is caller-sized like effsan_heap_stats: the
  // library fills exactly the prefix the caller declared, and a
  // future-larger caller's unknown tail reads as zero.
  effsan_options Options;
  effsan_options_init(&Options);
  Options.log_errors = 0;
  effsan_session *S = effsan_session_create(&Options);
  ASSERT_NE(S, nullptr);

  effsan_type IntTy = effsan_type_primitive(S, EFFSAN_PRIM_INT);
  effsan_stack_mark M = effsan_stack_enter(S);
  effsan_stack_alloc_typed(S, 32, IntTy, 0);
  effsan_stack_leave(S, M);

  // A caller that only knows the struct up to stack_frames: fields at
  // and beyond its declared size must not be written.
  effsan_object_stats Partial;
  std::memset(&Partial, 0xee, sizeof(Partial));
  Partial.struct_size = offsetof(effsan_object_stats, stack_frames);
  effsan_get_object_stats(S, &Partial);
  EXPECT_EQ(Partial.stack_allocs, 1u);
  EXPECT_EQ(Partial.stack_frames, 0xeeeeeeeeeeeeeeeeull)
      << "fields beyond the declared prefix must not be written";
  EXPECT_EQ(Partial.global_bytes, 0xeeeeeeeeeeeeeeeeull);

  // A caller built against a FUTURE, larger struct: the tail this
  // library predates must read as zero, never as stack garbage.
  struct Future {
    effsan_object_stats Known;
    uint64_t NewCounter;
  } Grown;
  std::memset(&Grown, 0xee, sizeof(Grown));
  Grown.Known.struct_size = sizeof(Grown);
  effsan_get_object_stats(S, &Grown.Known);
  EXPECT_EQ(Grown.Known.stack_allocs, 1u);
  EXPECT_EQ(Grown.Known.stack_frames, 1u);
  EXPECT_EQ(Grown.NewCounter, 0u)
      << "declared-but-unknown tail must be zeroed";

  effsan_session_destroy(S);
}

TEST(StackGlobalAbi, SessionResetRecyclesStackAndGlobalState) {
  // effsan_session_reset is the ABI spelling of the tenant-eviction
  // path the stress test drives: stack/global counters rewind and the
  // epoch-guarded pools start fresh.
  effsan_options Options;
  effsan_options_init(&Options);
  Options.log_errors = 0;
  effsan_session *S = effsan_session_create(&Options);
  ASSERT_NE(S, nullptr);

  effsan_type IntTy = effsan_type_primitive(S, EFFSAN_PRIM_INT);
  effsan_global_def Def;
  Def.name = "g_once";
  Def.size = 16;
  Def.type = IntTy;
  void *Addr = nullptr;
  ASSERT_EQ(effsan_globals_register(S, &Def, 1, &Addr), 1u);
  effsan_stack_mark M = effsan_stack_enter(S);
  effsan_stack_alloc_typed(S, 32, IntTy, 1);
  effsan_stack_leave(S, M);

  effsan_object_stats Stats;
  std::memset(&Stats, 0, sizeof(Stats));
  Stats.struct_size = sizeof(Stats);
  effsan_get_object_stats(S, &Stats);
  EXPECT_EQ(Stats.stack_allocs, 1u);
  EXPECT_EQ(Stats.global_objects, 1u);

  effsan_session_reset(S);

  std::memset(&Stats, 0, sizeof(Stats));
  Stats.struct_size = sizeof(Stats);
  effsan_get_object_stats(S, &Stats);
  EXPECT_EQ(Stats.stack_allocs, 0u);
  EXPECT_EQ(Stats.stack_frames, 0u);
  EXPECT_EQ(Stats.global_objects, 0u);
  EXPECT_EQ(Stats.global_bytes, 0u);

  // The recycled session serves fresh stack and global objects.
  effsan_stack_mark M2 = effsan_stack_enter(S);
  void *P = effsan_stack_alloc_typed(S, 32, IntTy, 1);
  EXPECT_NE(P, nullptr);
  effsan_stack_leave(S, M2);
  Addr = nullptr;
  ASSERT_EQ(effsan_globals_register(S, &Def, 1, &Addr), 1u);
  EXPECT_NE(Addr, nullptr);

  effsan_session_destroy(S);
}
