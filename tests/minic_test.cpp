//===- tests/minic_test.cpp - MiniC frontend tests ------------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Frontend coverage: lexer token streams, parser AST shapes, semantic
/// diagnostics, and the paper's malloc allocation-type inference
/// (Example 1's "simple program analysis") in all its trigger forms
/// (cast, initializer, assignment, call argument).
///
//===----------------------------------------------------------------------===//

#include "minic/Parser.h"
#include "minic/Sema.h"

#include <gtest/gtest.h>

using namespace effective;
using namespace effective::minic;

namespace {

/// Lexes \p Source to a vector of token kinds (excluding Eof).
std::vector<TokenKind> lexAll(std::string_view Source) {
  DiagnosticEngine Diags;
  Lexer Lex(Source, Diags);
  std::vector<TokenKind> Kinds;
  for (Token T = Lex.next(); !T.is(TokenKind::Eof); T = Lex.next())
    Kinds.push_back(T.Kind);
  EXPECT_FALSE(Diags.hasErrors());
  return Kinds;
}

/// Fixture: parse + check a unit, retaining everything.
struct FrontendRun {
  TypeContext Types;
  ASTContext Ctx{Types};
  DiagnosticEngine Diags;
  TranslationUnit Unit;
  bool Parsed = false;
  bool Checked = false;

  explicit FrontendRun(std::string_view Source) {
    Parser P(Source, Ctx, Diags);
    Parsed = P.parseUnit(Unit);
    if (Parsed) {
      Sema S(Ctx, Diags);
      Checked = S.check(Unit);
    }
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(Lexer, KeywordsAndIdentifiers) {
  auto Kinds = lexAll("int while foo struct NULL forx");
  ASSERT_EQ(Kinds.size(), 6u);
  EXPECT_EQ(Kinds[0], TokenKind::KwInt);
  EXPECT_EQ(Kinds[1], TokenKind::KwWhile);
  EXPECT_EQ(Kinds[2], TokenKind::Identifier);
  EXPECT_EQ(Kinds[3], TokenKind::KwStruct);
  EXPECT_EQ(Kinds[4], TokenKind::KwNull);
  EXPECT_EQ(Kinds[5], TokenKind::Identifier); // Not the 'for' keyword.
}

TEST(Lexer, NumbersAndValues) {
  DiagnosticEngine Diags;
  Lexer Lex("42 3.5 0 100000000000", Diags);
  Token A = Lex.next();
  EXPECT_EQ(A.Kind, TokenKind::IntLiteral);
  EXPECT_EQ(A.IntValue, 42u);
  Token B = Lex.next();
  EXPECT_EQ(B.Kind, TokenKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(B.FloatValue, 3.5);
  Token C = Lex.next();
  EXPECT_EQ(C.IntValue, 0u);
  Token D = Lex.next();
  EXPECT_EQ(D.IntValue, 100000000000ull);
}

TEST(Lexer, CommentsAreSkipped) {
  auto Kinds = lexAll("a /* b c */ d // e\n f");
  ASSERT_EQ(Kinds.size(), 3u);
  for (TokenKind K : Kinds)
    EXPECT_EQ(K, TokenKind::Identifier);
}

TEST(Lexer, TracksLineAndColumn) {
  DiagnosticEngine Diags;
  Lexer Lex("a\n  b", Diags);
  Token A = Lex.next();
  EXPECT_EQ(A.Loc.Line, 1u);
  EXPECT_EQ(A.Loc.Column, 1u);
  Token B = Lex.next();
  EXPECT_EQ(B.Loc.Line, 2u);
  EXPECT_EQ(B.Loc.Column, 3u);
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(ParserTest, FunctionAndParams) {
  FrontendRun R("int add(int a, int b) { return a + b; }");
  ASSERT_TRUE(R.Parsed);
  ASSERT_EQ(R.Unit.Functions.size(), 1u);
  FunctionDecl *F = R.Unit.Functions[0];
  EXPECT_EQ(F->name(), "add");
  EXPECT_EQ(F->params().size(), 2u);
  EXPECT_EQ(F->returnType(), R.Types.getInt());
  ASSERT_NE(F->body(), nullptr);
}

TEST(ParserTest, RecordTypesAndTags) {
  FrontendRun R(R"(
struct point { double x; double y; };
union u { int i; float f; };
struct point g;
int main() { return 0; }
)");
  ASSERT_TRUE(R.Parsed);
  RecordType *P = R.Ctx.lookupTag("point");
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->fields().size(), 2u);
  EXPECT_EQ(P->size(), 16u);
  RecordType *U = R.Ctx.lookupTag("u");
  ASSERT_NE(U, nullptr);
  EXPECT_TRUE(U->isUnion());
  EXPECT_EQ(U->fields()[0].Offset, 0u);
  EXPECT_EQ(U->fields()[1].Offset, 0u);
}

TEST(ParserTest, PointerAndArrayDeclarators) {
  FrontendRun R(R"(
int main() {
  int a[10];
  int *p;
  int **pp;
  int m[4][3];
  return 0;
}
)");
  ASSERT_TRUE(R.Parsed);
  ASSERT_TRUE(R.Checked);
}

TEST(ParserTest, PrecedenceShapesTheTree) {
  FrontendRun R("int main() { return 2 + 3 * 4; }");
  ASSERT_TRUE(R.Parsed);
  auto *Ret = cast<ReturnStmt>(R.Unit.Functions[0]->body()->body()[0]);
  auto *Add = dyn_cast<BinaryExpr>(Ret->value());
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add->op(), BinaryOp::Add);
  auto *Mul = dyn_cast<BinaryExpr>(Add->rhs());
  ASSERT_NE(Mul, nullptr);
  EXPECT_EQ(Mul->op(), BinaryOp::Mul);
}

TEST(ParserTest, SyntaxErrorIsDiagnosed) {
  FrontendRun R("int main() { return 1 +; }");
  EXPECT_FALSE(R.Parsed);
  EXPECT_TRUE(R.Diags.hasErrors());
}

TEST(ParserTest, RedeclaredTagWithDifferentLayoutIsDistinct) {
  // The gcc "incompatible definitions of the same tag" scenario: MiniC
  // treats a redefinition as a new dynamic type (the frontend decides;
  // see TypeInfo.h).
  FrontendRun R(R"(
struct t { int code; };
int main() { struct t x; x.code = 1; return x.code; }
)");
  ASSERT_TRUE(R.Parsed);
  EXPECT_TRUE(R.Checked);
}

//===----------------------------------------------------------------------===//
// Sema
//===----------------------------------------------------------------------===//

TEST(SemaTest, TypesEveryExpression) {
  FrontendRun R(R"(
int main() {
  double d = 1.5;
  int i = 2;
  double m = d * i;
  return (int)m;
}
)");
  ASSERT_TRUE(R.Checked) << "sema failed";
}

TEST(SemaTest, RejectsUndeclaredVariable) {
  FrontendRun R("int main() { return missing; }");
  EXPECT_FALSE(R.Checked);
  EXPECT_TRUE(R.Diags.containsMessage("missing"));
}

TEST(SemaTest, RejectsUndeclaredFunction) {
  FrontendRun R("int main() { return nope(1); }");
  EXPECT_FALSE(R.Checked);
  EXPECT_TRUE(R.Diags.containsMessage("undeclared function"));
}

TEST(SemaTest, RejectsBadMemberAccess) {
  FrontendRun R(R"(
struct s { int x; };
int main() { struct s v; return v.y; }
)");
  EXPECT_FALSE(R.Checked);
  EXPECT_TRUE(R.Diags.containsMessage("no member named 'y'"));
}

TEST(SemaTest, RejectsDerefOfNonPointer) {
  FrontendRun R("int main() { int x; return *x; }");
  EXPECT_FALSE(R.Checked);
}

TEST(SemaTest, RejectsWrongArgumentCount) {
  FrontendRun R(R"(
int f(int a) { return a; }
int main() { return f(1, 2); }
)");
  EXPECT_FALSE(R.Checked);
  EXPECT_TRUE(R.Diags.containsMessage("wrong number of arguments"));
}

TEST(SemaTest, BuiltinsAreKnown) {
  FrontendRun R(R"(
int main() {
  print_int(1);
  print_float(1.5);
  print_str("x");
  return 0;
}
)");
  EXPECT_TRUE(R.Checked);
}

TEST(SemaTest, BuiltinArityIsChecked) {
  FrontendRun R("int main() { print_int(1, 2); return 0; }");
  EXPECT_FALSE(R.Checked);
}

//===----------------------------------------------------------------------===//
// Malloc allocation-type inference (Example 1)
//===----------------------------------------------------------------------===//

namespace {

/// Finds the first MallocExpr in a function body (recursive search).
const MallocExpr *findMalloc(const Expr *E) {
  if (!E)
    return nullptr;
  if (const auto *M = dyn_cast<MallocExpr>(E))
    return M;
  switch (E->kind()) {
  case ExprKind::Cast:
    return findMalloc(cast<CastExpr>(E)->sub());
  case ExprKind::Assign:
    return findMalloc(cast<AssignExpr>(E)->value());
  case ExprKind::Call: {
    for (const Expr *Arg : cast<CallExpr>(E)->args())
      if (const MallocExpr *M = findMalloc(Arg))
        return M;
    return nullptr;
  }
  default:
    return nullptr;
  }
}

const MallocExpr *findMalloc(const Stmt *S) {
  if (!S)
    return nullptr;
  switch (S->kind()) {
  case StmtKind::Expr:
    return findMalloc(cast<ExprStmt>(S)->expr());
  case StmtKind::Decl:
    return findMalloc(cast<DeclStmt>(S)->decl()->init());
  case StmtKind::Compound:
    for (const Stmt *Sub : cast<CompoundStmt>(S)->body())
      if (const MallocExpr *M = findMalloc(Sub))
        return M;
    return nullptr;
  case StmtKind::Return:
    return findMalloc(cast<ReturnStmt>(S)->value());
  default:
    return nullptr;
  }
}

} // namespace

TEST(MallocInference, ThroughExplicitCast) {
  FrontendRun R(R"(
struct s { int x; };
int main() {
  struct s *p = (struct s *)malloc(sizeof(struct s));
  free(p);
  return 0;
}
)");
  ASSERT_TRUE(R.Checked);
  const MallocExpr *M = findMalloc(R.Unit.Functions[0]->body());
  ASSERT_NE(M, nullptr);
  ASSERT_NE(M->allocType(), nullptr);
  EXPECT_EQ(M->allocType()->name(), "s");
}

TEST(MallocInference, ThroughTypedInitializer) {
  FrontendRun R(R"(
int main() {
  long *p = malloc(8 * sizeof(long));
  free(p);
  return 0;
}
)");
  ASSERT_TRUE(R.Checked);
  const MallocExpr *M = findMalloc(R.Unit.Functions[0]->body());
  ASSERT_NE(M, nullptr);
  ASSERT_NE(M->allocType(), nullptr);
  EXPECT_EQ(M->allocType(), R.Types.getLong());
}

TEST(MallocInference, ThroughAssignment) {
  FrontendRun R(R"(
int main() {
  double *p;
  p = malloc(4 * sizeof(double));
  free(p);
  return 0;
}
)");
  ASSERT_TRUE(R.Checked);
  const MallocExpr *M = findMalloc(R.Unit.Functions[0]->body());
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->allocType(), R.Types.getDouble());
}

TEST(MallocInference, ThroughCallArgument) {
  FrontendRun R(R"(
int consume(int *p) { free(p); return 0; }
int main() { return consume(malloc(4 * sizeof(int))); }
)");
  ASSERT_TRUE(R.Checked);
  const MallocExpr *M = findMalloc(R.Unit.Functions[1]->body());
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->allocType(), R.Types.getInt());
}

TEST(MallocInference, VoidTargetStaysUntyped) {
  // (void *) gives no usable element type: the allocation remains
  // untyped (checked with wide bounds at runtime).
  FrontendRun R(R"(
int main() {
  void *p = malloc(64);
  free(p);
  return 0;
}
)");
  ASSERT_TRUE(R.Checked);
  const MallocExpr *M = findMalloc(R.Unit.Functions[0]->body());
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->allocType(), nullptr);
}
