//===- tests/baselines_test.cpp - Figure 1 capability matrix tests --------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Asserts the Figure 1 capability matrix cell by cell: each sanitizer
/// model must detect exactly the error classes (with the caveats) the
/// paper attributes to it, and no model may flag the bug-free control
/// scenarios.
///
//===----------------------------------------------------------------------===//

#include "baselines/ErrorSuite.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

using namespace effective;
using namespace effective::baselines;

namespace {

/// Runs the suite for one model and indexes outcomes by scenario id.
std::map<std::string, bool> outcomesFor(ModelKind Kind) {
  std::vector<ScenarioOutcome> Details;
  evaluateModel(Kind, &Details);
  std::map<std::string, bool> ById;
  for (const ScenarioOutcome &O : Details)
    ById[O.S->Id] = O.Detected;
  return ById;
}

class MatrixTest : public ::testing::TestWithParam<ModelKind> {};

} // namespace

//===----------------------------------------------------------------------===//
// Suite-wide invariants
//===----------------------------------------------------------------------===//

TEST_P(MatrixTest, NoFalsePositivesOnControls) {
  MatrixRow Row = evaluateModel(GetParam());
  EXPECT_EQ(Row.ControlFalsePositives, 0u)
      << modelKindName(GetParam()) << " flagged a bug-free control";
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, MatrixTest, ::testing::ValuesIn(AllModelKinds),
    [](const ::testing::TestParamInfo<ModelKind> &Info) {
      std::string Name = modelKindName(Info.param);
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(MatrixSuite, ScenarioClassesAreBalanced) {
  unsigned Types = 0, Bounds = 0, Temporal = 0, Control = 0;
  for (const Scenario &S : errorSuite()) {
    switch (S.Class) {
    case ErrorClass::Types:
      ++Types;
      break;
    case ErrorClass::Bounds:
      ++Bounds;
      break;
    case ErrorClass::Temporal:
      ++Temporal;
      break;
    case ErrorClass::Control:
      ++Control;
      break;
    }
  }
  EXPECT_GE(Types, 4u);
  EXPECT_GE(Bounds, 4u);
  EXPECT_GE(Temporal, 4u);
  EXPECT_GE(Control, 2u);
}

//===----------------------------------------------------------------------===//
// Figure 1 rows
//===----------------------------------------------------------------------===//

TEST(Figure1, UninstrumentedDetectsNothing) {
  MatrixRow Row = evaluateModel(ModelKind::None);
  EXPECT_EQ(Row.typesCapability(), Capability::None);
  EXPECT_EQ(Row.boundsCapability(), Capability::None);
  EXPECT_EQ(Row.temporalCapability(), Capability::None);
}

TEST(Figure1, EffectiveSanRow) {
  // EffectiveSan: Types Yes, Bounds Yes, UAF Partial (reuse-after-free
  // detected only for different types — caveat (section sign)).
  MatrixRow Row = evaluateModel(ModelKind::EffectiveSan);
  EXPECT_EQ(Row.typesCapability(), Capability::Full);
  EXPECT_EQ(Row.boundsCapability(), Capability::Full);
  EXPECT_EQ(Row.temporalCapability(), Capability::Partial);

  auto O = outcomesFor(ModelKind::EffectiveSan);
  EXPECT_TRUE(O["bad-downcast"]);
  EXPECT_TRUE(O["implicit-cast-confusion"])
      << "pointer-use checking catches casts no other tool sees";
  EXPECT_TRUE(O["subobject-overflow"]);
  EXPECT_TRUE(O["use-after-free"]);
  EXPECT_TRUE(O["reuse-after-free-diff-type"]);
  EXPECT_FALSE(O["reuse-after-free-same-type"])
      << "the paper's documented partial coverage";
  EXPECT_TRUE(O["double-free"]);
}

TEST(Figure1, TypeConfusionToolsRow) {
  // CaVer/TypeSan/UBSan/HexType: Types Partial (explicit C++ casts
  // only), Bounds and UAF none.
  for (ModelKind Kind : {ModelKind::CaVer, ModelKind::TypeSan,
                         ModelKind::UBSan, ModelKind::HexType}) {
    MatrixRow Row = evaluateModel(Kind);
    EXPECT_EQ(Row.typesCapability(), Capability::Partial)
        << modelKindName(Kind);
    EXPECT_EQ(Row.boundsCapability(), Capability::None)
        << modelKindName(Kind);
    EXPECT_EQ(Row.temporalCapability(), Capability::None)
        << modelKindName(Kind);

    auto O = outcomesFor(Kind);
    EXPECT_TRUE(O["bad-downcast"]) << modelKindName(Kind);
    EXPECT_FALSE(O["implicit-cast-confusion"])
        << modelKindName(Kind) << ": implicit casts are invisible";
  }
}

TEST(Figure1, LibcrunchRow) {
  // libcrunch: explicit C casts of any type, but nothing implicit.
  MatrixRow Row = evaluateModel(ModelKind::Libcrunch);
  EXPECT_EQ(Row.typesCapability(), Capability::Partial);
  auto O = outcomesFor(ModelKind::Libcrunch);
  EXPECT_TRUE(O["c-cast-confusion"]);
  EXPECT_TRUE(O["container-cast"]);
  EXPECT_TRUE(O["prefix-struct-confusion"]);
  EXPECT_FALSE(O["implicit-cast-confusion"]);
  EXPECT_EQ(Row.boundsCapability(), Capability::None);
  EXPECT_EQ(Row.temporalCapability(), Capability::None);
}

TEST(Figure1, AddressSanitizerRow) {
  // ASan: Bounds Partial (adjacent overflows only, via redzones),
  // UAF Partial (not reuse-after-free).
  MatrixRow Row = evaluateModel(ModelKind::AddressSanitizer);
  EXPECT_EQ(Row.typesCapability(), Capability::None);
  EXPECT_EQ(Row.boundsCapability(), Capability::Partial);
  EXPECT_EQ(Row.temporalCapability(), Capability::Partial);

  auto O = outcomesFor(ModelKind::AddressSanitizer);
  EXPECT_TRUE(O["object-overflow"]);
  EXPECT_FALSE(O["skip-redzone-overflow"])
      << "accesses that skip the redzone are missed";
  EXPECT_FALSE(O["subobject-overflow"]);
  EXPECT_TRUE(O["use-after-free"]);
  EXPECT_FALSE(O["reuse-after-free-diff-type"])
      << "reuse-after-free is missed once the block is reallocated";
  EXPECT_TRUE(O["double-free"]);
}

TEST(Figure1, AllocationBoundsToolsRow) {
  // LowFat / BaggyBounds: allocation bounds only (Partial-dagger).
  auto LF = outcomesFor(ModelKind::LowFat);
  EXPECT_TRUE(LF["object-overflow"]);
  EXPECT_TRUE(LF["skip-redzone-overflow"]);
  EXPECT_FALSE(LF["subobject-overflow"]);
  EXPECT_FALSE(LF["use-after-free"]);

  auto BB = outcomesFor(ModelKind::BaggyBounds);
  EXPECT_FALSE(BB["object-overflow"])
      << "baggy power-of-two padding hides the 384-byte overflow";
  EXPECT_TRUE(BB["object-overflow-pow2"]);
  EXPECT_TRUE(BB["skip-redzone-overflow"]);
  EXPECT_FALSE(BB["subobject-overflow"]);

  EXPECT_EQ(evaluateModel(ModelKind::LowFat).typesCapability(),
            Capability::None);
  EXPECT_EQ(evaluateModel(ModelKind::LowFat).temporalCapability(),
            Capability::None);
}

TEST(Figure1, NarrowingBoundsToolsRow) {
  // MPX / SoftBound: full bounds (including sub-object via narrowing),
  // no types, no temporal.
  for (ModelKind Kind : {ModelKind::IntelMpx, ModelKind::SoftBound}) {
    MatrixRow Row = evaluateModel(Kind);
    EXPECT_EQ(Row.boundsCapability(), Capability::Full)
        << modelKindName(Kind);
    EXPECT_EQ(Row.typesCapability(), Capability::None)
        << modelKindName(Kind);
    EXPECT_EQ(Row.temporalCapability(), Capability::None)
        << modelKindName(Kind);
    auto O = outcomesFor(Kind);
    EXPECT_TRUE(O["subobject-overflow"]) << modelKindName(Kind);
  }
}

TEST(Figure1, CetsRow) {
  // CETS: UAF Yes (all temporal scenarios), nothing else.
  MatrixRow Row = evaluateModel(ModelKind::Cets);
  EXPECT_EQ(Row.temporalCapability(), Capability::Full);
  EXPECT_EQ(Row.typesCapability(), Capability::None);
  EXPECT_EQ(Row.boundsCapability(), Capability::None);
  auto O = outcomesFor(ModelKind::Cets);
  EXPECT_TRUE(O["reuse-after-free-same-type"])
      << "identifier-based checking survives reallocation";
}

TEST(Figure1, SoftBoundCetsRow) {
  MatrixRow Row = evaluateModel(ModelKind::SoftBoundCets);
  EXPECT_EQ(Row.boundsCapability(), Capability::Full);
  EXPECT_EQ(Row.temporalCapability(), Capability::Full);
  EXPECT_EQ(Row.typesCapability(), Capability::None);
}

TEST(Figure1, EffectiveSanVariantsRows) {
  // EffectiveSan-type: casts only (like the type-confusion tools but
  // covering all C/C++ types).
  auto TypeO = outcomesFor(ModelKind::EffectiveSanType);
  EXPECT_TRUE(TypeO["bad-downcast"]);
  EXPECT_TRUE(TypeO["c-cast-confusion"]);
  EXPECT_FALSE(TypeO["implicit-cast-confusion"])
      << "the -type variant drops pointer-use instrumentation";
  EXPECT_FALSE(TypeO["object-overflow"]);

  // EffectiveSan-bounds: object bounds + temporal via FREE, no types.
  MatrixRow BoundsRow = evaluateModel(ModelKind::EffectiveSanBounds);
  EXPECT_EQ(BoundsRow.typesCapability(), Capability::None);
  auto BoundsO = outcomesFor(ModelKind::EffectiveSanBounds);
  EXPECT_TRUE(BoundsO["object-overflow"]);
  EXPECT_TRUE(BoundsO["use-after-free"]);
  EXPECT_FALSE(BoundsO["bad-downcast"]);
}

TEST(Figure1, EffectiveSanIsTheOnlyFullTypesRow) {
  // The headline claim: only EffectiveSan covers every Types scenario.
  for (ModelKind Kind : AllModelKinds) {
    MatrixRow Row = evaluateModel(Kind);
    if (Kind == ModelKind::EffectiveSan) {
      EXPECT_EQ(Row.typesCapability(), Capability::Full);
      continue;
    }
    EXPECT_NE(Row.typesCapability(), Capability::Full)
        << modelKindName(Kind);
  }
}
