//===- tests/pipeline_test.cpp - Lowering + instrumentation tests ---------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Static tests of the compilation pipeline: MiniC parses and lowers to
/// verifiable IR, and the instrumentation pass realizes the Figure 3
/// schema — the Figure 4 `length`/`sum` examples are encoded literally
/// (parameter checks, re-check after pointer load, narrow on field
/// access, bounds check before use). Also covers the paper's
/// optimizations: used-pointers-only, never-failing-check elision and
/// subsumed-check removal.
///
//===----------------------------------------------------------------------===//

#include "instrument/Pipeline.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

#include <set>

using namespace effective;
using namespace effective::instrument;

namespace {

/// Compiles under the given options; fails the test on any diagnostic.
CompileResult compile(std::string_view Source, TypeContext &Types,
                      const InstrumentOptions &Opts) {
  DiagnosticEngine Diags;
  CompileResult R = compileMiniC(Source, Types, Diags, Opts);
  for (const Diagnostic &D : Diags.diagnostics())
    ADD_FAILURE() << D.Loc.Line << ":" << D.Loc.Column << ": "
                  << D.Message;
  return R;
}

/// Number of instructions with opcode \p Op in function \p Name.
uint64_t countOps(const ir::Module &M, std::string_view Name,
                  ir::Opcode Op) {
  const ir::Function *F = M.findFunction(Name);
  if (!F)
    return 0;
  uint64_t N = 0;
  for (const ir::Block &B : F->Blocks)
    for (const ir::Instr &I : B.Instrs)
      N += I.Op == Op;
  return N;
}

constexpr const char *LengthSource = R"(
struct node { int value; struct node *next; };

int length(struct node *xs) {
  int len = 0;
  while (xs != NULL) {
    len = len + 1;
    xs = xs->next;
  }
  return len;
}

int main() { return length(NULL); }
)";

constexpr const char *SumSource = R"(
int sum(int *a, int len) {
  int s = 0;
  int i;
  for (i = 0; i < len; i = i + 1)
    s = s + a[i];
  return s;
}

int main() {
  int *a = (int *)malloc(100 * sizeof(int));
  int i;
  for (i = 0; i < 100; i = i + 1)
    a[i] = i;
  int s = sum(a, 100);
  free(a);
  return s;
}
)";

} // namespace

//===----------------------------------------------------------------------===//
// Figure 4: the length function
//===----------------------------------------------------------------------===//

TEST(Figure4, LengthIsInstrumentedPerSchema) {
  TypeContext Types;
  CompileResult R = compile(LengthSource, Types, InstrumentOptions());
  ASSERT_TRUE(R.M);
  std::string IR = ir::printFunction(*R.M->findFunction("length"), *R.M);

  // Rule (a): the parameter is type-checked against node[] on entry.
  EXPECT_NE(IR.find("type_check %r0, struct node[]"), std::string::npos)
      << IR;
  // Rule (e): &xs->next narrows (the field is 8 bytes).
  EXPECT_NE(IR.find("bounds_narrow"), std::string::npos) << IR;
  // Rule (g): the load of xs->next is bounds-checked first.
  EXPECT_NE(IR.find("bounds_check"), std::string::npos) << IR;
  // Rule (c): xs = *tmp re-checks the loaded pointer (Figure 4 line 10)
  // — so the function has at least two type checks in total.
  uint64_t TypeChecks =
      countOps(*R.M, "length", ir::Opcode::TypeCheck);
  EXPECT_GE(TypeChecks, 2u) << IR;
}

TEST(Figure4, CheckSitesAreDenseUniqueAndPrinted) {
  // PR 3: every emitted check instruction carries a module-dense
  // SiteId (the index into the runtime's type-check inline cache).
  TypeContext Types;
  CompileResult R = compile(LengthSource, Types, InstrumentOptions());
  ASSERT_TRUE(R.M);

  std::set<uint32_t> Sites;
  uint64_t CheckInstrs = 0;
  for (const auto &F : R.M->Functions) {
    for (const ir::Block &B : F->Blocks) {
      for (const ir::Instr &I : B.Instrs) {
        if (!I.isCheck() || I.Op == ir::Opcode::WideBounds)
          continue;
        ++CheckInstrs;
        EXPECT_NE(I.Site, NoSite) << "unsited check instruction";
        EXPECT_LT(I.Site, R.M->numCheckSites());
        EXPECT_TRUE(Sites.insert(I.Site).second)
            << "duplicate site " << I.Site;
      }
    }
  }
  EXPECT_GT(CheckInstrs, 0u);
  // Subsumed-check removal may retire allocated ids, never reuse them.
  EXPECT_GE(R.M->numCheckSites(), CheckInstrs);
  EXPECT_EQ(R.Stats.CheckSites, R.M->numCheckSites());

  // The printer renders the site annotation for round-trip debugging.
  std::string IR = ir::printFunction(*R.M->findFunction("length"), *R.M);
  EXPECT_NE(IR.find("!site "), std::string::npos) << IR;
}

TEST(Figure4, SumChecksOnceAndBoundsChecksInLoop) {
  TypeContext Types;
  CompileResult R = compile(SumSource, Types, InstrumentOptions());
  ASSERT_TRUE(R.M);
  std::string IR = ir::printFunction(*R.M->findFunction("sum"), *R.M);

  // The input pointer is type-checked exactly once, on entry.
  EXPECT_EQ(countOps(*R.M, "sum", ir::Opcode::TypeCheck), 1u) << IR;
  // Derived pointers (a + i) are merely bounds-checked.
  EXPECT_GE(countOps(*R.M, "sum", ir::Opcode::BoundsCheck), 1u) << IR;
  // Pointer arithmetic propagates bounds without narrowing.
  EXPECT_EQ(countOps(*R.M, "sum", ir::Opcode::BoundsNarrow), 0u) << IR;
}

TEST(Figure4, MallocCastAttractsNoCheck) {
  TypeContext Types;
  CompileResult R = compile(SumSource, Types, InstrumentOptions());
  ASSERT_TRUE(R.M);
  // (int *)malloc(...) with inferred allocation type int must not be
  // re-checked: the compiler knows type_malloc's binding, so the cast
  // can never fail. (The fold happens during Sema/lowering — the cast
  // is never even materialized — which is the strongest form of the
  // paper's "removing dynamic type checks that can never fail".)
  EXPECT_EQ(countOps(*R.M, "main", ir::Opcode::TypeCheck), 0u);
  // The allocation bounds are known statically: no bounds_get either.
  EXPECT_EQ(countOps(*R.M, "main", ir::Opcode::BoundsGet), 0u);
}

//===----------------------------------------------------------------------===//
// Variants
//===----------------------------------------------------------------------===//

TEST(Variants, NoneIsIdentity) {
  TypeContext Types;
  InstrumentOptions Opts;
  Opts.V = Variant::None;
  CompileResult R = compile(LengthSource, Types, Opts);
  ASSERT_TRUE(R.M);
  EXPECT_EQ(countOps(*R.M, "length", ir::Opcode::TypeCheck), 0u);
  EXPECT_EQ(countOps(*R.M, "length", ir::Opcode::BoundsCheck), 0u);
  EXPECT_EQ(countOps(*R.M, "length", ir::Opcode::BoundsGet), 0u);
  EXPECT_EQ(R.Stats.TypeChecks + R.Stats.BoundsChecks, 0u);
}

TEST(Variants, BoundsReplacesTypeChecksWithBoundsGet) {
  TypeContext Types;
  InstrumentOptions Opts;
  Opts.V = Variant::Bounds;
  CompileResult R = compile(LengthSource, Types, Opts);
  ASSERT_TRUE(R.M);
  EXPECT_EQ(countOps(*R.M, "length", ir::Opcode::TypeCheck), 0u);
  EXPECT_GE(countOps(*R.M, "length", ir::Opcode::BoundsGet), 1u);
  EXPECT_GE(countOps(*R.M, "length", ir::Opcode::BoundsCheck), 1u);
  // Allocation bounds only: no sub-object narrowing.
  EXPECT_EQ(countOps(*R.M, "length", ir::Opcode::BoundsNarrow), 0u);
}

TEST(Variants, TypeChecksCastsOnly) {
  TypeContext Types;
  InstrumentOptions Opts;
  Opts.V = Variant::Type;
  CompileResult R = compile(R"(
struct S { int x; };
int main() {
  struct S *p = (struct S *)malloc(sizeof(struct S));
  float *q = (float *)p;
  p->x = 1;
  free(p);
  return 0;
}
)",
                            Types, Opts);
  ASSERT_TRUE(R.M);
  // The bad (float *) cast is checked even though q is never used...
  EXPECT_GE(countOps(*R.M, "main", ir::Opcode::TypeCheck), 1u);
  // ...but nothing is bounds-checked under the -type variant.
  EXPECT_EQ(countOps(*R.M, "main", ir::Opcode::BoundsCheck), 0u);
  EXPECT_EQ(countOps(*R.M, "main", ir::Opcode::BoundsGet), 0u);
}

//===----------------------------------------------------------------------===//
// Optimizations
//===----------------------------------------------------------------------===//

TEST(Optimizations, CastAndReturnAttractsNoInstrumentation) {
  // Section 4: "a function that merely casts and returns a pointer will
  // not attract instrumentation".
  TypeContext Types;
  CompileResult R = compile(R"(
struct S { int x; };
struct S *identity(struct S *p) { return p; }
int main() {
  struct S *p = (struct S *)malloc(sizeof(struct S));
  struct S *q = identity(p);
  free(p);
  return 0;
}
)",
                            Types, InstrumentOptions());
  ASSERT_TRUE(R.M);
  EXPECT_EQ(countOps(*R.M, "identity", ir::Opcode::TypeCheck), 0u);
  EXPECT_EQ(countOps(*R.M, "identity", ir::Opcode::BoundsCheck), 0u);
  EXPECT_GE(R.Stats.UnusedPointers, 1u);
}

TEST(Optimizations, DisablingUsedOnlyInstrumentsEverything) {
  // castOnly's pointer is never dereferenced: the optimized pass skips
  // it entirely, the O0 (schema-literal) pass checks the parameter.
  constexpr const char *Source = R"(
struct S { int x; };
struct S *castOnly(char *p) { return (struct S *)p; }
int main() {
  char *buf = (char *)malloc(16);
  struct S *s = castOnly(buf);
  free(buf);
  return 0;
}
)";
  TypeContext Types;
  InstrumentOptions O0;
  O0.OnlyUsedPointers = false;
  O0.ElideNeverFailingChecks = false;
  O0.ElideSubsumedChecks = false;
  CompileResult R0 = compile(Source, Types, O0);
  CompileResult R1 = compile(Source, Types, InstrumentOptions());
  ASSERT_TRUE(R0.M);
  ASSERT_TRUE(R1.M);
  // Optimized: castOnly attracts nothing.
  EXPECT_EQ(countOps(*R1.M, "castOnly", ir::Opcode::TypeCheck), 0u);
  // Schema-literal: the parameter and the cast are both checked.
  EXPECT_GE(countOps(*R0.M, "castOnly", ir::Opcode::TypeCheck), 2u);
  EXPECT_GT(R0.Stats.TypeChecks + R0.Stats.BoundsChecks,
            R1.Stats.TypeChecks + R1.Stats.BoundsChecks);
}

TEST(Optimizations, SubsumedChecksAreRemoved) {
  TypeContext Types;
  // s.x is accessed twice back-to-back through the same bounds: the
  // second check is subsumed.
  constexpr const char *Source = R"(
struct S { int x; int y; };
int main() {
  struct S s;
  s.x = 1;
  s.x = 2;
  return s.x;
}
)";
  InstrumentOptions NoOpt;
  NoOpt.ElideSubsumedChecks = false;
  CompileResult RNoOpt = compile(Source, Types, NoOpt);
  CompileResult ROpt = compile(Source, Types, InstrumentOptions());
  ASSERT_TRUE(RNoOpt.M);
  ASSERT_TRUE(ROpt.M);
  EXPECT_LT(countOps(*ROpt.M, "main", ir::Opcode::BoundsCheck),
            countOps(*RNoOpt.M, "main", ir::Opcode::BoundsCheck));
  EXPECT_GE(ROpt.Stats.ElidedSubsumed, 1u);
}

TEST(Optimizations, CrossBlockDuplicateChecksAreMerged) {
  // The ROADMAP follow-up: CSE runs before instrumentation and is
  // block-local, so structurally identical checks of the same register
  // survive in *different* blocks. The post-instrumentation merge pass
  // removes a check that is must-available from every predecessor —
  // here, the escape check of p in the join block duplicates the one
  // both branches executed.
  constexpr const char *Source = R"(
struct H { int *slot; };
int main() {
  struct H h;
  int *p = (int *)malloc(4 * sizeof(int));
  int c = 1;
  if (c) { h.slot = p; } else { h.slot = p; }
  h.slot = p;
  free(p);
  return 0;
}
)";
  TypeContext Types;
  InstrumentOptions NoMerge;
  NoMerge.MergeCrossBlockChecks = false;
  CompileResult RNo = compile(Source, Types, NoMerge);
  CompileResult RYes = compile(Source, Types, InstrumentOptions());
  ASSERT_TRUE(RNo.M && RYes.M);

  EXPECT_EQ(RNo.Stats.ElidedCrossBlock, 0u);
  EXPECT_GE(RYes.Stats.ElidedCrossBlock, 1u);
  EXPECT_LT(countOps(*RYes.M, "main", ir::Opcode::BoundsCheck),
            countOps(*RNo.M, "main", ir::Opcode::BoundsCheck));
}

TEST(Optimizations, MergeNeverCrossesCallsOrLoops) {
  // A call between the duplicate checks may free the object; the merge
  // must keep the later check so a use-after-free degraded to a bounds
  // error is still caught.
  constexpr const char *Source = R"(
struct H { int *slot; };
int nop(int x) { return x; }
int main() {
  struct H h;
  int *p = (int *)malloc(4 * sizeof(int));
  int c = 1;
  if (c) { h.slot = p; } else { h.slot = p; }
  c = nop(c);
  h.slot = p;
  free(p);
  return 0;
}
)";
  TypeContext Types;
  CompileResult R = compile(Source, Types, InstrumentOptions());
  ASSERT_TRUE(R.M);
  EXPECT_EQ(R.Stats.ElidedCrossBlock, 0u)
      << "the intervening call clears availability";
}

TEST(Figure4, SiteDensityMatchesLiveChecks) {
  // Site-space density: ids are allocated per emitted check, and the
  // elision passes may retire but never reuse them — so live sited
  // checks <= allocated sites, every live id unique and in range, and
  // the site table describes the full allocated space.
  TypeContext Types;
  CompileResult R = compile(LengthSource, Types, InstrumentOptions());
  ASSERT_TRUE(R.M);
  uint64_t Live = 0;
  for (const auto &F : R.M->Functions)
    for (const ir::Block &B : F->Blocks)
      for (const ir::Instr &I : B.Instrs)
        Live += I.isCheck() && I.Op != ir::Opcode::WideBounds;
  EXPECT_LE(Live, R.M->numCheckSites());
  EXPECT_EQ(R.M->siteTable().Entries.size(), R.M->numCheckSites());
  // Retired ids are exactly the subsumed + cross-block-merged checks.
  EXPECT_EQ(R.M->numCheckSites() - Live,
            R.Stats.ElidedSubsumed + R.Stats.ElidedCrossBlock);
}

//===----------------------------------------------------------------------===//
// Verifier and printer sanity over a corpus
//===----------------------------------------------------------------------===//

namespace {

constexpr const char *CorpusPrograms[] = {
    // Recursion + arithmetic.
    R"(
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int main() { return fib(12); }
)",
    // Globals with initializers.
    R"(
int counter = 5;
int bump() { counter = counter + 1; return counter; }
int main() { bump(); bump(); return counter; }
)",
    // Struct/array mix with address-taken locals.
    R"(
struct point { double x; double y; };
double dot(struct point *a, struct point *b) {
  return a->x * b->x + a->y * b->y;
}
int main() {
  struct point p;
  struct point q;
  p.x = 1.5; p.y = 2.0; q.x = 3.0; q.y = 0.5;
  double d = dot(&p, &q);
  return (int)d;
}
)",
    // Pointer arithmetic and logical operators.
    R"(
int main() {
  int a[8];
  int i;
  for (i = 0; i < 8; i = i + 1) a[i] = i * i;
  int *p = a;
  int total = 0;
  while (p - a < 8 && total < 1000) {
    total = total + *p;
    p = p + 1;
  }
  return total;
}
)",
    // Unions and casts.
    R"(
union bits { float f; int i; };
int main() {
  union bits b;
  b.f = 1.0;
  return b.i != 0;
}
)",
};

} // namespace

class PipelineCorpusTest
    : public ::testing::TestWithParam<std::tuple<size_t, int>> {};

TEST_P(PipelineCorpusTest, CompilesVerifiablyUnderEveryVariant) {
  auto [Idx, V] = GetParam();
  TypeContext Types;
  InstrumentOptions Opts;
  Opts.V = static_cast<Variant>(V);
  DiagnosticEngine Diags;
  CompileResult R =
      compileMiniC(CorpusPrograms[Idx], Types, Diags, Opts);
  for (const Diagnostic &D : Diags.diagnostics())
    ADD_FAILURE() << D.Message;
  ASSERT_TRUE(R.M);
  // The printer must render every instruction (smoke).
  std::string Text = ir::printModule(*R.M);
  EXPECT_EQ(Text.find("<bad-"), std::string::npos) << Text;
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, PipelineCorpusTest,
    ::testing::Combine(::testing::Range<size_t>(0, 5),
                       ::testing::Range(0, 4)));
