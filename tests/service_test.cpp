//===- tests/service_test.cpp - Service-mode supervisor tests -------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Covers the src/service/ subsystem: the Supervisor's background
/// drain loop (liveness without manual drains, deterministic forced
/// ticks, clean shutdown, pool-wide abort threshold), tenant quotas
/// enforced at checkout (live-byte, error-event and check budgets,
/// each evicting with its reason), the LoadGovernor's degradation
/// ladder with hysteresis, eviction-driven shard recycling, telemetry
/// (stats, JSON snapshots, snapshot hook), and the effsan_service_* C
/// ABI (since 1.5) including the caller-sized stats prefix contract.
/// The drain-vs-mutator storm at the end runs under -fsanitize=thread
/// in the CI TSan job.
///
//===----------------------------------------------------------------------===//

#include "service/Supervisor.h"

#include "api/effsan.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace effective;
using namespace effective::service;

namespace {

/// Service options for deterministic tests: counting reporter and a
/// drain interval long enough that every tick is one we forced.
ServiceOptions quietService(unsigned Shards,
                            CheckPolicy Policy = CheckPolicy::Full) {
  ServiceOptions Options;
  Options.Shards = Shards;
  Options.Policy = Policy;
  Options.Reporter.Mode = ReportMode::Count;
  Options.DrainIntervalMicros = 60'000'000; // Forced ticks only.
  return Options;
}

/// Governor tuning small enough for a unit test to trip by hand.
GovernorOptions testGovernor() {
  GovernorOptions G;
  G.CheckRateHigh = 100;
  G.AllocRateHigh = 1'000'000;
  G.RingOccupancyHigh = 2.0; // Occupancy never triggers on its own.
  G.RestoreFraction = 0.5;
  G.DegradeTicks = 2;
  G.RestoreTicks = 2;
  return G;
}

/// One out-of-bounds access: pushes exactly one error event onto the
/// pool ring (dedup happens centrally, events are all queued).
void oneBoundsError(Sanitizer &S) {
  TypeContext &Ctx = S.types();
  auto *P = static_cast<int *>(S.malloc(16 * sizeof(int), Ctx.getInt()));
  Bounds B = S.boundsGet(P);
  S.boundsCheck(P + 16, sizeof(int), B);
  S.free(P);
}

/// Spins until \p Done returns true or ~5 s pass.
template <typename Pred> bool waitFor(Pred Done) {
  for (int I = 0; I < 5000; ++I) {
    if (Done())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Done();
}

//===----------------------------------------------------------------------===//
// Background drain loop
//===----------------------------------------------------------------------===//

TEST(ServiceDrainTest, ErrorsSurfaceWithoutManualDrain) {
  ServiceOptions Options = quietService(1);
  Options.DrainIntervalMicros = 500; // Fast periodic ticks.
  Supervisor Sup(Options);

  TenantId T = Sup.openTenant("t");
  ASSERT_NE(T, NoTenant);
  {
    Supervisor::Lease L = Sup.lease(T);
    ASSERT_TRUE(static_cast<bool>(L));
    oneBoundsError(L.session());
  }

  // Nobody calls drain() or tick(): the background thread must surface
  // the event on its own.
  EXPECT_TRUE(waitFor([&] { return Sup.stats().DrainedEvents >= 1; }));
  EXPECT_GE(Sup.reporter().numIssues(), 1u);
  EXPECT_TRUE(waitFor([&] { return Sup.stats().DrainTicks >= 2; }))
      << "periodic ticks keep coming";

  // And the event was attributed to the tenant that caused it.
  TenantSnapshot Snap;
  ASSERT_TRUE(Sup.tenantSnapshot(T, Snap));
  EXPECT_EQ(Snap.ErrorEvents, 1u);
}

TEST(ServiceDrainTest, ForcedTickIsDeterministic) {
  Supervisor Sup(quietService(1));
  TenantId T = Sup.openTenant("t");
  ASSERT_NE(T, NoTenant);

  uint64_t TicksBefore = Sup.stats().DrainTicks;
  {
    Supervisor::Lease L = Sup.lease(T);
    ASSERT_TRUE(static_cast<bool>(L));
    for (int I = 0; I < 3; ++I)
      oneBoundsError(L.session());
  }
  EXPECT_EQ(Sup.tick(), 3u) << "the forced tick drains all three events";
  EXPECT_EQ(Sup.stats().DrainedEvents, 3u);
  EXPECT_GT(Sup.stats().DrainTicks, TicksBefore);
  EXPECT_EQ(Sup.reporter().numIssues(), 1u) << "same bucket dedups";

  TenantSnapshot Snap;
  ASSERT_TRUE(Sup.tenantSnapshot(T, Snap));
  EXPECT_EQ(Snap.ErrorEvents, 3u);
}

TEST(ServiceDrainTest, BackgroundReportsKeepSiteAttribution) {
  ServiceOptions Options = quietService(1);
  Options.DrainIntervalMicros = 500;
  Supervisor Sup(Options);

  static std::atomic<bool> Attributed{false};
  static std::string Message;
  static std::mutex MessageLock;
  Attributed = false;
  Sup.setErrorCallback(
      [](const ErrorInfo &Info, const char *Msg, void *) {
        std::lock_guard<std::mutex> Guard(MessageLock);
        if (Info.Where && Msg)
          Message = Msg;
        Attributed = Info.Where != nullptr;
      },
      nullptr);

  TenantId T = Sup.openTenant("t");
  ASSERT_NE(T, NoTenant);
  {
    Supervisor::Lease L = Sup.lease(T);
    ASSERT_TRUE(static_cast<bool>(L));
    SiteTable Table;
    Table.File = "svc.c";
    Table.Entries.push_back({CheckSiteKind::BoundsCheck,
                             SourceLoc{3, 7}, "worker", nullptr});
    SiteId Base = L->registerSiteTable(Table);
    TypeContext &Ctx = L->types();
    auto *P =
        static_cast<int *>(L->malloc(8 * sizeof(int), Ctx.getInt()));
    Bounds B = L->boundsGet(P);
    L->boundsCheck(P + 8, sizeof(int), B, Base);
    L->free(P);
  }

  // The *background* drainer publishes the report; the queued event's
  // site attribution must survive the ring crossing.
  EXPECT_TRUE(waitFor([&] { return Attributed.load(); }));
  std::lock_guard<std::mutex> Guard(MessageLock);
  EXPECT_NE(Message.find("svc.c:3:7"), std::string::npos) << Message;
  EXPECT_NE(Message.find("worker"), std::string::npos) << Message;
}

TEST(ServiceDrainTest, AbortThresholdFiresFromDrainer) {
  static std::atomic<uint64_t> AbortedAt{0};
  AbortedAt = 0;

  ServiceOptions Options = quietService(1);
  Options.AbortAfter = 3;
  Options.AbortHandler = [](uint64_t Drained, void *) {
    AbortedAt = Drained;
  };
  Supervisor Sup(Options);

  TenantId T = Sup.openTenant("t");
  {
    Supervisor::Lease L = Sup.lease(T);
    ASSERT_TRUE(static_cast<bool>(L));
    oneBoundsError(L.session());
    oneBoundsError(L.session());
  }
  Sup.tick();
  EXPECT_EQ(AbortedAt, 0u) << "two events stay under the threshold";

  {
    Supervisor::Lease L = Sup.lease(T);
    ASSERT_TRUE(static_cast<bool>(L));
    oneBoundsError(L.session());
  }
  Sup.tick();
  EXPECT_EQ(AbortedAt, 3u) << "the drainer fires the pool-wide budget";
}

//===----------------------------------------------------------------------===//
// Tenant quotas
//===----------------------------------------------------------------------===//

TEST(ServiceQuotaTest, LiveByteBudgetRefusesAndEvicts) {
  Supervisor Sup(quietService(2));
  TenantQuota Quota;
  Quota.MaxAllocBytes = 4096;
  TenantId T = Sup.openTenant("greedy", Quota);
  ASSERT_NE(T, NoTenant);

  // Hold one lease across the trip so the eviction cannot complete
  // (and recycle the slot) while we inspect it.
  Supervisor::Lease Held = Sup.lease(T);
  ASSERT_TRUE(static_cast<bool>(Held));
  TypeContext &Ctx = Held->types();
  void *P = Held->malloc(8192, Ctx.getChar());
  ASSERT_NE(P, nullptr);

  Supervisor::Lease Refused = Sup.lease(T);
  EXPECT_FALSE(static_cast<bool>(Refused))
      << "8 KiB live against a 4 KiB budget refuses the next lease";

  TenantSnapshot Snap;
  ASSERT_TRUE(Sup.tenantSnapshot(T, Snap));
  EXPECT_EQ(Snap.Status, TenantStatus::Evicted);
  EXPECT_EQ(Snap.Reason, EvictReason::AllocBytes);
  EXPECT_EQ(Snap.LeasesGranted, 1u);
  EXPECT_EQ(Snap.LeasesRefused, 1u);
  EXPECT_EQ(Snap.LeasesOutstanding, 1u);

  Held->free(P);
  Held.reset();
  Sup.tick(); // Completes the eviction: shard reset, slot freed.
  EXPECT_FALSE(Sup.tenantSnapshot(T, Snap)) << "handle is stale now";
  EXPECT_EQ(Sup.stats().TenantsClosed, 1u);
}

TEST(ServiceQuotaTest, CheckBudgetCountsFromOpen) {
  Supervisor Sup(quietService(1));

  // Pre-tenant traffic on the shard must not bill the tenant: burn
  // some checks, recycle, then open with a budget.
  {
    TenantId Warm = Sup.openTenant("warmup");
    Supervisor::Lease L = Sup.lease(Warm);
    ASSERT_TRUE(static_cast<bool>(L));
    TypeContext &Ctx = L->types();
    auto *P = static_cast<int *>(L->malloc(sizeof(int), Ctx.getInt()));
    for (int I = 0; I < 500; ++I)
      L->boundsGet(P);
    L->free(P);
    L.reset();
    Sup.closeTenant(Warm);
  }

  TenantQuota Quota;
  Quota.MaxChecks = 100;
  TenantId T = Sup.openTenant("metered", Quota);
  ASSERT_NE(T, NoTenant);

  Supervisor::Lease Held = Sup.lease(T);
  ASSERT_TRUE(static_cast<bool>(Held)) << "fresh tenant starts at zero";
  TypeContext &Ctx = Held->types();
  auto *P = static_cast<int *>(Held->malloc(sizeof(int), Ctx.getInt()));
  for (int I = 0; I < 200; ++I)
    Held->boundsGet(P);
  Held->free(P);

  Supervisor::Lease Refused = Sup.lease(T);
  EXPECT_FALSE(static_cast<bool>(Refused));
  TenantSnapshot Snap;
  ASSERT_TRUE(Sup.tenantSnapshot(T, Snap));
  EXPECT_EQ(Snap.Reason, EvictReason::Checks);
  EXPECT_GE(Snap.Checks, 200u);
  EXPECT_LT(Snap.Checks, 500u) << "warmup checks are not billed";
}

TEST(ServiceQuotaTest, ErrorBudgetUsesDrainerAttribution) {
  Supervisor Sup(quietService(2));
  TenantQuota Quota;
  Quota.MaxErrorEvents = 2;
  TenantId T = Sup.openTenant("buggy", Quota);
  ASSERT_NE(T, NoTenant);

  Supervisor::Lease Held = Sup.lease(T);
  ASSERT_TRUE(static_cast<bool>(Held));
  for (int I = 0; I < 3; ++I)
    oneBoundsError(Held.session());
  Sup.tick(); // Attribution happens in the drainer.

  Supervisor::Lease Refused = Sup.lease(T);
  EXPECT_FALSE(static_cast<bool>(Refused));
  TenantSnapshot Snap;
  ASSERT_TRUE(Sup.tenantSnapshot(T, Snap));
  EXPECT_EQ(Snap.Reason, EvictReason::ErrorEvents);
  EXPECT_EQ(Snap.ErrorEvents, 3u);
}

TEST(ServiceQuotaTest, QuotaCanBeRaisedAtRunTime) {
  Supervisor Sup(quietService(1));
  TenantQuota Quota;
  Quota.MaxAllocBytes = 1;
  TenantId T = Sup.openTenant("t", Quota);
  ASSERT_NE(T, NoTenant);

  TenantQuota Read;
  ASSERT_TRUE(Sup.getQuota(T, Read));
  EXPECT_EQ(Read.MaxAllocBytes, 1u);

  // Raise before anything trips; the lease then passes.
  Read.MaxAllocBytes = 0; // Unlimited.
  ASSERT_TRUE(Sup.setQuota(T, Read));
  Supervisor::Lease L = Sup.lease(T);
  EXPECT_TRUE(static_cast<bool>(L));
}

//===----------------------------------------------------------------------===//
// Eviction recycles the shard
//===----------------------------------------------------------------------===//

TEST(ServiceEvictionTest, CloseResetsShardForTheNextTenant) {
  Supervisor Sup(quietService(1));
  TenantId A = Sup.openTenant("a");
  ASSERT_NE(A, NoTenant);
  {
    Supervisor::Lease L = Sup.lease(A);
    ASSERT_TRUE(static_cast<bool>(L));
    TypeContext &Ctx = L->types();
    // Leak on purpose: the reset must reclaim it.
    void *P = L->malloc(100 * sizeof(int), Ctx.getInt());
    L->typeCheck(P, Ctx.getInt());
  }
  EXPECT_GT(Sup.pool().heap().shardStats(0).BlockBytesInUse, 0u);

  ASSERT_TRUE(Sup.closeTenant(A));
  EXPECT_FALSE(static_cast<bool>(Sup.lease(A))) << "stale handle misses";

  // With no outstanding leases the close's own tick already recycled
  // the slot: the next tenant starts from a clean shard.
  TenantId B = Sup.openTenant("b");
  ASSERT_NE(B, NoTenant);
  EXPECT_NE(B, A) << "generation bump keeps handles distinct";
  EXPECT_EQ(Sup.pool().heap().shardStats(0).BlockBytesInUse, 0u);
  EXPECT_EQ(Sup.pool().shard(0).counters().snapshot().TypeChecks, 0u);
  TenantSnapshot Snap;
  ASSERT_TRUE(Sup.tenantSnapshot(B, Snap));
  EXPECT_EQ(Snap.Checks, 0u);
  EXPECT_EQ(Snap.ErrorEvents, 0u);
}

TEST(ServiceEvictionTest, ResetWaitsForOutstandingLeases) {
  Supervisor Sup(quietService(1));
  TenantId A = Sup.openTenant("a");
  Supervisor::Lease Held = Sup.lease(A);
  ASSERT_TRUE(static_cast<bool>(Held));

  ASSERT_TRUE(Sup.closeTenant(A));
  EXPECT_EQ(Sup.openTenant("b"), NoTenant)
      << "slot still occupied while a lease is out";

  Held.reset();
  Sup.tick();
  EXPECT_NE(Sup.openTenant("b"), NoTenant)
      << "last release unblocks the recycle";
}

//===----------------------------------------------------------------------===//
// Adaptive degradation
//===----------------------------------------------------------------------===//

TEST(ServiceGovernorTest, DegradesUnderPressureAndRestoresWhenCalm) {
  ServiceOptions Options = quietService(1);
  Options.Governor = testGovernor();
  Supervisor Sup(Options);

  TenantId T = Sup.openTenant("hot");
  ASSERT_NE(T, NoTenant);
  EXPECT_EQ(Sup.tenantPolicy(T), CheckPolicy::Full);

  Supervisor::Lease L = Sup.lease(T);
  ASSERT_TRUE(static_cast<bool>(L));
  TypeContext &Ctx = L->types();
  auto *P = static_cast<int *>(L->malloc(sizeof(int), Ctx.getInt()));

  auto Burn = [&] {
    for (int I = 0; I < 200; ++I) // Over CheckRateHigh = 100.
      L->boundsGet(P);
  };

  // Two consecutive pressured ticks shed one level (DegradeTicks = 2).
  Burn();
  Sup.tick();
  EXPECT_EQ(Sup.tenantPolicy(T), CheckPolicy::Full) << "hysteresis holds";
  Burn();
  Sup.tick();
  EXPECT_EQ(Sup.tenantPolicy(T), CheckPolicy::BoundsOnly);

  // Two more shed the second (and last) level.
  Burn();
  Sup.tick();
  Burn();
  Sup.tick();
  EXPECT_EQ(Sup.tenantPolicy(T), CheckPolicy::CountOnly);

  // Pressure gone: two calm ticks per restored level (RestoreTicks=2).
  Sup.tick();
  Sup.tick();
  EXPECT_EQ(Sup.tenantPolicy(T), CheckPolicy::BoundsOnly);
  Sup.tick();
  Sup.tick();
  EXPECT_EQ(Sup.tenantPolicy(T), CheckPolicy::Full);

  ServiceStats S = Sup.stats();
  EXPECT_EQ(S.PolicyDegrades, 2u);
  EXPECT_EQ(S.PolicyRestores, 2u);
  L->free(P);
}

TEST(ServiceGovernorTest, DisabledGovernorPinsThePolicy) {
  ServiceOptions Options = quietService(1);
  Options.Governor = testGovernor();
  Options.EnableGovernor = false;
  Supervisor Sup(Options);

  TenantId T = Sup.openTenant("hot");
  Supervisor::Lease L = Sup.lease(T);
  ASSERT_TRUE(static_cast<bool>(L));
  TypeContext &Ctx = L->types();
  auto *P = static_cast<int *>(L->malloc(sizeof(int), Ctx.getInt()));
  for (int Round = 0; Round < 4; ++Round) {
    for (int I = 0; I < 200; ++I)
      L->boundsGet(P);
    Sup.tick();
  }
  EXPECT_EQ(Sup.tenantPolicy(T), CheckPolicy::Full);
  EXPECT_EQ(Sup.stats().PolicyDegrades, 0u);
  L->free(P);
}

TEST(ServiceGovernorTest, RecycledShardStartsUndegraded) {
  ServiceOptions Options = quietService(1);
  Options.Governor = testGovernor();
  Supervisor Sup(Options);

  TenantId A = Sup.openTenant("a");
  {
    Supervisor::Lease L = Sup.lease(A);
    ASSERT_TRUE(static_cast<bool>(L));
    TypeContext &Ctx = L->types();
    auto *P = static_cast<int *>(L->malloc(sizeof(int), Ctx.getInt()));
    for (int Round = 0; Round < 2; ++Round) {
      for (int I = 0; I < 200; ++I)
        L->boundsGet(P);
      Sup.tick();
    }
    EXPECT_EQ(Sup.tenantPolicy(A), CheckPolicy::BoundsOnly);
    L->free(P);
  }
  Sup.closeTenant(A);

  TenantId B = Sup.openTenant("b");
  ASSERT_NE(B, NoTenant);
  EXPECT_EQ(Sup.tenantPolicy(B), CheckPolicy::Full)
      << "degradation state does not leak across tenants";
}

TEST(ServiceGovernorTest, EwmaSmoothsAlternatingLoadBothDirections) {
  // EwmaTicks = 3 -> alpha = 0.5: every tick moves the average halfway
  // to the raw sample, which keeps the arithmetic exact below.
  GovernorOptions G = testGovernor(); // CheckRateHigh=100, Restore=0.5.
  G.EwmaTicks = 3;
  LoadGovernor Smoothed(G, 1, CheckPolicy::Full);
  LoadGovernor Raw(testGovernor(), 1, CheckPolicy::Full);

  // Alternating hot/cold load: 400 checks, then an idle tick. Raw
  // deltas flap (the idle tick reads calm and resets the hot streak),
  // so the unsmoothed governor never degrades. The EWMA sees
  // 400 -> 200, both over the 100 mark, and sheds after two ticks.
  ShardSample Hot;
  Hot.Checks = 400;
  ShardSample Idle;

  Smoothed.observe(0, Hot); // Seeds the average at 400: pressured.
  Raw.observe(0, Hot);
  EXPECT_EQ(Smoothed.level(0), 0u);
  LoadGovernor::Decision D = Smoothed.observe(0, Idle); // Avg 200.
  Raw.observe(0, Idle);
  EXPECT_TRUE(D.Degraded) << "smoothed idle tick still reads pressured";
  EXPECT_EQ(Smoothed.level(0), 1u);
  EXPECT_EQ(Raw.level(0), 0u) << "raw deltas flap and never degrade";

  // Restore direction: the average must DECAY below the thresholds
  // before calm ticks start counting — silence does not snap the level
  // back. Avg walks 200 -> 100 (still pressured) -> 50 (dead band:
  // calm needs < 100 * 0.5) -> 25 -> 12.5 (two calm ticks -> restore).
  Smoothed.observe(0, Idle);
  Smoothed.observe(0, Idle);
  EXPECT_EQ(Smoothed.level(0), 1u);
  Smoothed.observe(0, Idle);
  D = Smoothed.observe(0, Idle);
  EXPECT_TRUE(D.Restored);
  EXPECT_EQ(Smoothed.level(0), 0u);

  // A lone spike amid calm is absorbed: the average only moves halfway
  // toward 150 (~81 < 100), so the spike never reads pressured and
  // cannot restart a degrade streak.
  ShardSample Spike;
  Spike.Checks = 150;
  D = Smoothed.observe(0, Spike);
  EXPECT_FALSE(D.Degraded);
  EXPECT_EQ(Smoothed.level(0), 0u);
}

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//

TEST(ServiceTelemetryTest, StatsAggregateTheRegistryAndDrainer) {
  Supervisor Sup(quietService(2));
  TenantId A = Sup.openTenant("a");
  TenantId B = Sup.openTenant("b");
  ASSERT_NE(A, NoTenant);
  ASSERT_NE(B, NoTenant);
  EXPECT_EQ(Sup.openTenant("c"), NoTenant) << "two shards, two tenants";

  {
    Supervisor::Lease L = Sup.lease(A);
    ASSERT_TRUE(static_cast<bool>(L));
    oneBoundsError(L.session());
  }
  Sup.tick();
  Sup.closeTenant(B);

  ServiceStats S = Sup.stats();
  EXPECT_EQ(S.TenantsOpen, 1u);
  EXPECT_EQ(S.TenantsOpenedTotal, 2u);
  EXPECT_EQ(S.TenantsEvicted, 1u);
  EXPECT_EQ(S.TenantsClosed, 1u);
  EXPECT_EQ(S.LeasesGranted, 1u);
  EXPECT_EQ(S.LeasesRefused, 0u);
  EXPECT_GE(S.DrainTicks, 1u);
  EXPECT_EQ(S.DrainedEvents, 1u);
  EXPECT_EQ(S.IssuesFound, 1u);
}

TEST(ServiceTelemetryTest, SnapshotJsonDescribesTenants) {
  Supervisor Sup(quietService(2));
  TenantQuota Quota;
  Quota.MaxErrorEvents = 10;
  TenantId A = Sup.openTenant("alpha", Quota);
  ASSERT_NE(A, NoTenant);
  {
    Supervisor::Lease L = Sup.lease(A);
    ASSERT_TRUE(static_cast<bool>(L));
    oneBoundsError(L.session());
  }
  Sup.tick();

  std::string Json = Sup.snapshotJson();
  EXPECT_NE(Json.find("\"service\":{"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"name\":\"alpha\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"status\":\"open\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"error_events\":1"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"drained_events\":1"), std::string::npos) << Json;
}

TEST(ServiceTelemetryTest, SnapshotHookFiresEveryNTicks) {
  static std::atomic<unsigned> Fired{0};
  static std::atomic<bool> SawTenants{false};
  Fired = 0;
  SawTenants = false;

  Supervisor Sup(quietService(1));
  Sup.setSnapshotHook(
      [](const char *Json, void *) {
        ++Fired;
        if (std::strstr(Json, "\"tenants\":["))
          SawTenants = true;
      },
      nullptr, /*EveryTicks=*/2);

  TenantId T = Sup.openTenant("t");
  ASSERT_NE(T, NoTenant);
  Sup.tick();
  EXPECT_EQ(Fired, 0u);
  Sup.tick();
  EXPECT_EQ(Fired, 1u);
  // New activity between snapshot ticks (a lease grant changes the
  // activity signature), so the next snapshot is emitted, not skipped.
  { Supervisor::Lease L = Sup.lease(T); }
  Sup.tick();
  Sup.tick();
  EXPECT_EQ(Fired, 2u);
  EXPECT_TRUE(SawTenants);
  EXPECT_EQ(Sup.stats().SnapshotsEmitted, 2u);
}

TEST(ServiceTelemetryTest, IdenticalSnapshotsAreSkippedUntilActivity) {
  static std::atomic<unsigned> Fired{0};
  Fired = 0;

  Supervisor Sup(quietService(1));
  Sup.setSnapshotHook([](const char *, void *) { ++Fired; }, nullptr,
                      /*EveryTicks=*/1);

  TenantId T = Sup.openTenant("t");
  ASSERT_NE(T, NoTenant);
  Sup.tick();
  EXPECT_EQ(Fired, 1u);

  // Nothing happened since: the signature is unchanged, so snapshots
  // are suppressed and counted as skipped instead.
  Sup.tick();
  Sup.tick();
  EXPECT_EQ(Fired, 1u);
  EXPECT_EQ(Sup.stats().SnapshotsEmitted, 1u);
  EXPECT_EQ(Sup.stats().SnapshotsSkipped, 2u);

  // Any tenant activity re-arms emission on the next snapshot tick.
  { Supervisor::Lease L = Sup.lease(T); }
  Sup.tick();
  EXPECT_EQ(Fired, 2u);
  EXPECT_EQ(Sup.stats().SnapshotsEmitted, 2u);
  EXPECT_EQ(Sup.stats().SnapshotsSkipped, 2u);
}

TEST(ServiceTelemetryTest, NullSnapshotHookEmitsAndSkipsNothing) {
  Supervisor Sup(quietService(1));
  // Snapshots nominally due every tick, but no hook to receive them:
  // the null-hook short-circuit must skip the whole snapshot block, so
  // neither counter moves (a "skip" implies a consumer existed).
  Sup.setSnapshotHook(nullptr, nullptr, /*EveryTicks=*/1);
  TenantId T = Sup.openTenant("t");
  ASSERT_NE(T, NoTenant);
  for (int I = 0; I < 4; ++I)
    Sup.tick();
  EXPECT_EQ(Sup.stats().SnapshotsEmitted, 0u);
  EXPECT_EQ(Sup.stats().SnapshotsSkipped, 0u);
}

TEST(ServiceTelemetryTest, DrainIntervalIsAdjustable) {
  Supervisor Sup(quietService(1));
  EXPECT_EQ(Sup.drainInterval(), 60'000'000u);
  Sup.setDrainInterval(1234);
  EXPECT_EQ(Sup.drainInterval(), 1234u);
  Sup.setDrainInterval(0);
  EXPECT_EQ(Sup.drainInterval(), 2000u) << "0 clamps to the default";
}

//===----------------------------------------------------------------------===//
// The effsan_service_* C ABI (since 1.5)
//===----------------------------------------------------------------------===//

TEST(ServiceAbiTest, VersionCarriesTheServiceAdditions) {
  EXPECT_EQ(EFFSAN_ABI_VERSION_MAJOR, 1);
  EXPECT_GE(EFFSAN_ABI_VERSION_MINOR, 5);
  EXPECT_EQ(effsan_abi_version(), uint32_t(EFFSAN_ABI_VERSION));
}

TEST(ServiceAbiTest, SessionPolicyIsSettable) {
  effsan_options Opts;
  effsan_options_init(&Opts);
  Opts.log_errors = 0;
  effsan_session *S = effsan_session_create(&Opts);
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(effsan_session_policy(S), uint32_t(EFFSAN_POLICY_FULL));
  effsan_session_set_policy(S, EFFSAN_POLICY_BOUNDS_ONLY);
  EXPECT_EQ(effsan_session_policy(S),
            uint32_t(EFFSAN_POLICY_BOUNDS_ONLY));
  effsan_session_destroy(S);
}

TEST(ServiceAbiTest, TenantLifecycleRoundTrip) {
  effsan_service_options Opts;
  effsan_service_options_init(&Opts);
  Opts.shards = 2;
  Opts.log_errors = 0;
  Opts.drain_interval_usec = 60'000'000;
  effsan_service *Svc = effsan_service_create(&Opts);
  ASSERT_NE(Svc, nullptr);
  EXPECT_EQ(effsan_service_num_shards(Svc), 2u);

  effsan_tenant_quota Quota;
  effsan_tenant_quota_init(&Quota);
  Quota.max_alloc_bytes = 4096;
  effsan_tenant T = effsan_service_tenant_open(Svc, "abi", &Quota);
  ASSERT_NE(T, EFFSAN_NO_TENANT);

  // First checkout passes the gate; allocate past the live-byte budget
  // and keep it live (and the checkout outstanding, so the eviction
  // cannot recycle the slot while we inspect it).
  effsan_session *S = effsan_service_checkout(Svc, T);
  ASSERT_NE(S, nullptr);
  effsan_type CharTy = effsan_type_primitive(S, EFFSAN_PRIM_CHAR);
  void *P = effsan_malloc(S, 8192, CharTy);
  ASSERT_NE(P, nullptr);
  effsan_bounds B = effsan_bounds_get(S, P);
  effsan_bounds_check(S, static_cast<char *>(P) + 8192, 1, B);
  EXPECT_EQ(effsan_service_tick(Svc), 1u) << "drains the bounds event";

  EXPECT_EQ(effsan_service_checkout(Svc, T), nullptr)
      << "8 KiB live against a 4 KiB budget";

  effsan_tenant_stats TS;
  std::memset(&TS, 0, sizeof(TS));
  TS.struct_size = sizeof(TS);
  ASSERT_NE(effsan_service_tenant_stats(Svc, T, &TS), 0);
  EXPECT_EQ(TS.status, uint32_t(EFFSAN_TENANT_EVICTED));
  EXPECT_EQ(TS.evict_reason, uint32_t(EFFSAN_EVICT_ALLOC_BYTES));
  EXPECT_EQ(TS.checkouts_granted, 1u);
  EXPECT_EQ(TS.checkouts_refused, 1u);
  EXPECT_EQ(TS.checkouts_outstanding, 1u);
  EXPECT_EQ(TS.error_events, 1u);

  effsan_free(S, P);
  ASSERT_NE(effsan_service_release(Svc, T), 0);
  EXPECT_EQ(effsan_service_release(Svc, T), 0) << "nothing left to return";
  effsan_service_tick(Svc);
  EXPECT_EQ(effsan_service_tenant_stats(Svc, T, &TS), 0)
      << "slot recycled; handle stale";

  effsan_service_stats SS;
  std::memset(&SS, 0, sizeof(SS));
  SS.struct_size = sizeof(SS);
  effsan_service_get_stats(Svc, &SS);
  EXPECT_EQ(SS.tenants_opened_total, 1u);
  EXPECT_EQ(SS.tenants_evicted, 1u);
  EXPECT_EQ(SS.tenants_closed, 1u);
  EXPECT_EQ(SS.checkouts_granted, 1u);
  EXPECT_EQ(SS.checkouts_refused, 1u);
  EXPECT_EQ(SS.drained_events, 1u);
  EXPECT_EQ(SS.issues_found, 1u);

  effsan_service_destroy(Svc);
}

TEST(ServiceAbiTest, StatsPrefixContractOldAndNewCallers) {
  effsan_service_options Opts;
  effsan_service_options_init(&Opts);
  Opts.shards = 1;
  Opts.log_errors = 0;
  Opts.drain_interval_usec = 60'000'000;
  effsan_service *Svc = effsan_service_create(&Opts);
  ASSERT_NE(Svc, nullptr);
  effsan_tenant T = effsan_service_tenant_open(Svc, "t", nullptr);
  ASSERT_NE(T, EFFSAN_NO_TENANT);

  // An "old caller" built against a shorter struct: only the declared
  // prefix may be written.
  constexpr size_t Prefix = offsetof(effsan_service_stats, drain_ticks);
  alignas(effsan_service_stats) unsigned char Buf[sizeof(
      effsan_service_stats)];
  std::memset(Buf, 0xAB, sizeof(Buf));
  auto *Short = reinterpret_cast<effsan_service_stats *>(Buf);
  Short->struct_size = Prefix;
  effsan_service_get_stats(Svc, Short);
  EXPECT_EQ(Short->struct_size, Prefix);
  EXPECT_EQ(Short->tenants_open, 1u);
  for (size_t I = Prefix; I < sizeof(Buf); ++I)
    ASSERT_EQ(Buf[I], 0xAB) << "byte past the declared prefix at " << I;

  // A "future caller" with a larger struct: the unknown tail must read
  // as zero, never as stack garbage.
  alignas(effsan_service_stats) unsigned char Big[sizeof(
      effsan_service_stats) + 32];
  std::memset(Big, 0xCD, sizeof(Big));
  auto *Future = reinterpret_cast<effsan_service_stats *>(Big);
  Future->struct_size = sizeof(Big);
  effsan_service_get_stats(Svc, Future);
  EXPECT_EQ(Future->tenants_open, 1u);
  for (size_t I = sizeof(effsan_service_stats); I < sizeof(Big); ++I)
    ASSERT_EQ(Big[I], 0u) << "future-field byte at " << I;

  effsan_service_destroy(Svc);
}

TEST(ServiceAbiTest, GovernorEwmaTicksOptionReachesTheLadder) {
  // Same alternating hot/idle stream as the C++ EWMA test, driven
  // through the 1.6 option: with governor_ewma_ticks = 3 the smoothed
  // signal stays pressured across the idle tick and the shard degrades
  // (raw per-tick deltas — the 1.5 default of 0 — would flap forever).
  effsan_service_options Opts;
  effsan_service_options_init(&Opts);
  EXPECT_EQ(Opts.governor_ewma_ticks, 0u) << "smoothing is opt-in";
  Opts.shards = 1;
  Opts.log_errors = 0;
  Opts.drain_interval_usec = 60'000'000;
  Opts.check_rate_high = 100;
  Opts.degrade_ticks = 2;
  Opts.governor_ewma_ticks = 3;
  effsan_service *Svc = effsan_service_create(&Opts);
  ASSERT_NE(Svc, nullptr);

  effsan_tenant T = effsan_service_tenant_open(Svc, "hot", nullptr);
  ASSERT_NE(T, EFFSAN_NO_TENANT);
  effsan_session *S = effsan_service_checkout(Svc, T);
  ASSERT_NE(S, nullptr);
  effsan_type IntTy = effsan_type_primitive(S, EFFSAN_PRIM_INT);
  void *P = effsan_malloc(S, sizeof(int), IntTy);

  for (int I = 0; I < 400; ++I)
    effsan_bounds_get(S, P);
  effsan_service_tick(Svc); // Seeds the EWMA at 400: pressured.
  effsan_service_tick(Svc); // Idle tick smooths to 200: still pressured.

  effsan_service_stats SS;
  std::memset(&SS, 0, sizeof(SS));
  SS.struct_size = sizeof(SS);
  effsan_service_get_stats(Svc, &SS);
  EXPECT_EQ(SS.policy_degrades, 1u);

  effsan_tenant_stats TS;
  std::memset(&TS, 0, sizeof(TS));
  TS.struct_size = sizeof(TS);
  ASSERT_NE(effsan_service_tenant_stats(Svc, T, &TS), 0);
  EXPECT_EQ(TS.policy, uint32_t(EFFSAN_POLICY_BOUNDS_ONLY));

  effsan_free(S, P);
  effsan_service_release(Svc, T);
  effsan_service_destroy(Svc);
}

TEST(ServiceAbiTest, StatsCarrySkippedSnapshots) {
  static std::atomic<unsigned> Fired{0};
  Fired = 0;

  effsan_service_options Opts;
  effsan_service_options_init(&Opts);
  Opts.shards = 1;
  Opts.log_errors = 0;
  Opts.drain_interval_usec = 60'000'000;
  effsan_service *Svc = effsan_service_create(&Opts);
  ASSERT_NE(Svc, nullptr);
  effsan_service_set_snapshot_hook(
      Svc, [](const char *, void *) { ++Fired; }, nullptr,
      /*every_ticks=*/1);

  effsan_tenant T = effsan_service_tenant_open(Svc, "t", nullptr);
  ASSERT_NE(T, EFFSAN_NO_TENANT);
  effsan_service_tick(Svc); // Emits (first snapshot).
  effsan_service_tick(Svc); // Identical signature: skipped.
  effsan_service_tick(Svc); // Skipped again.
  EXPECT_EQ(Fired, 1u);

  effsan_service_stats SS;
  std::memset(&SS, 0, sizeof(SS));
  SS.struct_size = sizeof(SS);
  effsan_service_get_stats(Svc, &SS);
  EXPECT_EQ(SS.snapshots_emitted, 1u);
  EXPECT_EQ(SS.snapshots_skipped, 2u);

  effsan_service_destroy(Svc);
}

TEST(ServiceAbiTest, StaleHandlesFailClosed) {
  effsan_service_options Opts;
  effsan_service_options_init(&Opts);
  Opts.shards = 1;
  Opts.log_errors = 0;
  effsan_service *Svc = effsan_service_create(&Opts);
  ASSERT_NE(Svc, nullptr);

  EXPECT_EQ(effsan_service_checkout(Svc, EFFSAN_NO_TENANT), nullptr);
  EXPECT_EQ(effsan_service_release(Svc, EFFSAN_NO_TENANT), 0);
  EXPECT_EQ(effsan_service_tenant_close(Svc, EFFSAN_NO_TENANT), 0);

  effsan_tenant T = effsan_service_tenant_open(Svc, "t", nullptr);
  ASSERT_NE(effsan_service_tenant_close(Svc, T), 0);
  EXPECT_EQ(effsan_service_tenant_close(Svc, T), 0) << "already recycled";
  EXPECT_EQ(effsan_service_checkout(Svc, T), nullptr);
  effsan_tenant_quota Quota;
  EXPECT_EQ(effsan_service_quota_get(Svc, T, &Quota), 0);

  effsan_service_destroy(Svc);
}

//===----------------------------------------------------------------------===//
// Drain-vs-mutator storm (the CI TSan job's main service target)
//===----------------------------------------------------------------------===//

TEST(ServiceStormTest, ConcurrentTenantsDrainerAndGovernor) {
  ServiceOptions Options;
  Options.Shards = 4;
  Options.Reporter.Mode = ReportMode::Count;
  Options.DrainIntervalMicros = 200; // Aggressive background ticks.
  Options.Governor = testGovernor();
  Supervisor Sup(Options);

  constexpr int Threads = 4;
  constexpr int Iters = 2000;
  std::vector<TenantId> Ids(Threads);
  for (int I = 0; I < Threads; ++I) {
    Ids[I] = Sup.openTenant("storm-" + std::to_string(I));
    ASSERT_NE(Ids[I], NoTenant);
  }

  std::vector<std::thread> Workers;
  for (int W = 0; W < Threads; ++W) {
    Workers.emplace_back([&, W] {
      TenantId Id = Ids[W];
      for (int I = 0; I < Iters; ++I) {
        Supervisor::Lease L = Sup.lease(Id);
        ASSERT_TRUE(static_cast<bool>(L)) << "unlimited quota";
        TypeContext &Ctx = L->types();
        auto *P = static_cast<int *>(
            L->malloc(16 * sizeof(int), Ctx.getInt()));
        Bounds B = L->boundsGet(P);
        L->boundsCheck(P + (I % 16), sizeof(int), B);
        if (I % 64 == 0)
          L->boundsCheck(P + 16, sizeof(int), B); // One error event.
        L->free(P);
      }
    });
  }
  // The supervisor's API races the storm: telemetry, quota edits, and
  // interval changes from the main thread.
  for (int I = 0; I < 20; ++I) {
    (void)Sup.snapshotJson();
    (void)Sup.stats();
    TenantQuota Quota;
    Quota.MaxChecks = 0;
    Sup.setQuota(Ids[0], Quota);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (std::thread &W : Workers)
    W.join();

  uint64_t Drained = Sup.tick();
  (void)Drained;
  ServiceStats S = Sup.stats();
  EXPECT_EQ(S.LeasesGranted, uint64_t(Threads) * Iters);
  EXPECT_EQ(S.LeasesRefused, 0u);
  // Conservation: every event that entered the ring reached the
  // central reporter — background-drained or (when the 200 us cadence
  // lost a burst to a full ring) via the locked fallback — never
  // dropped. The absolute count is NOT Threads * (Iters / 64): once
  // the aggressive test governor walks a shard down to CountOnly, its
  // deliberate out-of-bounds checks legitimately stop reporting, and
  // how many were suppressed is a race by design here.
  EXPECT_EQ(Sup.pool().reporter().numEvents(),
            S.DrainedEvents + S.RingOverflows);
  EXPECT_GT(S.DrainedEvents + S.RingOverflows, 0u)
      << "the storm starts at Full: pre-degradation errors must land";
  EXPECT_GE(S.IssuesFound, 1u);

  TenantSnapshot Snap;
  uint64_t Attributed = 0;
  for (TenantId Id : Ids) {
    ASSERT_TRUE(Sup.tenantSnapshot(Id, Snap));
    Attributed += Snap.ErrorEvents;
  }
  EXPECT_EQ(Attributed, S.DrainedEvents)
      << "every drained event was billed to exactly one tenant";
}

} // namespace
