//===- tests/support_test.cpp - Support library tests ---------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Unit coverage for the support layer: arena allocation/alignment and
/// string interning, hashing, string formatting, and the diagnostic
/// engine.
///
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/Hashing.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>

using namespace effective;

//===----------------------------------------------------------------------===//
// Arena
//===----------------------------------------------------------------------===//

TEST(Arena, RespectsAlignment) {
  Arena A;
  for (size_t Align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    void *P = A.allocate(3, Align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % Align, 0u) << Align;
  }
}

TEST(Arena, AllocationsDoNotOverlap) {
  Arena A(128); // Tiny slabs force slab growth.
  std::set<uintptr_t> Seen;
  for (int I = 0; I < 200; ++I) {
    char *P = static_cast<char *>(A.allocate(16, 8));
    std::memset(P, I & 0xff, 16);
    for (uintptr_t B = reinterpret_cast<uintptr_t>(P);
         B < reinterpret_cast<uintptr_t>(P) + 16; ++B)
      EXPECT_TRUE(Seen.insert(B).second) << "overlap at iteration " << I;
  }
}

TEST(Arena, LargeAllocationExceedingSlabSize) {
  Arena A(64);
  void *P = A.allocate(4096, 16);
  std::memset(P, 0xab, 4096); // Must be fully usable.
  EXPECT_NE(P, nullptr);
}

TEST(Arena, InternStringIsStableAndIndependent) {
  Arena A;
  std::string Source = "hello world";
  std::string_view V = A.internString(Source);
  Source[0] = 'X'; // The intern must not alias the original.
  EXPECT_EQ(V, "hello world");
  EXPECT_EQ(A.internString(""), std::string_view());
}

TEST(Arena, CreateRunsConstructors) {
  Arena A;
  struct Node {
    int X;
    double Y;
    Node(int X, double Y) : X(X), Y(Y) {}
  };
  Node *N = A.create<Node>(3, 1.5);
  EXPECT_EQ(N->X, 3);
  EXPECT_DOUBLE_EQ(N->Y, 1.5);
}

//===----------------------------------------------------------------------===//
// Hashing
//===----------------------------------------------------------------------===//

TEST(Hashing, MixSpreadsNearbyValues) {
  std::set<uint64_t> Hashes;
  for (uint64_t I = 0; I < 1000; ++I)
    Hashes.insert(hashMix(I));
  EXPECT_EQ(Hashes.size(), 1000u); // No collisions on a small range.
}

TEST(Hashing, CombineIsOrderSensitive) {
  uint64_t AB = hashCombine(hashMix(1), 2);
  uint64_t BA = hashCombine(hashMix(2), 1);
  EXPECT_NE(AB, BA);
}

//===----------------------------------------------------------------------===//
// String utilities
//===----------------------------------------------------------------------===//

TEST(StringUtils, FormatString) {
  EXPECT_EQ(formatString("%d-%s", 42, "x"), "42-x");
  // Results longer than any internal stack buffer.
  std::string Long(500, 'a');
  EXPECT_EQ(formatString("%s", Long.c_str()), Long);
}

TEST(StringUtils, ThousandsSeparators) {
  EXPECT_EQ(withThousandsSep(0), "0");
  EXPECT_EQ(withThousandsSep(999), "999");
  EXPECT_EQ(withThousandsSep(1000), "1,000");
  EXPECT_EQ(withThousandsSep(1234567), "1,234,567");
}

TEST(StringUtils, FormatBytes) {
  EXPECT_EQ(formatBytes(512), "512 B");
  EXPECT_NE(formatBytes(1536).find("KB"), std::string::npos);
  EXPECT_NE(formatBytes(3u << 20).find("MB"), std::string::npos);
}

TEST(StringUtils, StartsWith) {
  EXPECT_TRUE(startsWith("type_check", "type"));
  EXPECT_FALSE(startsWith("type", "type_check"));
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(Diagnostics, CountsOnlyErrors) {
  DiagnosticEngine D;
  D.warning(SourceLoc{1, 1}, "w");
  D.note(SourceLoc{1, 2}, "n");
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLoc{2, 1}, "e");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.diagnostics().size(), 3u);
}

TEST(Diagnostics, ContainsMessage) {
  DiagnosticEngine D;
  D.error(SourceLoc{1, 1}, "no member named 'balance'");
  EXPECT_TRUE(D.containsMessage("balance"));
  EXPECT_FALSE(D.containsMessage("missing"));
}

//===----------------------------------------------------------------------===//
// Casting
//===----------------------------------------------------------------------===//

namespace {

struct Animal {
  enum Kind { DogKind, CatKind } K;
  explicit Animal(Kind K) : K(K) {}
};
struct Dog : Animal {
  Dog() : Animal(DogKind) {}
  static bool classof(const Animal *A) { return A->K == DogKind; }
};
struct Cat : Animal {
  Cat() : Animal(CatKind) {}
  static bool classof(const Animal *A) { return A->K == CatKind; }
};

} // namespace

TEST(Casting, IsaCastDynCast) {
  Dog D;
  Animal *A = &D;
  EXPECT_TRUE(isa<Dog>(A));
  EXPECT_FALSE(isa<Cat>(A));
  EXPECT_TRUE((isa<Cat, Dog>(A))); // Multi-type isa.
  EXPECT_EQ(cast<Dog>(A), &D);
  EXPECT_EQ(dyn_cast<Cat>(A), nullptr);
  EXPECT_EQ(dyn_cast_if_present<Dog>(static_cast<Animal *>(nullptr)),
            nullptr);
  EXPECT_FALSE(isa_and_present<Dog>(static_cast<Animal *>(nullptr)));
}
