//===- tests/verifier_test.cpp - IR verifier + reporter negative paths ----===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Negative-path coverage: the IR verifier must reject each class of
/// malformed module (these guard against instrumentation-pass bugs),
/// and the error reporter's modes must behave (bucketing, counting vs
/// logging, abort-after-N).
///
//===----------------------------------------------------------------------===//

#include "core/ErrorReporter.h"
#include "core/TypeContext.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace effective;
using namespace effective::ir;

namespace {

/// A minimal well-formed function: entry block with `ret %r0` after a
/// constant, to mutate into invalid shapes.
struct ModuleFixture {
  TypeContext Types;
  Module M{Types};
  Function *F = nullptr;

  ModuleFixture() {
    F = M.addFunction("f", Types.getInt());
    BlockId B = F->newBlock("entry");
    Instr C;
    C.Op = Opcode::ConstInt;
    C.Dst = F->newReg(Types.getInt());
    C.Type = Types.getInt();
    C.Imm = 7;
    F->Blocks[B].Instrs.push_back(C);
    Instr R;
    R.Op = Opcode::Ret;
    R.A = C.Dst;
    F->Blocks[B].Instrs.push_back(R);
  }

  bool verify() {
    DiagnosticEngine Diags;
    return verifyModule(M, Diags);
  }

  std::string firstError() {
    DiagnosticEngine Diags;
    verifyModule(M, Diags);
    return Diags.diagnostics().empty() ? ""
                                       : Diags.diagnostics()[0].Message;
  }
};

} // namespace

TEST(Verifier, AcceptsWellFormedModule) {
  ModuleFixture Fx;
  EXPECT_TRUE(Fx.verify());
}

TEST(Verifier, RejectsEmptyFunction) {
  ModuleFixture Fx;
  Fx.M.addFunction("empty", Fx.Types.getVoid());
  EXPECT_FALSE(Fx.verify());
  EXPECT_NE(Fx.firstError().find("no blocks"), std::string::npos);
}

TEST(Verifier, RejectsOutOfRangeCheckSite) {
  ModuleFixture Fx;
  // A type_check whose Site was never allocated from the module.
  Instr C;
  C.Op = Opcode::TypeCheck;
  C.A = 0;
  C.BDst = Fx.F->newBReg();
  C.Type = Fx.Types.getPointer(Fx.Types.getInt());
  C.Site = 3; // Module has allocated no sites.
  Fx.F->Blocks[0].Instrs.insert(Fx.F->Blocks[0].Instrs.end() - 1, C);
  EXPECT_FALSE(Fx.verify());
  EXPECT_NE(Fx.firstError().find("site id out of range"),
            std::string::npos);

  // Allocating the ids makes the same instruction well-formed; NoSite
  // (hand-built IR) is always accepted.
  for (int I = 0; I < 4; ++I)
    Fx.M.newCheckSite();
  EXPECT_TRUE(Fx.verify());
}

TEST(Verifier, RejectsMissingTerminator) {
  ModuleFixture Fx;
  Fx.F->Blocks[0].Instrs.pop_back(); // Drop the ret.
  EXPECT_FALSE(Fx.verify());
  EXPECT_NE(Fx.firstError().find("terminator"), std::string::npos);
}

TEST(Verifier, RejectsTerminatorMidBlock) {
  ModuleFixture Fx;
  Instr R;
  R.Op = Opcode::Ret;
  R.A = 0;
  Fx.F->Blocks[0].Instrs.insert(Fx.F->Blocks[0].Instrs.begin(), R);
  EXPECT_FALSE(Fx.verify());
}

TEST(Verifier, RejectsOutOfRangeRegister) {
  ModuleFixture Fx;
  Fx.F->Blocks[0].Instrs[1].A = 999; // ret of an undefined register.
  EXPECT_FALSE(Fx.verify());
  EXPECT_NE(Fx.firstError().find("register"), std::string::npos);
}

TEST(Verifier, RejectsBranchToNowhere) {
  ModuleFixture Fx;
  Instr &Ret = Fx.F->Blocks[0].Instrs[1];
  Ret.Op = Opcode::Br;
  Ret.Target0 = 42;
  EXPECT_FALSE(Fx.verify());
  EXPECT_NE(Fx.firstError().find("nonexistent block"), std::string::npos);
}

TEST(Verifier, RejectsFieldIndexOutOfRange) {
  ModuleFixture Fx;
  RecordType *R = Fx.Types.createRecord(TypeKind::Struct, "r");
  FieldInfo Fields[] = {{"x", Fx.Types.getInt(), 0, false}};
  Fx.Types.defineRecord(R, Fields, 4, 4);

  Instr FA;
  FA.Op = Opcode::FieldAddr;
  FA.Dst = Fx.F->newReg(Fx.Types.getPointer(Fx.Types.getInt()));
  FA.A = 0;
  FA.Type = R;
  FA.Imm = 5; // Only one field.
  Fx.F->Blocks[0].Instrs.insert(Fx.F->Blocks[0].Instrs.begin() + 1, FA);
  EXPECT_FALSE(Fx.verify());
  EXPECT_NE(Fx.firstError().find("field index"), std::string::npos);
}

TEST(Verifier, RejectsCalleeOutOfRange) {
  ModuleFixture Fx;
  Instr Call;
  Call.Op = Opcode::Call;
  Call.Imm = 9; // No such function.
  Fx.F->Blocks[0].Instrs.insert(Fx.F->Blocks[0].Instrs.begin() + 1, Call);
  EXPECT_FALSE(Fx.verify());
  EXPECT_NE(Fx.firstError().find("callee"), std::string::npos);
}

TEST(Verifier, RejectsArgumentCountMismatch) {
  ModuleFixture Fx;
  Function *G = Fx.M.addFunction("g", Fx.Types.getVoid());
  Param P;
  P.Name = "x";
  P.Type = Fx.Types.getInt();
  P.R = G->newReg(Fx.Types.getInt());
  G->Params.push_back(P);
  BlockId B = G->newBlock("entry");
  Instr R;
  R.Op = Opcode::Ret;
  G->Blocks[B].Instrs.push_back(R);

  Instr Call;
  Call.Op = Opcode::Call;
  Call.Imm = Fx.M.indexOf(G);
  // No arguments for a one-parameter function.
  Fx.F->Blocks[0].Instrs.insert(Fx.F->Blocks[0].Instrs.begin() + 1, Call);
  EXPECT_FALSE(Fx.verify());
  EXPECT_NE(Fx.firstError().find("argument count"), std::string::npos);
}

TEST(Verifier, RejectsCheckWithoutBoundsRegister) {
  ModuleFixture Fx;
  Instr TC;
  TC.Op = Opcode::TypeCheck;
  TC.A = 0;
  TC.Type = Fx.Types.getInt();
  TC.BDst = NoBReg; // Missing destination.
  Fx.F->Blocks[0].Instrs.insert(Fx.F->Blocks[0].Instrs.begin() + 1, TC);
  EXPECT_FALSE(Fx.verify());
  EXPECT_NE(Fx.firstError().find("bounds register"), std::string::npos);
}

TEST(Verifier, RejectsMissingReturnValue) {
  ModuleFixture Fx;
  Fx.F->Blocks[0].Instrs[1].A = NoReg; // int function returning nothing.
  EXPECT_FALSE(Fx.verify());
  EXPECT_NE(Fx.firstError().find("return value"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Error reporter modes
//===----------------------------------------------------------------------===//

namespace {

ErrorInfo typeError(int64_t Offset) {
  ErrorInfo Info;
  Info.Kind = ErrorKind::TypeError;
  Info.Offset = Offset;
  return Info;
}

} // namespace

TEST(Reporter, BucketsByKindAndOffset) {
  ReporterOptions Opts;
  Opts.Mode = ReportMode::Count;
  ErrorReporter R(Opts);
  R.report(typeError(4));
  R.report(typeError(4)); // Same bucket.
  R.report(typeError(8)); // New bucket.
  ErrorInfo Uaf;
  Uaf.Kind = ErrorKind::UseAfterFree;
  Uaf.Offset = 4;
  R.report(Uaf); // Different kind: new bucket.
  EXPECT_EQ(R.numIssues(), 3u);
  EXPECT_EQ(R.numEvents(), 4u);
  EXPECT_EQ(R.numIssues(ErrorKind::TypeError), 2u);
  EXPECT_EQ(R.numIssues(ErrorKind::UseAfterFree), 1u);
}

TEST(Reporter, CountingModeWritesNothing) {
  // Stream null + Count mode: pure counting, as used for Figure 8.
  ReporterOptions Opts;
  Opts.Mode = ReportMode::Count;
  Opts.Stream = nullptr;
  ErrorReporter R(Opts);
  for (int I = 0; I < 1000; ++I)
    R.report(typeError(I % 10));
  EXPECT_EQ(R.numIssues(), 10u);
  EXPECT_EQ(R.numEvents(), 1000u);
}

TEST(Reporter, ClearResets) {
  ReporterOptions Opts;
  Opts.Mode = ReportMode::Count;
  ErrorReporter R(Opts);
  R.report(typeError(0));
  R.clear();
  EXPECT_EQ(R.numIssues(), 0u);
  EXPECT_EQ(R.numEvents(), 0u);
}

TEST(ReporterDeathTest, AbortAfterNErrors) {
  ReporterOptions Opts;
  Opts.Mode = ReportMode::Count;
  Opts.Stream = nullptr;
  Opts.AbortAfter = 3;
  ErrorReporter R(Opts);
  R.report(typeError(1));
  R.report(typeError(2));
  EXPECT_DEATH(R.report(typeError(3)), "");
}
