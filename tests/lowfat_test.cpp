//===- tests/lowfat_test.cpp - Low-fat allocator unit tests ---------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lowfat/GlobalPool.h"
#include "lowfat/LowFatHeap.h"
#include "lowfat/SizeClass.h"
#include "lowfat/StackPool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <thread>
#include <vector>

using namespace effective;
using namespace effective::lowfat;

//===----------------------------------------------------------------------===//
// Size classes
//===----------------------------------------------------------------------===//

TEST(SizeClassTest, TableIsAscendingAndBounded) {
  EXPECT_EQ(SizeClasses.front().Size, MinClassSize);
  EXPECT_EQ(SizeClasses.back().Size, MaxClassSize);
  for (unsigned I = 1; I < NumSizeClasses; ++I) {
    EXPECT_LT(SizeClasses[I - 1].Size, SizeClasses[I].Size)
        << "class " << I;
  }
}

TEST(SizeClassTest, PowersOfTwoAndMidpoints) {
  EXPECT_EQ(classSize(0), 32u);
  EXPECT_EQ(classSize(1), 48u);
  EXPECT_EQ(classSize(2), 64u);
  EXPECT_EQ(classSize(3), 96u);
  EXPECT_EQ(classSize(4), 128u);
}

TEST(SizeClassTest, SizeToClassReturnsSmallestFit) {
  for (size_t Bytes : {1u, 31u, 32u}) {
    EXPECT_EQ(sizeToClass(Bytes), 0u) << Bytes;
  }
  EXPECT_EQ(sizeToClass(33), 1u);
  EXPECT_EQ(sizeToClass(48), 1u);
  EXPECT_EQ(sizeToClass(49), 2u);
  EXPECT_EQ(sizeToClass(64), 2u);
  EXPECT_EQ(sizeToClass(65), 3u);
  EXPECT_EQ(sizeToClass(MaxClassSize), NumSizeClasses - 1);
}

TEST(SizeClassTest, SizeToClassIsExhaustivelyConsistent) {
  std::mt19937_64 Rng(42);
  for (int I = 0; I < 20000; ++I) {
    size_t Bytes = Rng() % MaxClassSize + 1;
    unsigned C = sizeToClass(Bytes);
    EXPECT_GE(classSize(C), Bytes);
    if (C > 0) {
      EXPECT_LT(classSize(C - 1), Bytes);
    }
  }
}

TEST(SizeClassTest, InternalFragmentationBounded) {
  // The 1.5x midpoint scheme wastes at most 50% (size 2^k+1 maps to
  // 1.5*2^k, i.e. < 1.5x the request).
  std::mt19937_64 Rng(7);
  for (int I = 0; I < 10000; ++I) {
    size_t Bytes = Rng() % MaxClassSize + 1;
    if (Bytes < MinClassSize)
      continue;
    EXPECT_LE(classSize(sizeToClass(Bytes)), Bytes + Bytes / 2)
        << "request " << Bytes;
  }
}

TEST(SizeClassTest, ClassModuloMatchesDivision) {
  std::mt19937_64 Rng(123);
  for (unsigned C = 0; C < NumSizeClasses; ++C) {
    for (int I = 0; I < 200; ++I) {
      uint64_t Offset = Rng() % (1ull << 38);
      EXPECT_EQ(classModulo(C, Offset), Offset % classSize(C))
          << "class " << C << " offset " << Offset;
    }
  }
}

//===----------------------------------------------------------------------===//
// LowFatHeap
//===----------------------------------------------------------------------===//

namespace {

class LowFatHeapTest : public ::testing::Test {
protected:
  LowFatHeap Heap;
};

} // namespace

TEST_F(LowFatHeapTest, AllocateGivesLowFatPointer) {
  void *P = Heap.allocate(100);
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(Heap.isLowFat(P));
  EXPECT_EQ(Heap.allocationBase(P), P);
  EXPECT_GE(Heap.allocationSize(P), 100u);
  Heap.deallocate(P);
}

TEST_F(LowFatHeapTest, InteriorPointersResolveToBase) {
  char *P = static_cast<char *>(Heap.allocate(100));
  size_t Size = Heap.allocationSize(P);
  for (size_t Off : {size_t(1), size_t(50), size_t(99), Size - 1}) {
    EXPECT_TRUE(Heap.isLowFat(P + Off)) << Off;
    EXPECT_EQ(Heap.allocationBase(P + Off), P) << Off;
    EXPECT_EQ(Heap.allocationSize(P + Off), Size) << Off;
  }
  Heap.deallocate(P);
}

TEST_F(LowFatHeapTest, LegacyPointersReportWide) {
  int Local = 0;
  EXPECT_FALSE(Heap.isLowFat(&Local));
  EXPECT_EQ(Heap.allocationSize(&Local), SIZE_MAX);
  EXPECT_EQ(Heap.allocationBase(&Local), nullptr);
  EXPECT_FALSE(Heap.isLowFat(nullptr));
}

TEST_F(LowFatHeapTest, OversizedRequestsFallBackToLegacy) {
  void *P = Heap.allocate(MaxClassSize + 1);
  ASSERT_NE(P, nullptr);
  EXPECT_FALSE(Heap.isLowFat(P));
  EXPECT_EQ(Heap.stats().NumLegacyAllocs, 1u);
  std::memset(P, 0xab, MaxClassSize + 1); // Must be usable.
  Heap.deallocate(P);
  EXPECT_EQ(Heap.stats().NumFrees, 1u);
}

TEST_F(LowFatHeapTest, DistinctAllocationsDoNotOverlap) {
  std::vector<char *> Ptrs;
  for (int I = 0; I < 64; ++I)
    Ptrs.push_back(static_cast<char *>(Heap.allocate(48)));
  std::sort(Ptrs.begin(), Ptrs.end());
  for (size_t I = 1; I < Ptrs.size(); ++I)
    EXPECT_GE(Ptrs[I] - Ptrs[I - 1], 48) << I;
  for (char *P : Ptrs)
    Heap.deallocate(P);
}

TEST_F(LowFatHeapTest, FreePreservesFirstSixteenBytes) {
  // The META header (16 bytes) must survive free until reallocation
  // (Section 5 of the paper).
  char *P = static_cast<char *>(Heap.allocate(64));
  std::memset(P, 0x5a, 64);
  Heap.deallocate(P);
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(static_cast<unsigned char>(P[I]), 0x5a) << "byte " << I;
}

TEST_F(LowFatHeapTest, FreeListReusesBlocks) {
  void *P = Heap.allocate(64);
  Heap.deallocate(P);
  void *Q = Heap.allocate(64);
  EXPECT_EQ(P, Q) << "LIFO free list should reuse the freed block";
  Heap.deallocate(Q);
}

TEST_F(LowFatHeapTest, QuarantineDelaysReuse) {
  LowFatHeap QHeap(HeapOptions{1ull << 29, /*QuarantineBytes=*/1 << 20});
  void *P = QHeap.allocate(64);
  QHeap.deallocate(P);
  void *Q = QHeap.allocate(64);
  EXPECT_NE(P, Q) << "quarantined block must not be reused immediately";
  EXPECT_GT(QHeap.stats().QuarantinedBytes, 0u);
}

TEST_F(LowFatHeapTest, QuarantineEvictsWhenOverBudget) {
  LowFatHeap QHeap(HeapOptions{1ull << 29, /*QuarantineBytes=*/256});
  std::vector<void *> Ptrs;
  for (int I = 0; I < 16; ++I)
    Ptrs.push_back(QHeap.allocate(64));
  for (void *P : Ptrs)
    QHeap.deallocate(P);
  EXPECT_LE(QHeap.stats().QuarantinedBytes, 256u + 96u);
}

TEST_F(LowFatHeapTest, StatsTrackPeaks) {
  HeapStats Before = Heap.stats();
  void *A = Heap.allocate(1000);
  void *B = Heap.allocate(2000);
  HeapStats During = Heap.stats();
  EXPECT_GT(During.BlockBytesInUse, Before.BlockBytesInUse);
  Heap.deallocate(A);
  Heap.deallocate(B);
  HeapStats After = Heap.stats();
  EXPECT_EQ(After.BlockBytesInUse, Before.BlockBytesInUse);
  EXPECT_GE(After.PeakBlockBytesInUse, During.BlockBytesInUse);
  EXPECT_EQ(After.NumAllocs, Before.NumAllocs + 2);
  EXPECT_EQ(After.NumFrees, Before.NumFrees + 2);
}

TEST_F(LowFatHeapTest, PointerBeyondBumpIsLegacy) {
  char *P = static_cast<char *>(Heap.allocate(64));
  size_t Class = Heap.allocationSize(P);
  // One-past-the-end of the newest block was never allocated.
  EXPECT_FALSE(Heap.isLowFat(P + Class));
  Heap.deallocate(P);
}

namespace {

/// Property sweep: for many sizes, allocation/base/size invariants hold.
class LowFatHeapPropertyTest : public ::testing::TestWithParam<size_t> {
protected:
  static LowFatHeap &heap() {
    static LowFatHeap Heap;
    return Heap;
  }
};

} // namespace

TEST_P(LowFatHeapPropertyTest, BaseAndSizeInvariants) {
  size_t Request = GetParam();
  char *P = static_cast<char *>(heap().allocate(Request));
  ASSERT_NE(P, nullptr);
  ASSERT_TRUE(heap().isLowFat(P));
  size_t Size = heap().allocationSize(P);
  EXPECT_GE(Size, Request);
  EXPECT_EQ(heap().allocationBase(P), P);
  // Interior pointers throughout the block resolve to the same base.
  for (size_t Off = 1; Off < Request; Off = Off * 2 + 1) {
    EXPECT_EQ(heap().allocationBase(P + Off), P) << Off;
    EXPECT_EQ(heap().allocationSize(P + Off), Size) << Off;
  }
  std::memset(P, 0xcd, Request); // The block must be writable.
  heap().deallocate(P);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LowFatHeapPropertyTest,
                         ::testing::Values(1, 16, 31, 32, 33, 48, 63, 64,
                                           100, 256, 1000, 4096, 10000,
                                           1 << 16, (1 << 16) + 1, 1 << 20,
                                           (3 << 19), 1 << 24));

TEST(LowFatHeapThreadTest, ConcurrentAllocFree) {
  LowFatHeap Heap;
  constexpr int NumThreads = 4;
  constexpr int Iterations = 2000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&Heap, T] {
      std::mt19937 Rng(T);
      std::vector<void *> Live;
      for (int I = 0; I < Iterations; ++I) {
        size_t Size = Rng() % 500 + 1;
        void *P = Heap.allocate(Size);
        ASSERT_TRUE(Heap.isLowFat(P));
        ASSERT_EQ(Heap.allocationBase(P), P);
        Live.push_back(P);
        if (Live.size() > 16) {
          Heap.deallocate(Live.front());
          Live.erase(Live.begin());
        }
      }
      for (void *P : Live)
        Heap.deallocate(P);
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Heap.stats().NumAllocs, Heap.stats().NumFrees);
}

//===----------------------------------------------------------------------===//
// Sharded heaps (HeapOptions::NumShards > 1)
//===----------------------------------------------------------------------===//

TEST(ShardedLowFatHeapTest, ShardSlicesAreClassAlignedEverywhere) {
  // For every size class: blocks allocated by different shards must
  // all sit at class-size multiples from the region base, so the
  // base(p)/size(p) arithmetic is shard-blind.
  HeapOptions Options;
  Options.NumShards = 4;
  LowFatHeap Heap(Options);
  ASSERT_EQ(Heap.numShards(), 4u);

  for (unsigned C = 0; C < NumSizeClasses; ++C) {
    size_t Request = classSize(C);
    if (Request > Heap.regionSize())
      break;
    for (unsigned S = 0; S < 4; ++S) {
      char *P = static_cast<char *>(Heap.allocateOnShard(Request, S));
      if (!Heap.isLowFat(P))
        continue; // Class too large for a 4-way split: legacy is fine.
      EXPECT_EQ(Heap.allocationSize(P), Request) << "class " << C;
      EXPECT_EQ(Heap.allocationBase(P), P) << "class " << C;
      EXPECT_EQ(Heap.shardOf(P), S) << "class " << C;
      EXPECT_EQ(Heap.allocationBase(P + Request / 2), P)
          << "interior pointer, class " << C;
      Heap.deallocate(P);
    }
  }
}

TEST(ShardedLowFatHeapTest, CrossShardFreeReturnsToOwningShard) {
  HeapOptions Options;
  Options.NumShards = 2;
  LowFatHeap Heap(Options);
  void *P = Heap.allocateOnShard(64, 1);
  EXPECT_EQ(Heap.shardOf(P), 1u);
  // Freed from "shard 0's thread" (deallocate is shard-blind)...
  Heap.deallocate(P);
  // ...the block must come back to shard 1, not shard 0.
  void *Q0 = Heap.allocateOnShard(64, 0);
  EXPECT_NE(Q0, P) << "shard 0 must not receive shard 1's free block";
  void *Q1 = Heap.allocateOnShard(64, 1);
  EXPECT_EQ(Q1, P) << "shard 1's LIFO free list reuses its own block";
  Heap.deallocate(Q0);
  Heap.deallocate(Q1);
}

TEST(ShardedLowFatHeapTest, ConcurrentShardsWithQuarantine) {
  // The concurrent-use contract: per-shard alloc/free under a live
  // quarantine, with cross-shard base/size queries racing against
  // sibling allocation. No block may ever be handed out twice while
  // live, and freed blocks must respect the quarantine delay.
  constexpr unsigned Threads = 4;
  constexpr int Iterations = 2000;
  HeapOptions Options;
  Options.NumShards = Threads;
  Options.QuarantineBytes = 1 << 15;
  LowFatHeap Heap(Options);

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&Heap, T] {
      std::mt19937 Rng(T);
      std::vector<void *> Live;
      void *LastFreed = nullptr;
      for (int I = 0; I < Iterations; ++I) {
        size_t Size = Rng() % 500 + 1;
        void *P = Heap.allocateOnShard(Size, T);
        ASSERT_TRUE(Heap.isLowFat(P));
        ASSERT_EQ(Heap.allocationBase(P), P);
        ASSERT_EQ(Heap.shardOf(P), T);
        ASSERT_NE(P, LastFreed)
            << "quarantine must delay immediate reuse";
        Live.push_back(P);
        if (Live.size() > 16) {
          LastFreed = Live.front();
          Heap.deallocate(LastFreed);
          Live.erase(Live.begin());
        }
      }
      for (void *P : Live)
        Heap.deallocate(P);
    });
  }
  for (std::thread &T : Workers)
    T.join();
  HeapStats Stats = Heap.stats();
  EXPECT_EQ(Stats.NumAllocs, Stats.NumFrees);
  EXPECT_EQ(Stats.BlockBytesInUse, 0u);
}

TEST(ShardedLowFatHeapTest, ResetShardDropsQuarantineAndFreeLists) {
  HeapOptions Options;
  Options.NumShards = 2;
  Options.QuarantineBytes = 1 << 20;
  LowFatHeap Heap(Options);

  void *A = Heap.allocateOnShard(64, 0);
  void *B = Heap.allocateOnShard(64, 1);
  Heap.deallocate(A); // Parked in shard 0's quarantine.
  ASSERT_GT(Heap.shardStats(0).QuarantinedBytes, 0u);

  Heap.resetShard(0);
  HeapStats S0 = Heap.shardStats(0);
  EXPECT_EQ(S0.QuarantinedBytes, 0u);
  EXPECT_EQ(S0.NumAllocs, 0u);
  EXPECT_EQ(S0.BlockBytesInUse, 0u);
  // Shard 1 untouched; shard 0 serves from the start of its slice.
  EXPECT_TRUE(Heap.isLowFat(B));
  void *A2 = Heap.allocateOnShard(64, 0);
  EXPECT_EQ(A2, A);
  Heap.deallocate(A2);
  Heap.deallocate(B);
}

TEST(ShardedLowFatHeapTest, SingleShardKeepsClassicBehaviour) {
  // NumShards = 1 (the default) must be indistinguishable from the
  // pre-sharding allocator: one slice spanning the region.
  LowFatHeap Heap;
  EXPECT_EQ(Heap.numShards(), 1u);
  void *P = Heap.allocate(100);
  EXPECT_EQ(Heap.shardOf(P), 0u);
  Heap.deallocate(P);
}

//===----------------------------------------------------------------------===//
// StackPool and GlobalPool
//===----------------------------------------------------------------------===//

TEST(StackPoolTest, LifoFrames) {
  LowFatHeap Heap;
  StackPool Stack(Heap);
  size_t Outer = Stack.mark();
  void *A = Stack.allocate(64);
  {
    StackPool::Frame Frame(Stack);
    void *B = Stack.allocate(128);
    EXPECT_TRUE(Heap.isLowFat(B));
    EXPECT_EQ(Stack.liveObjects(), 2u);
  }
  EXPECT_EQ(Stack.liveObjects(), 1u) << "frame exit frees its objects";
  EXPECT_EQ(Heap.allocationBase(A), A) << "outer object still live";
  Stack.release(Outer);
  EXPECT_EQ(Stack.liveObjects(), 0u);
}

TEST(StackPoolTest, BlocksSinceMark) {
  LowFatHeap Heap;
  StackPool Stack(Heap);
  size_t Mark = Stack.mark();
  void *A = Stack.allocate(32);
  void *B = Stack.allocate(32);
  auto Blocks = Stack.blocksSince(Mark);
  ASSERT_EQ(Blocks.size(), 2u);
  EXPECT_EQ(Blocks[0], A);
  EXPECT_EQ(Blocks[1], B);
  Stack.release(Mark);
}

TEST(GlobalPoolTest, RegistersAndLooksUp) {
  LowFatHeap Heap;
  GlobalPool Globals(Heap);
  void *G = Globals.allocate(256, "my_global");
  EXPECT_TRUE(Heap.isLowFat(G));
  EXPECT_EQ(Globals.lookup("my_global"), G);
  EXPECT_EQ(Globals.lookup("missing"), nullptr);
  EXPECT_EQ(Globals.size(), 1u);
}
