//===- tests/lowfat_test.cpp - Low-fat allocator unit tests ---------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lowfat/GlobalPool.h"
#include "lowfat/LowFatHeap.h"
#include "lowfat/SizeClass.h"
#include "lowfat/StackPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

using namespace effective;
using namespace effective::lowfat;

//===----------------------------------------------------------------------===//
// Size classes
//===----------------------------------------------------------------------===//

TEST(SizeClassTest, TableIsAscendingAndBounded) {
  EXPECT_EQ(SizeClasses.front().Size, MinClassSize);
  EXPECT_EQ(SizeClasses.back().Size, MaxClassSize);
  for (unsigned I = 1; I < NumSizeClasses; ++I) {
    EXPECT_LT(SizeClasses[I - 1].Size, SizeClasses[I].Size)
        << "class " << I;
  }
}

TEST(SizeClassTest, PowersOfTwoAndMidpoints) {
  EXPECT_EQ(classSize(0), 32u);
  EXPECT_EQ(classSize(1), 48u);
  EXPECT_EQ(classSize(2), 64u);
  EXPECT_EQ(classSize(3), 96u);
  EXPECT_EQ(classSize(4), 128u);
}

TEST(SizeClassTest, SizeToClassReturnsSmallestFit) {
  for (size_t Bytes : {1u, 31u, 32u}) {
    EXPECT_EQ(sizeToClass(Bytes), 0u) << Bytes;
  }
  EXPECT_EQ(sizeToClass(33), 1u);
  EXPECT_EQ(sizeToClass(48), 1u);
  EXPECT_EQ(sizeToClass(49), 2u);
  EXPECT_EQ(sizeToClass(64), 2u);
  EXPECT_EQ(sizeToClass(65), 3u);
  EXPECT_EQ(sizeToClass(MaxClassSize), NumSizeClasses - 1);
}

TEST(SizeClassTest, SizeToClassIsExhaustivelyConsistent) {
  std::mt19937_64 Rng(42);
  for (int I = 0; I < 20000; ++I) {
    size_t Bytes = Rng() % MaxClassSize + 1;
    unsigned C = sizeToClass(Bytes);
    EXPECT_GE(classSize(C), Bytes);
    if (C > 0) {
      EXPECT_LT(classSize(C - 1), Bytes);
    }
  }
}

TEST(SizeClassTest, InternalFragmentationBounded) {
  // The 1.5x midpoint scheme wastes at most 50% (size 2^k+1 maps to
  // 1.5*2^k, i.e. < 1.5x the request).
  std::mt19937_64 Rng(7);
  for (int I = 0; I < 10000; ++I) {
    size_t Bytes = Rng() % MaxClassSize + 1;
    if (Bytes < MinClassSize)
      continue;
    EXPECT_LE(classSize(sizeToClass(Bytes)), Bytes + Bytes / 2)
        << "request " << Bytes;
  }
}

TEST(SizeClassTest, ClassModuloMatchesDivision) {
  std::mt19937_64 Rng(123);
  for (unsigned C = 0; C < NumSizeClasses; ++C) {
    for (int I = 0; I < 200; ++I) {
      uint64_t Offset = Rng() % (1ull << 38);
      EXPECT_EQ(classModulo(C, Offset), Offset % classSize(C))
          << "class " << C << " offset " << Offset;
    }
  }
}

//===----------------------------------------------------------------------===//
// LowFatHeap
//===----------------------------------------------------------------------===//

namespace {

class LowFatHeapTest : public ::testing::Test {
protected:
  LowFatHeap Heap;
};

} // namespace

TEST_F(LowFatHeapTest, AllocateGivesLowFatPointer) {
  void *P = Heap.allocate(100);
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(Heap.isLowFat(P));
  EXPECT_EQ(Heap.allocationBase(P), P);
  EXPECT_GE(Heap.allocationSize(P), 100u);
  Heap.deallocate(P);
}

TEST_F(LowFatHeapTest, InteriorPointersResolveToBase) {
  char *P = static_cast<char *>(Heap.allocate(100));
  size_t Size = Heap.allocationSize(P);
  for (size_t Off : {size_t(1), size_t(50), size_t(99), Size - 1}) {
    EXPECT_TRUE(Heap.isLowFat(P + Off)) << Off;
    EXPECT_EQ(Heap.allocationBase(P + Off), P) << Off;
    EXPECT_EQ(Heap.allocationSize(P + Off), Size) << Off;
  }
  Heap.deallocate(P);
}

TEST_F(LowFatHeapTest, LegacyPointersReportWide) {
  int Local = 0;
  EXPECT_FALSE(Heap.isLowFat(&Local));
  EXPECT_EQ(Heap.allocationSize(&Local), SIZE_MAX);
  EXPECT_EQ(Heap.allocationBase(&Local), nullptr);
  EXPECT_FALSE(Heap.isLowFat(nullptr));
}

TEST_F(LowFatHeapTest, OversizedRequestsFallBackToLegacy) {
  void *P = Heap.allocate(MaxClassSize + 1);
  ASSERT_NE(P, nullptr);
  EXPECT_FALSE(Heap.isLowFat(P));
  EXPECT_EQ(Heap.stats().NumLegacyAllocs, 1u);
  std::memset(P, 0xab, MaxClassSize + 1); // Must be usable.
  Heap.deallocate(P);
  EXPECT_EQ(Heap.stats().NumFrees, 1u);
}

TEST_F(LowFatHeapTest, DistinctAllocationsDoNotOverlap) {
  std::vector<char *> Ptrs;
  for (int I = 0; I < 64; ++I)
    Ptrs.push_back(static_cast<char *>(Heap.allocate(48)));
  std::sort(Ptrs.begin(), Ptrs.end());
  for (size_t I = 1; I < Ptrs.size(); ++I)
    EXPECT_GE(Ptrs[I] - Ptrs[I - 1], 48) << I;
  for (char *P : Ptrs)
    Heap.deallocate(P);
}

TEST_F(LowFatHeapTest, FreePreservesFirstSixteenBytes) {
  // The META header (16 bytes) must survive free until reallocation
  // (Section 5 of the paper).
  char *P = static_cast<char *>(Heap.allocate(64));
  std::memset(P, 0x5a, 64);
  Heap.deallocate(P);
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(static_cast<unsigned char>(P[I]), 0x5a) << "byte " << I;
}

TEST_F(LowFatHeapTest, FreeListReusesBlocks) {
  void *P = Heap.allocate(64);
  Heap.deallocate(P);
  void *Q = Heap.allocate(64);
  EXPECT_EQ(P, Q) << "LIFO free list should reuse the freed block";
  Heap.deallocate(Q);
}

TEST_F(LowFatHeapTest, QuarantineDelaysReuse) {
  LowFatHeap QHeap(HeapOptions{1ull << 29, /*QuarantineBytes=*/1 << 20});
  void *P = QHeap.allocate(64);
  QHeap.deallocate(P);
  void *Q = QHeap.allocate(64);
  EXPECT_NE(P, Q) << "quarantined block must not be reused immediately";
  EXPECT_GT(QHeap.stats().QuarantinedBytes, 0u);
}

TEST_F(LowFatHeapTest, QuarantineEvictsWhenOverBudget) {
  LowFatHeap QHeap(HeapOptions{1ull << 29, /*QuarantineBytes=*/256});
  std::vector<void *> Ptrs;
  for (int I = 0; I < 16; ++I)
    Ptrs.push_back(QHeap.allocate(64));
  for (void *P : Ptrs)
    QHeap.deallocate(P);
  EXPECT_LE(QHeap.stats().QuarantinedBytes, 256u + 96u);
}

TEST_F(LowFatHeapTest, StatsTrackPeaks) {
  HeapStats Before = Heap.stats();
  void *A = Heap.allocate(1000);
  void *B = Heap.allocate(2000);
  HeapStats During = Heap.stats();
  EXPECT_GT(During.BlockBytesInUse, Before.BlockBytesInUse);
  Heap.deallocate(A);
  Heap.deallocate(B);
  HeapStats After = Heap.stats();
  EXPECT_EQ(After.BlockBytesInUse, Before.BlockBytesInUse);
  EXPECT_GE(After.PeakBlockBytesInUse, During.BlockBytesInUse);
  EXPECT_EQ(After.NumAllocs, Before.NumAllocs + 2);
  EXPECT_EQ(After.NumFrees, Before.NumFrees + 2);
}

TEST_F(LowFatHeapTest, PointerBeyondBumpIsLegacy) {
  char *P = static_cast<char *>(Heap.allocate(64));
  size_t Class = Heap.allocationSize(P);
  // One-past-the-end of the newest block was never allocated.
  EXPECT_FALSE(Heap.isLowFat(P + Class));
  Heap.deallocate(P);
}

namespace {

/// Property sweep: for many sizes, allocation/base/size invariants hold.
class LowFatHeapPropertyTest : public ::testing::TestWithParam<size_t> {
protected:
  static LowFatHeap &heap() {
    static LowFatHeap Heap;
    return Heap;
  }
};

} // namespace

TEST_P(LowFatHeapPropertyTest, BaseAndSizeInvariants) {
  size_t Request = GetParam();
  char *P = static_cast<char *>(heap().allocate(Request));
  ASSERT_NE(P, nullptr);
  ASSERT_TRUE(heap().isLowFat(P));
  size_t Size = heap().allocationSize(P);
  EXPECT_GE(Size, Request);
  EXPECT_EQ(heap().allocationBase(P), P);
  // Interior pointers throughout the block resolve to the same base.
  for (size_t Off = 1; Off < Request; Off = Off * 2 + 1) {
    EXPECT_EQ(heap().allocationBase(P + Off), P) << Off;
    EXPECT_EQ(heap().allocationSize(P + Off), Size) << Off;
  }
  std::memset(P, 0xcd, Request); // The block must be writable.
  heap().deallocate(P);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LowFatHeapPropertyTest,
                         ::testing::Values(1, 16, 31, 32, 33, 48, 63, 64,
                                           100, 256, 1000, 4096, 10000,
                                           1 << 16, (1 << 16) + 1, 1 << 20,
                                           (3 << 19), 1 << 24));

TEST(LowFatHeapThreadTest, ConcurrentAllocFree) {
  LowFatHeap Heap;
  constexpr int NumThreads = 4;
  constexpr int Iterations = 2000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&Heap, T] {
      std::mt19937 Rng(T);
      std::vector<void *> Live;
      for (int I = 0; I < Iterations; ++I) {
        size_t Size = Rng() % 500 + 1;
        void *P = Heap.allocate(Size);
        ASSERT_TRUE(Heap.isLowFat(P));
        ASSERT_EQ(Heap.allocationBase(P), P);
        Live.push_back(P);
        if (Live.size() > 16) {
          Heap.deallocate(Live.front());
          Live.erase(Live.begin());
        }
      }
      for (void *P : Live)
        Heap.deallocate(P);
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Heap.stats().NumAllocs, Heap.stats().NumFrees);
}

//===----------------------------------------------------------------------===//
// Sharded heaps (HeapOptions::NumShards > 1)
//===----------------------------------------------------------------------===//

TEST(ShardedLowFatHeapTest, ShardSlicesAreClassAlignedEverywhere) {
  // For every size class: blocks allocated by different shards must
  // all sit at class-size multiples from the region base, so the
  // base(p)/size(p) arithmetic is shard-blind.
  HeapOptions Options;
  Options.NumShards = 4;
  LowFatHeap Heap(Options);
  ASSERT_EQ(Heap.numShards(), 4u);

  for (unsigned C = 0; C < NumSizeClasses; ++C) {
    size_t Request = classSize(C);
    if (Request > Heap.regionSize())
      break;
    for (unsigned S = 0; S < 4; ++S) {
      char *P = static_cast<char *>(Heap.allocateOnShard(Request, S));
      if (!Heap.isLowFat(P))
        continue; // Class too large for a 4-way split: legacy is fine.
      EXPECT_EQ(Heap.allocationSize(P), Request) << "class " << C;
      EXPECT_EQ(Heap.allocationBase(P), P) << "class " << C;
      EXPECT_EQ(Heap.shardOf(P), S) << "class " << C;
      EXPECT_EQ(Heap.allocationBase(P + Request / 2), P)
          << "interior pointer, class " << C;
      Heap.deallocate(P);
    }
  }
}

TEST(ShardedLowFatHeapTest, CrossShardFreeReturnsToOwningShard) {
  HeapOptions Options;
  Options.NumShards = 2;
  LowFatHeap Heap(Options);
  void *P = Heap.allocateOnShard(64, 1);
  EXPECT_EQ(Heap.shardOf(P), 1u);
  // Freed from "shard 0's thread" (deallocate is shard-blind)...
  Heap.deallocate(P);
  // ...the block must come back to shard 1, not shard 0.
  void *Q0 = Heap.allocateOnShard(64, 0);
  EXPECT_NE(Q0, P) << "shard 0 must not receive shard 1's free block";
  void *Q1 = Heap.allocateOnShard(64, 1);
  EXPECT_EQ(Q1, P) << "shard 1's LIFO free list reuses its own block";
  Heap.deallocate(Q0);
  Heap.deallocate(Q1);
}

TEST(ShardedLowFatHeapTest, ConcurrentShardsWithQuarantine) {
  // The concurrent-use contract: per-shard alloc/free under a live
  // quarantine, with cross-shard base/size queries racing against
  // sibling allocation. No block may ever be handed out twice while
  // live, and freed blocks must respect the quarantine delay.
  constexpr unsigned Threads = 4;
  constexpr int Iterations = 2000;
  HeapOptions Options;
  Options.NumShards = Threads;
  Options.QuarantineBytes = 1 << 15;
  LowFatHeap Heap(Options);

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&Heap, T] {
      std::mt19937 Rng(T);
      std::vector<void *> Live;
      void *LastFreed = nullptr;
      for (int I = 0; I < Iterations; ++I) {
        size_t Size = Rng() % 500 + 1;
        void *P = Heap.allocateOnShard(Size, T);
        ASSERT_TRUE(Heap.isLowFat(P));
        ASSERT_EQ(Heap.allocationBase(P), P);
        ASSERT_EQ(Heap.shardOf(P), T);
        ASSERT_NE(P, LastFreed)
            << "quarantine must delay immediate reuse";
        Live.push_back(P);
        if (Live.size() > 16) {
          LastFreed = Live.front();
          Heap.deallocate(LastFreed);
          Live.erase(Live.begin());
        }
      }
      for (void *P : Live)
        Heap.deallocate(P);
    });
  }
  for (std::thread &T : Workers)
    T.join();
  HeapStats Stats = Heap.stats();
  EXPECT_EQ(Stats.NumAllocs, Stats.NumFrees);
  EXPECT_EQ(Stats.BlockBytesInUse, 0u);
}

TEST(ShardedLowFatHeapTest, ResetShardDropsQuarantineAndFreeLists) {
  HeapOptions Options;
  Options.NumShards = 2;
  Options.QuarantineBytes = 1 << 20;
  LowFatHeap Heap(Options);

  void *A = Heap.allocateOnShard(64, 0);
  void *B = Heap.allocateOnShard(64, 1);
  Heap.deallocate(A); // Parked in shard 0's quarantine.
  ASSERT_GT(Heap.shardStats(0).QuarantinedBytes, 0u);

  Heap.resetShard(0);
  HeapStats S0 = Heap.shardStats(0);
  EXPECT_EQ(S0.QuarantinedBytes, 0u);
  EXPECT_EQ(S0.NumAllocs, 0u);
  EXPECT_EQ(S0.BlockBytesInUse, 0u);
  // Shard 1 untouched; shard 0 serves from the start of its slice.
  EXPECT_TRUE(Heap.isLowFat(B));
  void *A2 = Heap.allocateOnShard(64, 0);
  EXPECT_EQ(A2, A);
  Heap.deallocate(A2);
  Heap.deallocate(B);
}

TEST(ShardedLowFatHeapTest, SingleShardKeepsClassicBehaviour) {
  // NumShards = 1 (the default) must be indistinguishable from the
  // pre-sharding allocator: one slice spanning the region.
  LowFatHeap Heap;
  EXPECT_EQ(Heap.numShards(), 1u);
  void *P = Heap.allocate(100);
  EXPECT_EQ(Heap.shardOf(P), 0u);
  Heap.deallocate(P);
}

//===----------------------------------------------------------------------===//
// The lock-free fast path: magazines, batched quarantine, stealing
//===----------------------------------------------------------------------===//

TEST(MagazineTest, SteadyStateChurnHitsTheMagazine) {
  LowFatHeap Heap; // MagazineSize defaults to 16.
  ASSERT_GT(Heap.magazineSize(), 0u);
  // Warm-up alloc/free pair seeds the magazine; every later alloc of
  // the class must be a magazine hit.
  void *P = Heap.allocate(64);
  Heap.deallocate(P);
  for (int I = 0; I < 100; ++I) {
    void *Q = Heap.allocate(64);
    EXPECT_EQ(Q, P) << "LIFO magazine must replay the cached block";
    Heap.deallocate(Q);
  }
  HeapStats Stats = Heap.stats();
  EXPECT_EQ(Stats.MagazineHits, 100u);
  EXPECT_EQ(Stats.NumAllocs, 101u);
  EXPECT_EQ(Stats.NumFrees, 101u);
  EXPECT_EQ(Stats.BlockBytesInUse, 0u);
}

TEST(MagazineTest, DisabledMagazinesStillReuseLockFree) {
  HeapOptions Options;
  Options.MagazineSize = 0;
  LowFatHeap Heap(Options);
  EXPECT_EQ(Heap.magazineSize(), 0u);
  void *P = Heap.allocate(64);
  Heap.deallocate(P);
  void *Q = Heap.allocate(64);
  EXPECT_EQ(Q, P) << "Treiber free list reuses the freed block";
  Heap.deallocate(Q);
  EXPECT_EQ(Heap.stats().MagazineHits, 0u);
}

TEST(MagazineTest, OverflowFlushesHalfToTheSharedList) {
  HeapOptions Options;
  Options.MagazineSize = 8;
  LowFatHeap Heap(Options);
  // Free more blocks than one magazine holds: the overflow must land
  // on the shared free list (visible to other threads), not grow the
  // TLS cache without bound.
  std::vector<void *> Ptrs;
  for (int I = 0; I < 32; ++I)
    Ptrs.push_back(Heap.allocate(64));
  for (void *P : Ptrs)
    Heap.deallocate(P);
  // Another thread (fresh TLS) must be able to reuse flushed blocks.
  std::thread Other([&Heap] {
    void *P = Heap.allocate(64);
    EXPECT_TRUE(Heap.isLowFat(P));
    EXPECT_GE(Heap.stats().MagazineRefills, 1u)
        << "the fresh thread must refill from the flushed overflow";
    Heap.deallocate(P);
  });
  Other.join();
  EXPECT_EQ(Heap.stats().BlockBytesInUse, 0u);
}

TEST(MagazineTest, FlushThreadCachePublishesCachedBlocks) {
  LowFatHeap Heap;
  void *P = Heap.allocate(64);
  Heap.deallocate(P); // Parked in this thread's magazine.
  Heap.flushThreadCache();
  // After the flush the block sits on the shared free list, so a
  // magazine-REFILL (not a hit) serves it back.
  uint64_t HitsBefore = Heap.stats().MagazineHits;
  void *Q = Heap.allocate(64);
  EXPECT_EQ(Q, P);
  EXPECT_EQ(Heap.stats().MagazineHits, HitsBefore);
  EXPECT_GE(Heap.stats().MagazineRefills, 1u);
  Heap.deallocate(Q);
}

TEST(MagazineTest, ResetShardDiscardsStaleThreadMagazines) {
  // The stale-TLS regression: a worker's magazine holds freed blocks
  // of a shard; resetShard() recycles the shard and a new tenant is
  // handed the same addresses. The worker's next allocation must NOT
  // replay a cached (now foreign) block.
  LowFatHeap Heap;
  void *A = nullptr, *B = nullptr;
  std::atomic<int> Phase{0};

  std::thread Worker([&] {
    A = Heap.allocate(64);
    B = Heap.allocate(64);
    Heap.deallocate(B); // B parks in the worker's magazine.
    Phase.store(1, std::memory_order_release);
    while (Phase.load(std::memory_order_acquire) != 2)
      std::this_thread::yield();
    // The shard was reset and the new tenant owns A's and B's
    // addresses. A stale magazine would hand back B == C2.
    void *D = Heap.allocate(64);
    EXPECT_TRUE(Heap.isLowFat(D));
    EXPECT_NE(D, A) << "stale magazine block replayed after reset";
    EXPECT_NE(D, B) << "stale magazine block replayed after reset";
  });

  while (Phase.load(std::memory_order_acquire) != 1)
    std::this_thread::yield();
  Heap.resetShard(0);
  // New tenant: the recycled slice serves A's and B's addresses again.
  void *C1 = Heap.allocate(64);
  void *C2 = Heap.allocate(64);
  EXPECT_EQ(C1, A);
  EXPECT_EQ(C2, B);
  Phase.store(2, std::memory_order_release);
  Worker.join();
}

TEST(MagazineTest, ThreadExitFlushesMagazinesBackToTheHeap) {
  LowFatHeap Heap;
  void *P = nullptr;
  std::thread Worker([&] {
    P = Heap.allocate(64);
    Heap.deallocate(P); // Parks in the worker's magazine...
  });
  Worker.join(); // ...and must flush back at thread exit.
  void *Q = Heap.allocate(64);
  EXPECT_EQ(Q, P) << "the dead thread's cached block must be reusable";
  Heap.deallocate(Q);
  HeapStats Stats = Heap.stats();
  EXPECT_EQ(Stats.NumAllocs, 2u);
  EXPECT_EQ(Stats.NumFrees, 2u);
}

TEST(MagazineTest, ConcurrentHitTalliesAreExact) {
  // Hit/refill telemetry is tallied per thread and published with
  // fetch_add (batched, with the remainder flushed through ThreadCache
  // retirement), so the totals are *exact* under concurrent mutators —
  // the old racy load+store on the shared counter lost updates under
  // exactly this workload. Each thread's first allocation comes from
  // the bump pointer (or a refill of a finished sibling's flushed
  // blocks); every one of the remaining Iters-1 is a magazine hit.
  LowFatHeap Heap;
  ASSERT_GT(Heap.magazineSize(), 0u);
  constexpr unsigned NumThreads = 8;
  constexpr unsigned Iters = 4096;
  std::atomic<unsigned> Ready{0};
  std::atomic<bool> Go{false};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&] {
      Ready.fetch_add(1);
      while (!Go.load(std::memory_order_acquire)) {
      }
      for (unsigned I = 0; I < Iters; ++I) {
        void *P = Heap.allocate(64);
        Heap.deallocate(P);
      }
      Heap.flushThreadCache();
    });
  }
  while (Ready.load() != NumThreads) {
  }
  Go.store(true, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();
  HeapStats Stats = Heap.stats();
  EXPECT_EQ(Stats.MagazineHits, uint64_t(NumThreads) * (Iters - 1));
  EXPECT_LE(Stats.MagazineRefills, uint64_t(NumThreads));
  EXPECT_EQ(Stats.NumAllocs, uint64_t(NumThreads) * Iters);
  EXPECT_EQ(Stats.NumFrees, uint64_t(NumThreads) * Iters);
  EXPECT_EQ(Stats.BlockBytesInUse, 0u);
}

TEST(BatchedQuarantineTest, DelayPreservedWithinAndAcrossBatches) {
  HeapOptions Options;
  Options.QuarantineBytes = 1 << 20;
  LowFatHeap Heap(Options);
  // Free a full batch (16) plus change: no freed block may come back
  // while the budget holds, whether it sits in the thread batch or in
  // the shard FIFO.
  std::vector<void *> Freed;
  for (int I = 0; I < 20; ++I) {
    void *P = Heap.allocate(64);
    Heap.deallocate(P);
    Freed.push_back(P);
    void *Q = Heap.allocate(64);
    for (void *F : Freed)
      EXPECT_NE(Q, F) << "quarantined block reused (iteration " << I
                      << ")";
    Heap.deallocate(Q);
    Freed.push_back(Q);
  }
  EXPECT_GT(Heap.stats().QuarantinedBytes, 0u);
}

TEST(BatchedQuarantineTest, AccountingVisibleBeforeTheBatchFlushes) {
  HeapOptions Options;
  Options.QuarantineBytes = 1 << 20;
  LowFatHeap Heap(Options);
  void *P = Heap.allocate(64);
  Heap.deallocate(P);
  // One free < batch size: the block is still in the TLS batch, but
  // the byte accounting must already see it.
  EXPECT_EQ(Heap.stats().QuarantinedBytes, 64u);
  Heap.flushThreadCache();
  EXPECT_EQ(Heap.stats().QuarantinedBytes, 64u);
}

TEST(BatchedQuarantineTest, ResetShardDropsPendingBatchEntries) {
  HeapOptions Options;
  Options.NumShards = 2;
  Options.QuarantineBytes = 1 << 20;
  LowFatHeap Heap(Options);
  void *P = Heap.allocateOnShard(64, 0);
  Heap.deallocate(P); // Parked in this thread's pending batch.
  ASSERT_GT(Heap.shardStats(0).QuarantinedBytes, 0u);
  Heap.resetShard(0);
  EXPECT_EQ(Heap.shardStats(0).QuarantinedBytes, 0u);
  // Flushing the stale batch must neither corrupt the recycled shard
  // nor resurrect the accounting.
  Heap.flushThreadCache();
  EXPECT_EQ(Heap.shardStats(0).QuarantinedBytes, 0u);
  void *Q = Heap.allocateOnShard(64, 0);
  EXPECT_EQ(Q, P) << "recycled slice serves from its start";
  Heap.deallocate(Q);
}

namespace {

/// A heap whose 1 MiB-class slices hold exactly 4 blocks per shard
/// (64 MiB regions / 16 shards), so slice exhaustion is cheap to
/// reach.
HeapOptions tinySliceOptions(bool Stealing) {
  HeapOptions Options;
  Options.RegionSize = 1ull << 26;
  Options.NumShards = 16;
  Options.EnableWorkStealing = Stealing;
  return Options;
}

} // namespace

TEST(WorkStealingTest, ExhaustedSliceRefillsFromSiblings) {
  LowFatHeap Heap(tinySliceOptions(true));
  constexpr size_t BlockSize = 1u << 20;
  std::vector<char *> Blocks;
  for (int I = 0; I < 12; ++I) {
    auto *P = static_cast<char *>(Heap.allocateOnShard(BlockSize, 0));
    ASSERT_TRUE(Heap.isLowFat(P)) << "block " << I << " went legacy";
    Blocks.push_back(P);
  }
  HeapStats Stats = Heap.stats();
  EXPECT_EQ(Stats.Steals, 8u) << "blocks 5..12 must be stolen";
  EXPECT_EQ(Stats.ExhaustFallbacks, 0u);
  EXPECT_EQ(Stats.NumLegacyAllocs, 0u);

  // Differential base/size sweep: bump-served (shard 0) and stolen
  // (sibling-slice) blocks must be bit-identical under the metadata
  // arithmetic — same class size, exact base at every interior
  // offset, and the owning shard derived purely from the address.
  for (char *P : Blocks) {
    EXPECT_EQ(Heap.allocationSize(P), BlockSize);
    EXPECT_EQ(Heap.allocationBase(P), P);
    for (size_t Off : {size_t(1), BlockSize / 2, BlockSize - 1}) {
      EXPECT_EQ(Heap.allocationBase(P + Off), P) << Off;
      EXPECT_EQ(Heap.allocationSize(P + Off), BlockSize) << Off;
    }
  }
  // The first four live in shard 0's slice; the rest were stolen from
  // the next sibling slices in steal order.
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(Heap.shardOf(Blocks[I]), 0u) << I;
  for (int I = 4; I < 12; ++I)
    EXPECT_NE(Heap.shardOf(Blocks[I]), 0u) << I;

  // A freed stolen block returns to its OWNING (victim) shard: the
  // victim can reuse it, and per-shard alloc/free stats balance.
  unsigned Victim = Heap.shardOf(Blocks[4]);
  Heap.deallocate(Blocks[4]);
  void *Reused = Heap.allocateOnShard(BlockSize, Victim);
  EXPECT_EQ(Reused, Blocks[4]);
  Heap.deallocate(Reused);
  for (int I = 0; I < 12; ++I)
    if (I != 4)
      Heap.deallocate(Blocks[I]);
  Stats = Heap.stats();
  EXPECT_EQ(Stats.NumAllocs, Stats.NumFrees);
  EXPECT_EQ(Stats.BlockBytesInUse, 0u);
}

TEST(WorkStealingTest, DisabledStealingFallsBackToLegacy) {
  LowFatHeap Heap(tinySliceOptions(false));
  constexpr size_t BlockSize = 1u << 20;
  std::vector<void *> Blocks;
  for (int I = 0; I < 6; ++I)
    Blocks.push_back(Heap.allocateOnShard(BlockSize, 0));
  HeapStats Stats = Heap.stats();
  EXPECT_EQ(Stats.Steals, 0u);
  EXPECT_EQ(Stats.ExhaustFallbacks, 2u);
  EXPECT_EQ(Stats.NumLegacyAllocs, 2u);
  for (void *P : Blocks)
    Heap.deallocate(P);
}

TEST(LockFreeHammerTest, SharedShardChurnWithStealingAndQuarantine) {
  // The TSan hammer for the whole lock-free surface at once: four
  // threads churn ONE shard (maximal contention on its Treiber lists
  // and bump pointers) with magazines, batched quarantine and stealing
  // all enabled, while cross-thread frees bounce blocks between
  // magazines and the shared lists.
  constexpr unsigned Threads = 4;
  constexpr int Iterations = 2000;
  HeapOptions Options;
  Options.QuarantineBytes = 1 << 14;
  Options.MagazineSize = 8;
  Options.EnableWorkStealing = true;
  Options.NumShards = 2;
  LowFatHeap Heap(Options);

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&Heap, T] {
      std::mt19937 Rng(T);
      std::vector<void *> Live;
      for (int I = 0; I < Iterations; ++I) {
        size_t Size = Rng() % 500 + 1;
        void *P = Heap.allocateOnShard(Size, 0); // Everyone on shard 0.
        ASSERT_TRUE(Heap.isLowFat(P));
        ASSERT_EQ(Heap.allocationBase(P), P);
        static_cast<char *>(P)[0] = static_cast<char>(T);
        Live.push_back(P);
        if (Live.size() > 16) {
          Heap.deallocate(Live.front());
          Live.erase(Live.begin());
        }
      }
      for (void *P : Live)
        Heap.deallocate(P);
      Heap.flushThreadCache();
    });
  }
  for (std::thread &T : Workers)
    T.join();
  HeapStats Stats = Heap.stats();
  EXPECT_EQ(Stats.NumAllocs, Stats.NumFrees);
  EXPECT_EQ(Stats.BlockBytesInUse, 0u);
}

//===----------------------------------------------------------------------===//
// StackPool and GlobalPool
//===----------------------------------------------------------------------===//

TEST(StackPoolTest, LifoFrames) {
  LowFatHeap Heap;
  StackPool Stack(Heap);
  size_t Outer = Stack.mark();
  void *A = Stack.allocate(64);
  {
    StackPool::Frame Frame(Stack);
    void *B = Stack.allocate(128);
    EXPECT_TRUE(Heap.isLowFat(B));
    EXPECT_EQ(Stack.liveObjects(), 2u);
  }
  EXPECT_EQ(Stack.liveObjects(), 1u) << "frame exit frees its objects";
  EXPECT_EQ(Heap.allocationBase(A), A) << "outer object still live";
  Stack.release(Outer);
  EXPECT_EQ(Stack.liveObjects(), 0u);
}

TEST(StackPoolTest, BlocksSinceMark) {
  LowFatHeap Heap;
  StackPool Stack(Heap);
  size_t Mark = Stack.mark();
  void *A = Stack.allocate(32);
  void *B = Stack.allocate(32);
  auto Blocks = Stack.blocksSince(Mark);
  ASSERT_EQ(Blocks.size(), 2u);
  EXPECT_EQ(Blocks[0].Ptr, A);
  EXPECT_EQ(Blocks[1].Ptr, B);
  Stack.release(Mark);
}

TEST(StackPoolTest, OutOfOrderFrameDestruction) {
  // Regression: Frame used to release by mark, so destroying an OUTER
  // frame while an INNER frame still had live allocations freed the
  // inner frame's blocks out from under it. Frames release by frame
  // identity now — each destroys exactly its own allocations, in any
  // destruction order.
  LowFatHeap Heap;
  StackPool Stack(Heap);
  auto Outer = std::make_unique<StackPool::Frame>(Stack);
  void *A = Stack.allocate(64);
  auto Inner = std::make_unique<StackPool::Frame>(Stack);
  void *B = Stack.allocate(128);
  ASSERT_NE(A, B);
  EXPECT_EQ(Stack.liveObjects(), 2u);

  Outer.reset(); // Out of order: the outer frame dies first.
  ASSERT_EQ(Stack.liveObjects(), 1u)
      << "inner frame's allocation must survive the outer frame";
  EXPECT_EQ(Stack.blocksSince(0)[0].Ptr, B);
  static_cast<char *>(B)[0] = 42; // Still live and writable.

  Inner.reset();
  EXPECT_EQ(Stack.liveObjects(), 0u);
}

TEST(StackPoolTest, EscapingSlotsQuarantineBeforeReuse) {
  // Escaping (address-taken) slots are retired through a FIFO
  // quarantine instead of being freed at frame pop, so a dangling
  // frame pointer keeps addressing a block whose META the runtime
  // rebound — the stack use-after-return detection window.
  LowFatHeap Heap;
  StackPool::Options Opts;
  Opts.QuarantineBytes = 1 << 12;
  StackPool Stack(Heap, 0, Opts);
  // An outer "main" frame keeps the program alive: the quarantine only
  // holds blocks while some frame remains (it drains once the pool
  // empties — no frame left for a pointer to dangle out of).
  Stack.allocate(16, /*Retire=*/false);
  size_t Mark = Stack.mark();
  void *Escapes = Stack.allocate(64, /*Retire=*/true);
  void *Plain = Stack.allocate(64, /*Retire=*/false);
  Stack.release(Mark);
  EXPECT_EQ(Stack.liveObjects(), 1u);
  EXPECT_EQ(Stack.quarantinedBlocks(), 1u)
      << "only the escaping slot is quarantined";
  EXPECT_GT(Stack.quarantinedBytes(), 0u);
  // The quarantined block still answers base(p)/size(p) queries.
  EXPECT_EQ(Heap.allocationBase(Escapes), Escapes);
  (void)Plain;

  // Overflowing the byte budget evicts oldest-first back to the heap.
  for (int I = 0; I < 256; ++I) {
    size_t M = Stack.mark();
    Stack.allocate(64, /*Retire=*/true);
    Stack.release(M);
  }
  EXPECT_LE(Stack.quarantinedBytes(), Opts.QuarantineBytes);
  EXPECT_GE(Stack.retiredBlocks(), 257u);

  // Popping the outermost frame ends the detection window: everything
  // returns to the heap and the pool is empty.
  Stack.release(0);
  EXPECT_EQ(Stack.liveObjects(), 0u);
  EXPECT_EQ(Stack.quarantinedBlocks(), 0u);
  EXPECT_EQ(Stack.quarantinedBytes(), 0u);
}

TEST(GlobalPoolTest, RegistersAndLooksUp) {
  LowFatHeap Heap;
  GlobalPool Globals(Heap);
  void *G = Globals.allocate(256, "my_global");
  EXPECT_TRUE(Heap.isLowFat(G));
  EXPECT_EQ(Globals.lookup("my_global"), G);
  EXPECT_EQ(Globals.lookup("missing"), nullptr);
  EXPECT_EQ(Globals.size(), 1u);
}
