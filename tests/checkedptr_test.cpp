//===- tests/checkedptr_test.cpp - Figure 3 schema library tests ----------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Exercises CheckedPtr as the Figure 3 instrumentation schema: the
/// paper's Figure 4 length/sum functions, the account sub-object
/// overflow, cast checking, and the per-policy check counts.
///
//===----------------------------------------------------------------------===//

#include "core/CheckedPtr.h"

#include <gtest/gtest.h>

using namespace effective;

namespace cp_test {

struct Account {
  int Number[8];
  float Balance;
};

struct Node {
  int Value;
  Node *Next;
};

struct Base {
  int X;
  float Y;
};

struct Derived {
  int X;
  float Y;
  char Z;
};

} // namespace cp_test

EFFECTIVE_REFLECT(cp_test::Account, Number, Balance);
EFFECTIVE_REFLECT(cp_test::Node, Value, Next);
EFFECTIVE_REFLECT(cp_test::Base, X, Y);
EFFECTIVE_REFLECT(cp_test::Derived, X, Y, Z);

namespace {

class CheckedPtrTest : public ::testing::Test {
protected:
  CheckedPtrTest() : RT(Ctx, quietOptions()), Scope(RT) {}

  static RuntimeOptions quietOptions() {
    RuntimeOptions Options;
    Options.Reporter.Mode = ReportMode::Count;
    return Options;
  }

  TypeContext Ctx;
  Runtime RT;
  RuntimeScope Scope;
};

/// The paper's Figure 4 sum() under a policy: one type check on entry,
/// one bounds check per element access.
template <typename Policy>
int checkedSum(CheckedPtr<int, Policy> A, int Len) {
  int Sum = 0;
  for (int I = 0; I < Len; ++I) {
    CheckedPtr<int, Policy> Tmp = A + I; // rule (f)
    Sum += *Tmp;                         // rule (g)
  }
  return Sum;
}

/// The paper's Figure 4 length() under a policy: a type check per node.
template <typename Policy>
int checkedLength(CheckedPtr<cp_test::Node, Policy> Xs) {
  int Len = 0;
  while (Xs.raw() != nullptr) {
    ++Len;
    auto Tmp = Xs.template field(&cp_test::Node::Next); // rule (e)
    Xs = CheckedPtr<cp_test::Node, Policy>::input(*Tmp); // rules (c)+(a)
  }
  return Len;
}

} // namespace

TEST_F(CheckedPtrTest, Figure4SumCheckCounts) {
  auto A = allocateChecked<int, FullPolicy>(RT, 100);
  for (int I = 0; I < 100; ++I)
    A[I] = I;
  RT.counters().reset();
  auto P = CheckedPtr<int, FullPolicy>::input(A.raw());
  int Sum = checkedSum(P, 100);
  EXPECT_EQ(Sum, 99 * 100 / 2);
  auto C = RT.counters().snapshot();
  EXPECT_EQ(C.TypeChecks, 1u) << "sum needs exactly one type check";
  EXPECT_EQ(C.BoundsChecks, 100u) << "one bounds check per element";
  EXPECT_EQ(RT.reporter().numIssues(), 0u);
  deallocateChecked(RT, A);
}

TEST_F(CheckedPtrTest, Figure4LengthCheckCounts) {
  // Build a 10-node list.
  std::vector<CheckedPtr<cp_test::Node, FullPolicy>> Nodes;
  for (int I = 0; I < 10; ++I)
    Nodes.push_back(allocateChecked<cp_test::Node, FullPolicy>(RT));
  for (int I = 0; I < 10; ++I) {
    Nodes[I]->Value = I;
    Nodes[I]->Next = I + 1 < 10 ? Nodes[I + 1].raw() : nullptr;
  }
  RT.counters().reset();
  auto Head = CheckedPtr<cp_test::Node, FullPolicy>::input(Nodes[0].raw());
  EXPECT_EQ(checkedLength(Head), 10);
  auto C = RT.counters().snapshot();
  // Input check for the head plus one per loaded next pointer; the null
  // tail pointer is not checked.
  EXPECT_EQ(C.TypeChecks, 1u + 9u)
      << "length is O(N) type checks, one per node";
  EXPECT_EQ(RT.reporter().numIssues(), 0u);
  for (auto &N : Nodes)
    deallocateChecked(RT, N);
}

TEST_F(CheckedPtrTest, AccountSubObjectOverflowCaught) {
  auto Acc = allocateChecked<cp_test::Account, FullPolicy>(RT);
  auto Number = Acc.field(&cp_test::Account::Number);
  // In-bounds writes succeed...
  for (int I = 0; I < 8; ++I)
    Number[I] = I;
  EXPECT_EQ(RT.reporter().numIssues(), 0u);
  // ...and the classic overflow into balance is caught.
  Number[8] = 42;
  EXPECT_EQ(RT.reporter().numIssues(ErrorKind::BoundsError), 1u);
  deallocateChecked(RT, Acc);
}

TEST_F(CheckedPtrTest, CastConfusionCaught) {
  auto Acc = allocateChecked<cp_test::Account, FullPolicy>(RT);
  // (float *)acc: account begins with int[8]; float does not match.
  auto F = CheckedPtr<float, FullPolicy>::fromCast(Acc);
  (void)F;
  EXPECT_EQ(RT.reporter().numIssues(ErrorKind::TypeError), 1u);
  deallocateChecked(RT, Acc);
}

TEST_F(CheckedPtrTest, PrefixStructConfusionCaught) {
  // perlbench/povray-style struct-prefix "inheritance": Base and
  // Derived share a prefix but are distinct types ([16] 6.2.7).
  auto B = allocateChecked<cp_test::Base, FullPolicy>(RT);
  auto D = CheckedPtr<cp_test::Derived, FullPolicy>::fromCast(B);
  (void)D;
  EXPECT_EQ(RT.reporter().numIssues(ErrorKind::TypeError), 1u);
  deallocateChecked(RT, B);
}

TEST_F(CheckedPtrTest, UseAfterFreeThroughCheckedPtr) {
  auto P = allocateChecked<int, FullPolicy>(RT, 4);
  deallocateChecked(RT, P);
  auto Q = CheckedPtr<int, FullPolicy>::input(P.raw());
  (void)Q;
  EXPECT_EQ(RT.reporter().numIssues(ErrorKind::UseAfterFree), 1u);
}

TEST_F(CheckedPtrTest, EscapeChecksBounds) {
  auto A = allocateChecked<int, FullPolicy>(RT, 4);
  auto P = A + 2;
  EXPECT_EQ(P.escape(), A.raw() + 2);
  EXPECT_EQ(RT.reporter().numIssues(), 0u);
  auto Bad = A + 100;
  Bad.escape();
  EXPECT_EQ(RT.reporter().numIssues(ErrorKind::BoundsError), 1u);
  deallocateChecked(RT, A);
}

TEST_F(CheckedPtrTest, BoundsPolicySkipsTypeChecks) {
  auto A = allocateChecked<cp_test::Account, BoundsPolicy>(RT);
  auto P = CheckedPtr<float, BoundsPolicy>::fromCast(A);
  *P = 1.0f; // Access within the allocation: no error.
  auto C = RT.counters().snapshot();
  EXPECT_EQ(C.TypeChecks, 0u);
  EXPECT_EQ(C.BoundsGets, 1u);
  EXPECT_EQ(RT.reporter().numIssues(), 0u)
      << "bounds-only cannot see type confusion";
  // But an object-bounds overflow is still caught.
  auto End = P + sizeof(cp_test::Account) / sizeof(float);
  *End = 2.0f;
  EXPECT_EQ(RT.reporter().numIssues(ErrorKind::BoundsError), 1u);
  deallocateChecked(RT, A);
}

TEST_F(CheckedPtrTest, TypePolicyChecksCastsOnly) {
  auto A = allocateChecked<cp_test::Account, TypePolicy>(RT);
  RT.counters().reset();
  // Inputs are not checked under EffectiveSan-type...
  auto In = CheckedPtr<cp_test::Account, TypePolicy>::input(A.raw());
  EXPECT_EQ(RT.counters().snapshot().TypeChecks, 0u);
  // ...but casts are.
  auto F = CheckedPtr<float, TypePolicy>::fromCast(In);
  (void)F;
  auto C = RT.counters().snapshot();
  EXPECT_EQ(C.TypeChecks, 1u);
  EXPECT_EQ(C.BoundsChecks, 0u);
  EXPECT_EQ(RT.reporter().numIssues(ErrorKind::TypeError), 1u);
  deallocateChecked(RT, A);
}

TEST_F(CheckedPtrTest, NonePolicyDoesNothing) {
  auto A = allocateChecked<int, NonePolicy>(RT, 8);
  RT.counters().reset();
  auto P = CheckedPtr<int, NonePolicy>::input(A.raw());
  int Sum = checkedSum(P, 8);
  (void)Sum;
  auto C = RT.counters().snapshot();
  EXPECT_EQ(C.TypeChecks, 0u);
  EXPECT_EQ(C.BoundsChecks, 0u);
  EXPECT_EQ(C.BoundsNarrows, 0u);
  deallocateChecked(RT, A);
}

TEST_F(CheckedPtrTest, FieldNarrowingChainsThroughStructs) {
  auto N = allocateChecked<cp_test::Node, FullPolicy>(RT);
  N->Value = 7;
  N->Next = nullptr;
  auto V = N.field(&cp_test::Node::Value);
  EXPECT_EQ(*V, 7);
  // The narrowed bounds cover only Value.
  EXPECT_EQ(V.bounds().Hi - V.bounds().Lo, sizeof(int));
  // Overflowing from Value into Next is caught.
  *(V + 1) = 1;
  EXPECT_EQ(RT.reporter().numIssues(ErrorKind::BoundsError), 1u);
  deallocateChecked(RT, N);
}

TEST_F(CheckedPtrTest, RuntimeScopeBindsCurrentRuntime) {
  EXPECT_EQ(&currentRuntime(), &RT);
  {
    Runtime Other(Ctx, quietOptions());
    RuntimeScope Inner(Other);
    EXPECT_EQ(&currentRuntime(), &Other);
  }
  EXPECT_EQ(&currentRuntime(), &RT);
}
