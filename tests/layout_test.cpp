//===- tests/layout_test.cpp - Layout function and hash table tests -------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Encodes the paper's Examples 2, 5 and 6 literally, plus property
/// sweeps over the Figure 2 rules, FAM normalization, tie-breaking and
/// coercion indexing.
///
//===----------------------------------------------------------------------===//

#include "core/Layout.h"
#include "core/TypeContext.h"

#include <gtest/gtest.h>

using namespace effective;

namespace {

/// Builds the paper's Example 1/2 types with the paper's (padding-free)
/// layout: struct S {int a[3]; char *s;} (a@0, s@12, size 20) and
/// struct T {float f; struct S t;} (f@0, t@4, size 24).
class PaperExampleLayout : public ::testing::Test {
protected:
  void SetUp() override {
    S = Ctx.createRecord(TypeKind::Struct, "S");
    T = Ctx.createRecord(TypeKind::Struct, "T");
    IntArr3 = Ctx.getArray(Ctx.getInt(), 3);
    CharPtr = Ctx.getPointer(Ctx.getChar());
    FieldInfo SFields[] = {
        {"a", IntArr3, 0, false},
        {"s", CharPtr, 12, false},
    };
    Ctx.defineRecord(S, SFields, /*Size=*/20, /*Align=*/4);
    FieldInfo TFields[] = {
        {"f", Ctx.getFloat(), 0, false},
        {"t", S, 4, false},
    };
    Ctx.defineRecord(T, TFields, /*Size=*/24, /*Align=*/4);
  }

  TypeContext Ctx;
  RecordType *S = nullptr;
  RecordType *T = nullptr;
  const ArrayType *IntArr3 = nullptr;
  const PointerType *CharPtr = nullptr;
};

} // namespace

//===----------------------------------------------------------------------===//
// Example 6: the layout hash table for T[]
//===----------------------------------------------------------------------===//

TEST_F(PaperExampleLayout, Example6TopLevelEntryIsUnbounded) {
  const LayoutTable &Table = T->layout();
  const LayoutEntry *E = Table.lookup(T, 0);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->RelLo, RelNegInf) << "(T, T, 0) -> -inf..inf";
  EXPECT_EQ(E->RelHi, RelPosInf);
}

TEST_F(PaperExampleLayout, Example6FloatEntry) {
  const LayoutEntry *E = T->layout().lookup(Ctx.getFloat(), 0);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->RelLo, 0) << "(T, float, 0) -> 0..4";
  EXPECT_EQ(E->RelHi, 4);
}

TEST_F(PaperExampleLayout, Example6StructSEntry) {
  const LayoutEntry *E = T->layout().lookup(S, 4);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->RelLo, 0) << "(T, S, 4) -> 0..20";
  EXPECT_EQ(E->RelHi, 20);
}

TEST_F(PaperExampleLayout, Example6IntEntriesCarryArrayBounds) {
  const LayoutTable &Table = T->layout();
  struct Expectation {
    uint64_t Offset;
    int64_t Lo, Hi;
  };
  // (T,int,4) -> 0..12, (T,int,8) -> -4..8, (T,int,12) -> -8..4.
  for (Expectation Exp :
       {Expectation{4, 0, 12}, {8, -4, 8}, {12, -8, 4}}) {
    const LayoutEntry *E = Table.lookup(Ctx.getInt(), Exp.Offset);
    ASSERT_NE(E, nullptr) << "offset " << Exp.Offset;
    EXPECT_EQ(E->RelLo, Exp.Lo) << "offset " << Exp.Offset;
    EXPECT_EQ(E->RelHi, Exp.Hi) << "offset " << Exp.Offset;
  }
}

TEST_F(PaperExampleLayout, Example6CharPtrEntry) {
  const LayoutEntry *E = T->layout().lookup(CharPtr, 16);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->RelLo, 0) << "(T, char *, 16) -> 0..8";
  EXPECT_EQ(E->RelHi, 8);
}

TEST_F(PaperExampleLayout, Example6MissingEntryForDouble) {
  EXPECT_EQ(T->layout().lookup(Ctx.getDouble(), 12), nullptr)
      << "type check of (double[]) at offset 12 must fail";
}

TEST_F(PaperExampleLayout, PointerToArrayKeyAlsoIndexed) {
  // A pointer of static type int(*)[3] (element type int[3]) must match
  // the sub-object p->t.a.
  const LayoutEntry *E = T->layout().lookup(IntArr3, 4);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->RelLo, 0);
  EXPECT_EQ(E->RelHi, 12);
}

TEST_F(PaperExampleLayout, EndEntriesExistButLoseTieBreaks) {
  const LayoutTable &Table = T->layout();
  // Offset 4 is both the end of p->f and the base of p->t.a; the float
  // entry at offset 4 is the end-of-f (rule (b)).
  const LayoutEntry *E = Table.lookup(Ctx.getFloat(), 4);
  ASSERT_NE(E, nullptr);
  EXPECT_TRUE(E->IsEnd);
  EXPECT_EQ(E->RelLo, -4);
  EXPECT_EQ(E->RelHi, 0);
  // At offset 16 (end of the int[3] array) the int key maps to the
  // array's one-past-the-end entry.
  const LayoutEntry *IntEnd = Table.lookup(Ctx.getInt(), 16);
  ASSERT_NE(IntEnd, nullptr);
  EXPECT_TRUE(IntEnd->IsEnd);
  EXPECT_EQ(IntEnd->RelLo, -12);
  EXPECT_EQ(IntEnd->RelHi, 0);
}

TEST_F(PaperExampleLayout, ElementOneBaseEntriesAtSizeofT) {
  // Offset sizeof(T) doubles as the base of element 1 for allocations
  // T[N]; interior entries from offset 0 must be mirrored there.
  const LayoutTable &Table = T->layout();
  const LayoutEntry *E = Table.lookup(Ctx.getFloat(), 24);
  ASSERT_NE(E, nullptr);
  EXPECT_FALSE(E->IsEnd);
  EXPECT_EQ(E->RelLo, 0);
  EXPECT_EQ(E->RelHi, 4);
}

TEST_F(PaperExampleLayout, NormalizeOffset) {
  const LayoutTable &Table = T->layout();
  uint64_t AllocSize = 100 * 24; // T[100]
  EXPECT_EQ(Table.normalizeOffset(0, AllocSize), 0u);
  EXPECT_EQ(Table.normalizeOffset(12, AllocSize), 12u);
  EXPECT_EQ(Table.normalizeOffset(24, AllocSize), 24u)
      << "k == sizeof(T) is in the table domain";
  EXPECT_EQ(Table.normalizeOffset(24 + 12, AllocSize), 12u)
      << "element 1 interior normalizes mod sizeof(T)";
  EXPECT_EQ(Table.normalizeOffset(99 * 24 + 4, AllocSize), 4u);
  EXPECT_EQ(Table.normalizeOffset(100 * 24, AllocSize), 24u)
      << "exact end of allocation keeps one-past-the-end semantics";
}

TEST_F(PaperExampleLayout, NormalizeOffsetRawMatchesTable) {
  // The type-check inline cache normalizes offsets through the static
  // normalizeOffsetRaw (with per-entry memoized sizeof/FAM values); it
  // must agree with the member function at every offset, or cached and
  // uncached checks could diverge.
  const LayoutTable &Table = T->layout();
  uint64_t AllocSize = 100 * 24;
  for (uint64_t K = 0; K <= AllocSize; ++K) {
    ASSERT_EQ(Table.normalizeOffset(K, AllocSize),
              LayoutTable::normalizeOffsetRaw(K, AllocSize,
                                              Table.sizeofT(),
                                              Table.famSize()))
        << "K=" << K;
  }

  // And for a FAM record, whose normalization domain is extended.
  TypeContext FamCtx;
  RecordType *R = RecordBuilder(FamCtx, TypeKind::Struct, "fam")
                      .addField("len", FamCtx.getLong())
                      .addFlexibleArray("data", FamCtx.getDouble())
                      .finish();
  const LayoutTable &FamTable = R->layout();
  uint64_t FamAlloc = 88; // header + 10 doubles
  for (uint64_t K = 0; K <= FamAlloc; ++K) {
    ASSERT_EQ(FamTable.normalizeOffset(K, FamAlloc),
              LayoutTable::normalizeOffsetRaw(K, FamAlloc,
                                              FamTable.sizeofT(),
                                              FamTable.famSize()))
        << "FAM K=" << K;
  }
}

//===----------------------------------------------------------------------===//
// Scalars, arrays, records: Figure 2 rules
//===----------------------------------------------------------------------===//

TEST(LayoutTest, ScalarLayout) {
  TypeContext Ctx;
  const LayoutTable &Table = Ctx.getInt()->layout();
  const LayoutEntry *Base = Table.lookup(Ctx.getInt(), 0);
  ASSERT_NE(Base, nullptr);
  // The allocation type is int[] — unbounded, narrowed at runtime.
  EXPECT_EQ(Base->RelLo, RelNegInf);
  EXPECT_EQ(Base->RelHi, RelPosInf);
  EXPECT_EQ(Table.lookup(Ctx.getFloat(), 0), nullptr);
}

TEST(LayoutTest, StructOfScalars) {
  TypeContext Ctx;
  RecordType *R = RecordBuilder(Ctx, TypeKind::Struct, "pair")
                      .addField("a", Ctx.getInt())
                      .addField("b", Ctx.getInt())
                      .finish();
  const LayoutTable &Table = R->layout();
  // Offset 4 is both end-of-a and base-of-b; the base entry must win
  // (tie-breaking rule 2).
  const LayoutEntry *E = Table.lookup(Ctx.getInt(), 4);
  ASSERT_NE(E, nullptr);
  EXPECT_FALSE(E->IsEnd);
  EXPECT_EQ(E->RelLo, 0);
  EXPECT_EQ(E->RelHi, 4);
}

TEST(LayoutTest, UnionPrefersWiderBounds) {
  // union { float a[10]; float b[20]; }: a float check always returns
  // b's bounds (Section 6 "Limitations" example).
  TypeContext Ctx;
  RecordType *U = RecordBuilder(Ctx, TypeKind::Union, "fu")
                      .addField("a", Ctx.getArray(Ctx.getFloat(), 10))
                      .addField("b", Ctx.getArray(Ctx.getFloat(), 20))
                      .finish();
  const LayoutEntry *E = U->layout().lookup(Ctx.getFloat(), 0);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->RelLo, 0);
  EXPECT_EQ(E->RelHi, 80) << "the wider float[20] must win";
}

TEST(LayoutTest, MultiDimensionalArrayReductions) {
  TypeContext Ctx;
  const ArrayType *Inner = Ctx.getArray(Ctx.getInt(), 3);
  const ArrayType *Outer = Ctx.getArray(Inner, 2); // int[2][3]
  RecordType *R = RecordBuilder(Ctx, TypeKind::Struct, "m")
                      .addField("grid", Outer)
                      .finish();
  const LayoutTable &Table = R->layout();
  // int* at the start of row 1 gets the full 24-byte grid (wider bounds
  // preferred over the 12-byte row).
  const LayoutEntry *E = Table.lookup(Ctx.getInt(), 12);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->RelLo, -12);
  EXPECT_EQ(E->RelHi, 12);
  // int(*)[3] at row 1 also gets grid bounds.
  const LayoutEntry *Row = Table.lookup(Inner, 12);
  ASSERT_NE(Row, nullptr);
  EXPECT_EQ(Row->RelLo, -12);
  EXPECT_EQ(Row->RelHi, 12);
  // Mid-row int entries carry row-relative bounds from the inner array
  // recursion: at offset 16 (row 1, column 1) the widest containing
  // int-array is row 1 (the outer grid only matches row boundaries).
  const LayoutEntry *Mid = Table.lookup(Ctx.getInt(), 16);
  ASSERT_NE(Mid, nullptr);
  EXPECT_EQ(Mid->RelLo, -4);
  EXPECT_EQ(Mid->RelHi, 8);
}

TEST(LayoutTest, AnyPointerIndexesPointerMembers) {
  TypeContext Ctx;
  RecordType *R = RecordBuilder(Ctx, TypeKind::Struct, "ptrs")
                      .addField("p", Ctx.getPointer(Ctx.getInt()))
                      .addField("x", Ctx.getInt())
                      .finish();
  const LayoutTable &Table = R->layout();
  // The AnyPointer sentinel (static void*) matches the int* member...
  const LayoutEntry *Base = Table.lookup(Ctx.getAnyPointer(), 0);
  ASSERT_NE(Base, nullptr);
  EXPECT_FALSE(Base->IsEnd);
  // ...its one-past-the-end position is an end entry...
  const LayoutEntry *End = Table.lookup(Ctx.getAnyPointer(), 8);
  ASSERT_NE(End, nullptr);
  EXPECT_TRUE(End->IsEnd);
  // ...and the interior of the int member has no pointer entry.
  EXPECT_EQ(Table.lookup(Ctx.getAnyPointer(), 12), nullptr);
}

TEST(LayoutTest, FlexibleArrayMemberNormalization) {
  TypeContext Ctx;
  RecordType *R = RecordBuilder(Ctx, TypeKind::Struct, "fam")
                      .addField("len", Ctx.getLong())
                      .addFlexibleArray("data", Ctx.getDouble())
                      .finish();
  ASSERT_EQ(R->size(), 16u);
  const LayoutTable &Table = R->layout();
  // Allocation: header + 10 doubles = 8 + 8 + 9*8 = 88 bytes.
  uint64_t AllocSize = 88;
  // Element 0 (inside sizeof(R)) is not normalized.
  EXPECT_EQ(Table.normalizeOffset(8, AllocSize), 8u);
  // Element 3 at offset 8 + 3*8 = 32 normalizes into the tail domain.
  EXPECT_EQ(Table.normalizeOffset(32, AllocSize), 16u);
  EXPECT_EQ(Table.normalizeOffset(36, AllocSize), 20u);
  // Both the in-struct element and the tail position match double.
  EXPECT_NE(Table.lookup(Ctx.getDouble(), 8), nullptr);
  const LayoutEntry *Tail = Table.lookup(Ctx.getDouble(), 16);
  ASSERT_NE(Tail, nullptr);
  EXPECT_EQ(Tail->RelHi, RelPosInf)
      << "FAM bounds extend to the allocation end";
}

TEST(LayoutTest, TableIsDeterministicAndIndexed) {
  TypeContext Ctx;
  RecordType *R = RecordBuilder(Ctx, TypeKind::Struct, "big")
                      .addField("a", Ctx.getArray(Ctx.getInt(), 16))
                      .addField("b", Ctx.getDouble())
                      .addField("c", Ctx.getPointer(Ctx.getChar()))
                      .finish();
  const LayoutTable &T1 = R->layout();
  const LayoutTable &T2 = R->layout();
  EXPECT_EQ(&T1, &T2) << "layout is built once and cached";
  EXPECT_GT(T1.numEntries(), 0u);
  EXPECT_GT(T1.memoryBytes(), 0u);
  // Every listed entry must be findable through the index.
  for (const LayoutEntry &E : T1.entries()) {
    const LayoutEntry *Found = T1.lookup(E.Key, E.Offset);
    ASSERT_NE(Found, nullptr);
    EXPECT_EQ(Found->RelLo, E.RelLo);
    EXPECT_EQ(Found->RelHi, E.RelHi);
  }
}

namespace {

/// Property sweep: every non-end entry of a record layout stays within
/// [0, sizeof(T)] and its bounds contain the probe position.
class LayoutInvariantTest : public ::testing::TestWithParam<int> {};

} // namespace

TEST_P(LayoutInvariantTest, EntriesAreWellFormed) {
  TypeContext Ctx;
  // Build a pseudo-random record from the seed.
  unsigned Seed = GetParam();
  RecordBuilder B(Ctx, Seed % 2 ? TypeKind::Struct : TypeKind::Union,
                  "rand");
  const TypeInfo *Pool[] = {
      Ctx.getChar(),
      Ctx.getInt(),
      Ctx.getDouble(),
      Ctx.getPointer(Ctx.getInt()),
      Ctx.getArray(Ctx.getShort(), 5),
      Ctx.getArray(Ctx.getArray(Ctx.getFloat(), 2), 3),
  };
  unsigned State = Seed * 2654435761u + 1;
  unsigned NumFields = State % 5 + 1;
  for (unsigned I = 0; I < NumFields; ++I) {
    State = State * 1664525u + 1013904223u;
    B.addField("f" + std::to_string(I), Pool[State % std::size(Pool)]);
  }
  RecordType *R = B.finish();
  const LayoutTable &Table = R->layout();
  for (const LayoutEntry &E : Table.entries()) {
    EXPECT_LE(E.Offset, R->size()) << R->str();
    if (E.RelLo != RelNegInf) {
      EXPECT_LE(E.RelLo, 0) << "bounds must start at or before the probe";
      EXPECT_GE((int64_t)E.Offset + E.RelLo, 0)
          << "bounds must not precede the object";
    }
    if (E.RelHi != RelPosInf) {
      EXPECT_GE(E.RelHi, 0);
      // Entries mirrored at offset sizeof(T) describe element 1 of a
      // multi-element allocation, hence the 2x slack.
      EXPECT_LE((int64_t)E.Offset + E.RelHi, 2 * (int64_t)R->size())
          << "bounds must stay within the element pair";
    }
    if (!E.IsEnd && E.RelHi != RelPosInf) {
      EXPECT_GT(E.RelHi, E.RelLo) << "non-end entries are non-empty";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LayoutInvariantTest,
                         ::testing::Range(0, 40));
