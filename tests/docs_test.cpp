//===- tests/docs_test.cpp - Documentation link integrity -----------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Broken-link gate for the docs/ tree and README.md: every relative
/// markdown link (`[text](path)`) must resolve to an existing file or
/// directory in the repository. External (http/https/mailto) links and
/// pure in-page anchors are skipped; a `path#anchor` link is checked
/// for its file part. The CI docs job runs exactly this test, so a doc
/// rename that leaves a dangling reference fails the build, not a
/// reader.
///
/// EFFSAN_SOURCE_DIR is injected by CMake.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

#ifndef EFFSAN_SOURCE_DIR
#error "EFFSAN_SOURCE_DIR must point at the repository root"
#endif

const fs::path Root = EFFSAN_SOURCE_DIR;

/// The markdown files whose links are enforced.
std::vector<fs::path> docFiles() {
  std::vector<fs::path> Files = {Root / "README.md"};
  for (const auto &Entry : fs::directory_iterator(Root / "docs"))
    if (Entry.path().extension() == ".md")
      Files.push_back(Entry.path());
  return Files;
}

std::string slurp(const fs::path &P) {
  std::ifstream In(P);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

bool isExternal(const std::string &Target) {
  return Target.starts_with("http://") || Target.starts_with("https://") ||
         Target.starts_with("mailto:");
}

} // namespace

TEST(Docs, TreeExists) {
  ASSERT_TRUE(fs::exists(Root / "docs")) << Root;
  EXPECT_TRUE(fs::exists(Root / "docs" / "ARCHITECTURE.md"));
  EXPECT_TRUE(fs::exists(Root / "docs" / "ABI.md"));
  EXPECT_TRUE(fs::exists(Root / "docs" / "REPORT_FORMAT.md"));
  EXPECT_TRUE(fs::exists(Root / "docs" / "BYTECODE.md"));
}

TEST(Docs, ReadmeLinksTheDocsTree) {
  std::string Readme = slurp(Root / "README.md");
  EXPECT_NE(Readme.find("docs/ARCHITECTURE.md"), std::string::npos);
  EXPECT_NE(Readme.find("docs/ABI.md"), std::string::npos);
  EXPECT_NE(Readme.find("docs/REPORT_FORMAT.md"), std::string::npos);
  EXPECT_NE(Readme.find("docs/BYTECODE.md"), std::string::npos);
}

TEST(Docs, NoBrokenRelativeLinks) {
  // Markdown inline links, ignoring images and reference-style defs.
  std::regex LinkRe(R"(\[[^\]]*\]\(([^)\s]+)\))");
  unsigned Checked = 0;
  for (const fs::path &File : docFiles()) {
    std::string Text = slurp(File);
    ASSERT_FALSE(Text.empty()) << File;
    for (std::sregex_iterator It(Text.begin(), Text.end(), LinkRe), End;
         It != End; ++It) {
      std::string Target = (*It)[1];
      if (isExternal(Target) || Target.starts_with("#"))
        continue;
      // Strip an in-page anchor from a file link.
      if (size_t Hash = Target.find('#'); Hash != std::string::npos)
        Target = Target.substr(0, Hash);
      if (Target.empty())
        continue;
      fs::path Resolved = File.parent_path() / Target;
      EXPECT_TRUE(fs::exists(Resolved))
          << File.filename() << " links to missing target: " << Target;
      ++Checked;
    }
  }
  EXPECT_GT(Checked, 10u) << "link extraction regressed";
}

TEST(Docs, StackGlobalSectionsArePinned) {
  // PR 9's doc surface: the architecture section, the ABI 1.8
  // catalogue + changelog row, and the report-format coverage of the
  // new error class must not silently disappear in a rewrite.
  std::string Arch = slurp(Root / "docs" / "ARCHITECTURE.md");
  EXPECT_NE(Arch.find("## Stack & global objects"), std::string::npos);
  EXPECT_NE(Arch.find("use-after-return quarantine"), std::string::npos);
  EXPECT_NE(Arch.find("Epoch-guarded TLS pools"), std::string::npos);
  EXPECT_NE(Arch.find("effsan_globals_register"), std::string::npos);

  std::string Abi = slurp(Root / "docs" / "ABI.md");
  EXPECT_NE(Abi.find("### 1.8 — typed stack & global objects"),
            std::string::npos);
  EXPECT_NE(Abi.find("effsan_stack_enter"), std::string::npos);
  EXPECT_NE(Abi.find("effsan_stack_alloc_typed"), std::string::npos);
  EXPECT_NE(Abi.find("effsan_object_stats"), std::string::npos);
  EXPECT_NE(Abi.find("EFFSAN_ERROR_STACK_USE_AFTER_RETURN"),
            std::string::npos);
  EXPECT_NE(Abi.find("| 1.8 | PR 9 |"), std::string::npos)
      << "changelog row missing";

  std::string Report = slurp(Root / "docs" / "REPORT_FORMAT.md");
  EXPECT_NE(Report.find("\"STACK USE-AFTER-RETURN ERROR\""),
            std::string::npos)
      << "grammar must list the new kind";
  EXPECT_NE(
      Report.find("STACK USE-AFTER-RETURN ERROR at uar.c:9:12 in main: "
                  "allocated (<stack-free>), used as (int) at offset 0 "
                  "[use of stack object after frame return]"),
      std::string::npos)
      << "worked example missing";
}

TEST(Docs, ResilienceSectionsArePinned) {
  // PR 10's doc surface: the resilience guide (fault-point catalogue,
  // health state machine, replay workflow), the ABI 1.9 catalogue +
  // changelog row, and the README/SERVICE coverage.
  ASSERT_TRUE(fs::exists(Root / "docs" / "RESILIENCE.md"));
  std::string Res = slurp(Root / "docs" / "RESILIENCE.md");
  for (const char *Point :
       {"heap_exhausted", "heap_slice_exhausted", "heap_magazine_refill",
        "heap_quarantine_overrun", "ring_full", "site_register",
        "drain_stall", "snapshot_hook", "governor_misfire"})
    EXPECT_NE(Res.find(Point), std::string::npos)
        << "catalogue missing fault point: " << Point;
  EXPECT_NE(Res.find("## Deterministic replay"), std::string::npos);
  EXPECT_NE(Res.find("### Health state machine"), std::string::npos);
  EXPECT_NE(Res.find("EFFSAN_FAULTS"), std::string::npos);
  EXPECT_NE(Res.find("count:N@S"), std::string::npos)
      << "spec grammar missing";

  std::string Abi = slurp(Root / "docs" / "ABI.md");
  EXPECT_NE(Abi.find("### 1.9 — resilience"), std::string::npos);
  EXPECT_NE(Abi.find("effsan_fault_configure"), std::string::npos);
  EXPECT_NE(Abi.find("effsan_service_health"), std::string::npos);
  EXPECT_NE(Abi.find("effsan_service_checkout_hint"), std::string::npos);
  EXPECT_NE(Abi.find("EFFSAN_ERROR_RESOURCE_EXHAUSTED"), std::string::npos);
  EXPECT_NE(Abi.find("| 1.9 | PR 10 |"), std::string::npos)
      << "changelog row missing";

  std::string Service = slurp(Root / "docs" / "SERVICE.md");
  EXPECT_NE(Service.find("## Self-healing and health (since 1.9)"),
            std::string::npos);
  EXPECT_NE(Service.find("\"ring_fallbacks\""), std::string::npos)
      << "snapshot schema must carry the resilience counters";

  std::string Readme = slurp(Root / "README.md");
  EXPECT_NE(Readme.find("## Resilience"), std::string::npos);
  EXPECT_NE(Readme.find("docs/RESILIENCE.md"), std::string::npos);
}
