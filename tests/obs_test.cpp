//===- tests/obs_test.cpp - Observability layer tests ---------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Covers src/obs/ and its wiring: the SPSC TraceRing (push/pop order,
/// full-ring drop accounting), the process-wide Tracer (record ->
/// collect -> Chrome trace-event JSON export, and a writer-vs-collector
/// storm that runs under -fsanitize=thread in CI), the MetricsRegistry
/// (find-or-create identity, log2 histogram bucketing, Prometheus text
/// rendering), the SiteProfiler (per-site hit/miss counts, top-N
/// ranking, direct-map collision accounting, reset), the Runtime
/// integration (latency sampler, hot-site profiling, slow-path trace
/// events), a differential check that the Supervisor's Prometheus
/// mirror agrees with the legacy CheckCounters / heap stats, and the
/// effsan_obs_* C ABI (since 1.6).
///
/// Everything that records real data is gated on obs::compiledIn() so
/// the suite still passes (vacuously where it must) under
/// -DEFFSAN_OBS_OFF=ON.
///
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/SiteProfiler.h"
#include "obs/Trace.h"

#include "api/effsan.h"
#include "core/Effective.h"
#include "service/Supervisor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace effective;
using namespace effective::service;

namespace {

/// Restores the global observability state on scope exit so a test
/// that arms flags cannot leak them into its neighbours.
struct ObsQuiesce {
  ~ObsQuiesce() {
    obs::Tracer::instance().stop();
    obs::setFlags(0);
  }
};

/// Session options that never print to stderr.
SessionOptions quietSession() {
  SessionOptions Options;
  Options.Reporter.Mode = ReportMode::Count;
  return Options;
}

/// Parses `key value` (or `key{labels} value`, with the braces part of
/// \p Key) out of a Prometheus text exposition. Returns uint64_t(-1)
/// when the series is absent.
uint64_t metricValue(const std::string &Text, const std::string &Key) {
  std::string Needle = "\n" + Key + " ";
  size_t Pos = Text.find(Needle);
  if (Pos == std::string::npos) {
    if (Text.compare(0, Key.size() + 1, Key + " ") != 0)
      return uint64_t(-1);
    Pos = 0;
    Needle = Key + " ";
  }
  return std::strtoull(Text.c_str() + Pos + Needle.size(), nullptr, 10);
}

} // namespace

//===----------------------------------------------------------------------===//
// TraceRing
//===----------------------------------------------------------------------===//

TEST(TraceRingTest, PushPopPreservesOrderAndPayload) {
  obs::TraceRing Ring(/*Capacity=*/64, /*Tid=*/7);
  EXPECT_EQ(Ring.capacity(), 64u);
  EXPECT_EQ(Ring.tid(), 7u);
  EXPECT_EQ(Ring.size(), 0u);

  for (uint64_t I = 0; I < 10; ++I) {
    obs::TraceEvent E;
    E.Tsc = 1000 + I;
    E.Arg = I;
    E.DurTsc = static_cast<uint32_t>(I * 2);
    E.Kind = static_cast<uint16_t>(obs::EventKind::MagazineRefill);
    E.Shard = 3;
    ASSERT_TRUE(Ring.tryPush(E));
  }
  EXPECT_EQ(Ring.size(), 10u);

  obs::TraceEvent Out;
  for (uint64_t I = 0; I < 10; ++I) {
    ASSERT_TRUE(Ring.tryPop(Out)) << "event " << I;
    EXPECT_EQ(Out.Tsc, 1000 + I) << "FIFO order";
    EXPECT_EQ(Out.Arg, I);
    EXPECT_EQ(Out.DurTsc, I * 2);
    EXPECT_EQ(Out.Shard, 3);
  }
  EXPECT_FALSE(Ring.tryPop(Out)) << "drained";
  EXPECT_EQ(Ring.dropped(), 0u);
}

TEST(TraceRingTest, FullRingDropsAndCounts) {
  obs::TraceRing Ring(/*Capacity=*/100, /*Tid=*/1);
  EXPECT_EQ(Ring.capacity(), 128u) << "capacity rounds up to a power of two";

  obs::TraceEvent E;
  for (size_t I = 0; I < 128; ++I)
    ASSERT_TRUE(Ring.tryPush(E));
  EXPECT_FALSE(Ring.tryPush(E)) << "full ring refuses, never blocks";
  EXPECT_FALSE(Ring.tryPush(E));
  EXPECT_EQ(Ring.dropped(), 2u);

  // Popping one frees one slot; the writer recovers immediately.
  obs::TraceEvent Out;
  ASSERT_TRUE(Ring.tryPop(Out));
  EXPECT_TRUE(Ring.tryPush(E));
  Ring.clearDropped();
  EXPECT_EQ(Ring.dropped(), 0u);
}

//===----------------------------------------------------------------------===//
// Tracer: record -> collect -> export
//===----------------------------------------------------------------------===//

TEST(TracerTest, RecordCollectExportChromeJson) {
  if (!obs::compiledIn())
    GTEST_SKIP() << "built with EFFSAN_OBS_OFF";
  ObsQuiesce Quiesce;
  obs::Tracer &T = obs::Tracer::instance();
  ASSERT_TRUE(T.start());
  EXPECT_TRUE(obs::traceActive()) << "start() sets TraceFlag";

  T.record(obs::EventKind::CheckSlowPath, /*Shard=*/obs::NoShard,
           /*Arg=*/41);
  T.record(obs::EventKind::MagazineRefill, /*Shard=*/2, /*Arg=*/32);
  uint64_t Start = obs::now();
  T.record(obs::EventKind::DrainTick, obs::NoShard, /*Arg=*/5,
           static_cast<uint32_t>(obs::now() - Start + 1));
  T.stop();
  EXPECT_FALSE(obs::traceActive()) << "stop() clears TraceFlag";

  std::string Json;
  EXPECT_EQ(T.exportChromeJson(Json), 3u);
  const std::string Prefix = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  EXPECT_EQ(Json.rfind(Prefix, 0), 0u) << Json.substr(0, 80);
  EXPECT_EQ(Json.compare(Json.size() - 2, 2, "]}"), 0);
  // The instant events carry ph:"i", the duration event ph:"X", and
  // each kind renders with its stable name and layer category.
  EXPECT_NE(Json.find("\"name\":\"check_slow_path\",\"cat\":\"check\","
                      "\"ph\":\"i\""),
            std::string::npos)
      << Json;
  EXPECT_NE(Json.find("\"name\":\"magazine_refill\",\"cat\":\"alloc\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"drain_tick\",\"cat\":\"service\","
                      "\"ph\":\"X\""),
            std::string::npos)
      << Json;
  EXPECT_NE(Json.find("\"args\":{\"arg\":41,\"shard\":-1}"),
            std::string::npos)
      << "NoShard renders as -1";
  EXPECT_NE(Json.find("\"shard\":2}"), std::string::npos);
}

TEST(TracerTest, StartDropsStaleEventsFromThePreviousRun) {
  if (!obs::compiledIn())
    GTEST_SKIP() << "built with EFFSAN_OBS_OFF";
  ObsQuiesce Quiesce;
  obs::Tracer &T = obs::Tracer::instance();
  ASSERT_TRUE(T.start());
  T.record(obs::EventKind::Steal, 0, 1);
  T.stop();

  ASSERT_TRUE(T.start()); // A fresh run must not inherit the Steal.
  T.record(obs::EventKind::QuarantineFlush, 1, 64);
  T.stop();
  std::string Json;
  EXPECT_EQ(T.exportChromeJson(Json), 1u);
  EXPECT_EQ(Json.find("\"steal\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"quarantine_flush\""), std::string::npos);
}

TEST(TracerTest, EventKindTablesCoverEveryKind) {
  for (unsigned K = 0;
       K < static_cast<unsigned>(obs::EventKind::NumEventKinds); ++K) {
    auto Kind = static_cast<obs::EventKind>(K);
    EXPECT_STRNE(obs::eventKindName(Kind), "") << "kind " << K;
    const char *Cat = obs::eventKindCategory(Kind);
    EXPECT_TRUE(std::strcmp(Cat, "check") == 0 ||
                std::strcmp(Cat, "alloc") == 0 ||
                std::strcmp(Cat, "concurrent") == 0 ||
                std::strcmp(Cat, "service") == 0 ||
                std::strcmp(Cat, "resilience") == 0)
        << "kind " << K << " category " << Cat;
  }
}

/// The TSan target: writers record into their thread rings while the
/// main thread collects concurrently. Small rings force the drop path
/// too. Runs under -fsanitize=thread in the CI tsan job.
TEST(TracerStormTest, ConcurrentRecordersAndCollector) {
  if (!obs::compiledIn())
    GTEST_SKIP() << "built with EFFSAN_OBS_OFF";
  ObsQuiesce Quiesce;
  obs::Tracer &T = obs::Tracer::instance();
  ASSERT_TRUE(T.start(/*RingCapacity=*/256));

  constexpr int Writers = 4;
  constexpr uint64_t PerWriter = 20'000;
  std::atomic<bool> Go{false};
  std::vector<std::thread> Threads;
  for (int W = 0; W < Writers; ++W)
    Threads.emplace_back([&, W] {
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      for (uint64_t I = 0; I < PerWriter; ++I)
        T.record(static_cast<obs::EventKind>(
                     I % static_cast<uint64_t>(obs::EventKind::NumEventKinds)),
                 static_cast<uint16_t>(W), I);
    });

  Go.store(true, std::memory_order_release);
  for (int I = 0; I < 200; ++I) {
    T.collect();
    std::this_thread::yield();
  }
  for (std::thread &Th : Threads)
    Th.join();
  T.stop();
  T.collect();

  // Every event is accounted for exactly once: collected or dropped.
  EXPECT_EQ(T.collectedSize() + T.dropped(), Writers * PerWriter);
  EXPECT_LE(T.collectedSize(), obs::Tracer::MaxCollected);
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

TEST(MetricsTest, FindOrCreateReturnsTheSameSeries) {
  obs::MetricsRegistry Reg;
  obs::Counter &A = Reg.counter("requests_total", "Requests");
  obs::Counter &B = Reg.counter("requests_total", "Requests");
  EXPECT_EQ(&A, &B) << "same (name, labels) -> same object";

  obs::Counter &C = Reg.counter("requests_total", "Requests",
                                "code=\"500\"");
  EXPECT_NE(&A, &C) << "different labels -> distinct series";

  A.add();
  A.add(3);
  EXPECT_EQ(B.value(), 4u) << "aliases observe each other's bumps";
  C.set(9);
  EXPECT_EQ(C.value(), 9u);

  obs::Gauge &G = Reg.gauge("depth", "Queue depth");
  G.set(-5);
  EXPECT_EQ(G.value(), -5);
}

TEST(MetricsTest, HistogramBucketsByBitWidth) {
  obs::Histogram H;
  H.observe(0);    // bit_width(0) = 0
  H.observe(1);    // 1
  H.observe(3);    // 2
  H.observe(1024); // 11
  EXPECT_EQ(H.count(), 4u);
  EXPECT_EQ(H.sum(), 1028u);
  EXPECT_EQ(H.bucket(0), 1u);
  EXPECT_EQ(H.bucket(1), 1u);
  EXPECT_EQ(H.bucket(2), 1u);
  EXPECT_EQ(H.bucket(11), 1u);
  EXPECT_EQ(H.bucket(3), 0u);

  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sum(), 0u);
  EXPECT_EQ(H.bucket(11), 0u);
}

TEST(MetricsTest, RenderEmitsPrometheusTextExposition) {
  obs::MetricsRegistry Reg;
  Reg.counter("effsan_test_checks_total", "Checks", "kind=\"type\"").add(7);
  Reg.counter("effsan_test_checks_total", "Checks", "kind=\"bounds\"")
      .add(2);
  Reg.gauge("effsan_test_depth", "Depth").set(-3);
  obs::Histogram &H =
      Reg.histogram("effsan_test_latency_ticks", "Latency");
  H.observe(1);
  H.observe(5); // bit_width 3 -> cumulative le="7".

  std::string Out;
  Reg.render(Out);
  // One HELP/TYPE header per family even when labels split the series.
  EXPECT_NE(Out.find("# HELP effsan_test_checks_total Checks\n"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("# TYPE effsan_test_checks_total counter\n"),
            std::string::npos);
  size_t First = Out.find("# TYPE effsan_test_checks_total");
  EXPECT_EQ(Out.find("# TYPE effsan_test_checks_total", First + 1),
            std::string::npos)
      << "family header rendered once";
  EXPECT_EQ(metricValue(Out, "effsan_test_checks_total{kind=\"type\"}"), 7u);
  EXPECT_EQ(metricValue(Out, "effsan_test_checks_total{kind=\"bounds\"}"),
            2u);
  EXPECT_NE(Out.find("effsan_test_depth -3\n"), std::string::npos) << Out;
  // Cumulative histogram buckets, then +Inf, _sum and _count.
  EXPECT_EQ(metricValue(Out, "effsan_test_latency_ticks_bucket{le=\"1\"}"),
            1u);
  EXPECT_EQ(metricValue(Out, "effsan_test_latency_ticks_bucket{le=\"7\"}"),
            2u);
  EXPECT_EQ(metricValue(Out, "effsan_test_latency_ticks_bucket{le=\"+Inf\"}"),
            2u);
  EXPECT_EQ(metricValue(Out, "effsan_test_latency_ticks_sum"), 6u);
  EXPECT_EQ(metricValue(Out, "effsan_test_latency_ticks_count"), 2u);
}

//===----------------------------------------------------------------------===//
// SiteProfiler
//===----------------------------------------------------------------------===//

TEST(SiteProfilerTest, CountsAndRanksSites) {
  if (!obs::compiledIn())
    GTEST_SKIP() << "built with EFFSAN_OBS_OFF";
  obs::SiteProfiler Prof(/*Slots=*/256);
  for (int I = 0; I < 30; ++I)
    Prof.noteHit(5);
  Prof.noteMiss(5);
  for (int I = 0; I < 10; ++I)
    Prof.noteHit(9);

  std::vector<obs::SiteProfile> Top = Prof.topSites(8);
  ASSERT_EQ(Top.size(), 2u);
  EXPECT_EQ(Top[0].Site, 5u) << "ranked by hits+misses, descending";
  EXPECT_EQ(Top[0].Hits, 30u);
  EXPECT_EQ(Top[0].Misses, 1u);
  EXPECT_EQ(Top[1].Site, 9u);
  EXPECT_EQ(Top[1].Hits, 10u);

  EXPECT_EQ(Prof.topSites(1).size(), 1u) << "N truncates";
  EXPECT_EQ(Prof.conflicts(), 0u);

  Prof.reset();
  EXPECT_TRUE(Prof.topSites(8).empty());
}

TEST(SiteProfilerTest, DirectMapCollisionsAreCountedNotChained) {
  if (!obs::compiledIn())
    GTEST_SKIP() << "built with EFFSAN_OBS_OFF";
  // 64 slots: sites 0 and 64 both hash (Fibonacci, odd multiplier) to
  // slot 0, so the second claimant is dropped and counted.
  obs::SiteProfiler Prof(/*Slots=*/64);
  Prof.noteHit(0);
  Prof.noteHit(64);
  Prof.noteMiss(64);
  EXPECT_EQ(Prof.conflicts(), 2u);

  std::vector<obs::SiteProfile> Top = Prof.topSites(8);
  ASSERT_EQ(Top.size(), 1u) << "the colliding site never claims a slot";
  EXPECT_EQ(Top[0].Site, 0u);
  EXPECT_EQ(Top[0].Hits, 1u);
}

//===----------------------------------------------------------------------===//
// Runtime integration
//===----------------------------------------------------------------------===//

TEST(ObsRuntimeTest, LatencySamplerFillsTheGlobalHistograms) {
  if (!obs::compiledIn())
    GTEST_SKIP() << "built with EFFSAN_OBS_OFF";
  ObsQuiesce Quiesce;
  uint64_t FastBefore = obs::checkFastLatency().count();
  uint64_t SlowBefore = obs::checkSlowLatency().count();

  Sanitizer S(TypeContext::global(), quietSession());
  TypeContext &Ctx = S.types();
  auto *P = static_cast<int *>(S.malloc(sizeof(int), Ctx.getInt()));
  obs::setFlags(obs::MetricsFlag);
  // A fresh runtime's check counter starts at 0, so the very first
  // check is sampled ((0 & CheckSampleMask) == 0); the rest make more
  // decimation points pass by.
  for (unsigned I = 0; I < 3 * (obs::CheckSampleMask + 1); ++I)
    S.typeCheck(P, Ctx.getInt());
  obs::setFlags(0);
  S.free(P);

  uint64_t Sampled = (obs::checkFastLatency().count() - FastBefore) +
                     (obs::checkSlowLatency().count() - SlowBefore);
  EXPECT_GE(Sampled, 2u);
  EXPECT_LE(Sampled, 8u) << "decimation: 1-in-" << (obs::CheckSampleMask + 1);
}

TEST(ObsRuntimeTest, ProfilerAttributesHitsAndMissesToTheSite) {
  if (!obs::compiledIn())
    GTEST_SKIP() << "built with EFFSAN_OBS_OFF";
  ObsQuiesce Quiesce;
  Sanitizer S(TypeContext::global(), quietSession());
  TypeContext &Ctx = S.types();
  auto *P = static_cast<int *>(S.malloc(sizeof(int), Ctx.getInt()));

  obs::setFlags(obs::ProfileFlag);
  constexpr unsigned N = 1000;
  for (unsigned I = 0; I < N; ++I)
    S.typeCheck(P, Ctx.getInt()); // Unsited: routed to the pseudo-site.
  obs::setFlags(0);
  S.free(P);

  std::vector<obs::SiteProfile> Top = S.runtime().profiler().topSites(4);
  ASSERT_FALSE(Top.empty());
  // First check misses the inline cache (recorded exactly), the rest
  // hit (sampled 1-in-16, counter seeded at 0 so the first hit is
  // taken). ~999/16 samples, with slack for allocation-path checks.
  EXPECT_GE(Top[0].Misses, 1u);
  EXPECT_GE(Top[0].Hits, N / 16 / 2);
  EXPECT_LE(Top[0].Hits, N);
}

TEST(ObsRuntimeTest, CacheMissesEmitCheckSlowPathTraceEvents) {
  if (!obs::compiledIn())
    GTEST_SKIP() << "built with EFFSAN_OBS_OFF";
  ObsQuiesce Quiesce;
  Sanitizer S(TypeContext::global(), quietSession());
  TypeContext &Ctx = S.types();
  auto *P = static_cast<int *>(S.malloc(sizeof(int), Ctx.getInt()));

  ASSERT_TRUE(obs::Tracer::instance().start());
  S.typeCheck(P, Ctx.getInt()); // Cold cache: the slow path fires.
  obs::Tracer::instance().stop();
  S.free(P);

  std::string Json;
  obs::Tracer::instance().exportChromeJson(Json);
  EXPECT_NE(Json.find("\"check_slow_path\""), std::string::npos) << Json;
}

//===----------------------------------------------------------------------===//
// Differential: the Prometheus mirror vs the legacy counters
//===----------------------------------------------------------------------===//

TEST(ObsDifferentialTest, ServiceMetricsAgreeWithLegacyStats) {
  ServiceOptions Options;
  Options.Shards = 1;
  Options.Reporter.Mode = ReportMode::Count;
  Options.DrainIntervalMicros = 60'000'000;
  Supervisor Sup(Options);
  TenantId T = Sup.openTenant("diff");
  ASSERT_NE(T, NoTenant);
  {
    Supervisor::Lease L = Sup.lease(T);
    ASSERT_TRUE(static_cast<bool>(L));
    TypeContext &Ctx = L->types();
    auto *P = static_cast<int *>(L->malloc(16 * sizeof(int), Ctx.getInt()));
    for (int I = 0; I < 100; ++I)
      L->boundsGet(P);
    for (int I = 0; I < 50; ++I)
      L->typeCheck(P, Ctx.getInt());
    Bounds B = L->boundsGet(P);
    L->boundsCheck(P + 16, sizeof(int), B); // One drained error event.
    L->free(P);
  }
  Sup.tick();

  // metricsText() refreshes the mirror unconditionally (the obs flag
  // only gates the per-tick refresh), so this holds with obs disarmed
  // and under EFFSAN_OBS_OFF alike.
  std::string Text = Sup.metricsText();
  ServiceStats S = Sup.stats();
  auto C = Sup.pool().shard(0).counters().snapshot();

  EXPECT_EQ(metricValue(Text, "effsan_checks_total{kind=\"type\"}"),
            C.TypeChecks);
  EXPECT_EQ(metricValue(Text, "effsan_checks_total{kind=\"bounds_get\"}"),
            C.BoundsGets);
  EXPECT_EQ(metricValue(Text, "effsan_checks_total{kind=\"bounds\"}"),
            C.BoundsChecks);
  EXPECT_EQ(metricValue(Text, "effsan_check_cache_hits_total"),
            C.TypeCheckCacheHits);
  EXPECT_EQ(metricValue(Text, "effsan_check_cache_misses_total"),
            C.TypeCheckCacheMisses);
  EXPECT_EQ(metricValue(Text, "effsan_service_leases_granted_total"),
            S.LeasesGranted);
  EXPECT_EQ(metricValue(Text, "effsan_service_drained_events_total"),
            S.DrainedEvents);
  EXPECT_EQ(metricValue(Text, "effsan_service_issues_found_total"),
            S.IssuesFound);
  EXPECT_EQ(metricValue(Text, "effsan_heap_allocs_total"),
            Sup.pool().heap().stats().NumAllocs);
  EXPECT_EQ(metricValue(Text, "effsan_heap_frees_total"),
            Sup.pool().heap().stats().NumFrees);
  EXPECT_EQ(metricValue(Text, "effsan_service_tenants_open"), 1u);
}

//===----------------------------------------------------------------------===//
// The effsan_obs_* C ABI (since 1.6)
//===----------------------------------------------------------------------===//

namespace {

void appendWrite(const char *Data, size_t Len, void *UserData) {
  static_cast<std::string *>(UserData)->append(Data, Len);
}

} // namespace

TEST(ObsAbiTest, VersionAndCompiledInAgreeWithTheBuild) {
  EXPECT_GE(EFFSAN_ABI_VERSION_MINOR, 6);
  EXPECT_EQ(effsan_obs_compiled_in() != 0, obs::compiledIn());
}

TEST(ObsAbiTest, EnableReturnsThePreviousSet) {
  if (!obs::compiledIn()) {
    EXPECT_EQ(effsan_obs_enable(EFFSAN_OBS_METRICS), 0u);
    EXPECT_EQ(effsan_obs_flags(), 0u) << "no-op when compiled out";
    return;
  }
  ObsQuiesce Quiesce;
  EXPECT_EQ(effsan_obs_enable(EFFSAN_OBS_METRICS), 0u);
  EXPECT_EQ(effsan_obs_flags(), uint32_t(EFFSAN_OBS_METRICS));
  EXPECT_EQ(effsan_obs_enable(EFFSAN_OBS_TRACE | EFFSAN_OBS_PROFILE),
            uint32_t(EFFSAN_OBS_METRICS));
  EXPECT_EQ(effsan_obs_flags(),
            uint32_t(EFFSAN_OBS_TRACE | EFFSAN_OBS_PROFILE));
  EXPECT_EQ(effsan_obs_enable(0xffffffffu),
            uint32_t(EFFSAN_OBS_TRACE | EFFSAN_OBS_PROFILE));
  EXPECT_EQ(effsan_obs_flags(),
            uint32_t(EFFSAN_OBS_TRACE | EFFSAN_OBS_METRICS |
                     EFFSAN_OBS_PROFILE))
      << "unknown bits are masked off";
  effsan_obs_enable(0);
}

TEST(ObsAbiTest, TraceRoundTripThroughTheCallback) {
  if (!obs::compiledIn()) {
    EXPECT_EQ(effsan_obs_trace_start(0), 0);
    return;
  }
  ObsQuiesce Quiesce;
  ASSERT_NE(effsan_obs_trace_start(/*ring_capacity=*/0), 0);
  EXPECT_NE(effsan_obs_flags() & EFFSAN_OBS_TRACE, 0u)
      << "trace_start arms the flag itself";

  effsan_options Options;
  effsan_options_init(&Options);
  Options.log_errors = 0;
  effsan_session *S = effsan_session_create(&Options);
  ASSERT_NE(S, nullptr);
  effsan_type IntTy = effsan_type_primitive(S, EFFSAN_PRIM_INT);
  void *P = effsan_malloc(S, sizeof(int), IntTy);
  effsan_type_check(S, P, IntTy); // Cold cache: records a slow path.
  effsan_free(S, P);
  effsan_session_destroy(S);
  effsan_obs_trace_stop();
  EXPECT_EQ(effsan_obs_flags() & EFFSAN_OBS_TRACE, 0u);

  std::string Json;
  EXPECT_GE(effsan_obs_trace_export(appendWrite, &Json), 1u);
  EXPECT_NE(Json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(Json.find("\"check_slow_path\""), std::string::npos) << Json;
  effsan_obs_trace_dropped(); // Callable any time; value is cumulative.
}

TEST(ObsAbiTest, HotSitesResolveThroughTheSiteTable) {
  if (!obs::compiledIn()) {
    effsan_obs_site Sites[1];
    EXPECT_EQ(effsan_obs_hot_sites(nullptr, Sites, 1), 0u);
    return;
  }
  ObsQuiesce Quiesce;
  effsan_options Options;
  effsan_options_init(&Options);
  Options.log_errors = 0;
  effsan_session *S = effsan_session_create(&Options);
  ASSERT_NE(S, nullptr);
  effsan_type IntTy = effsan_type_primitive(S, EFFSAN_PRIM_INT);

  effsan_site_info Info[1];
  std::memset(Info, 0, sizeof(Info));
  Info[0].line = 7;
  Info[0].column = 3;
  Info[0].kind = EFFSAN_CHECK_TYPE;
  Info[0].function = "hot_loop";
  Info[0].static_type = IntTy;
  uint32_t Base = effsan_site_table_register(S, "hot.c", Info, 1);
  ASSERT_NE(Base, EFFSAN_NO_SITE);

  int *P = static_cast<int *>(effsan_malloc(S, 10 * sizeof(int), IntTy));
  effsan_obs_enable(EFFSAN_OBS_PROFILE);
  effsan_bounds B = effsan_type_check_at(S, P, IntTy, Base);
  for (int I = 0; I < 999; ++I)
    B = effsan_type_check_at(S, P, IntTy, Base);
  effsan_obs_enable(0);
  for (int I = 0; I < 3; ++I)
    effsan_bounds_check_at(S, P + 10, sizeof(int), B, Base);

  effsan_obs_site Hot[8];
  uint32_t N = effsan_obs_hot_sites(S, Hot, 8);
  ASSERT_GE(N, 1u);
  ASSERT_LE(N, 8u);
  // The registered site dominates the profile (the only other
  // candidates are allocation-path pseudo-sites).
  EXPECT_EQ(Hot[0].site, Base);
  EXPECT_GE(Hot[0].misses, 1u) << "cold-cache first check, exact";
  EXPECT_GE(Hot[0].hits, 1u) << "sampled 1-in-16, seeded at 0";
  EXPECT_EQ(Hot[0].error_events, 3u) << "joined from the reporter";
  EXPECT_STREQ(Hot[0].file, "hot.c");
  EXPECT_EQ(Hot[0].line, 7u);
  EXPECT_EQ(Hot[0].column, 3u);
  EXPECT_STREQ(Hot[0].function, "hot_loop");

  EXPECT_EQ(effsan_obs_hot_sites(S, nullptr, 8), 0u);
  EXPECT_EQ(effsan_obs_hot_sites(nullptr, Hot, 8), 0u);

  effsan_free(S, P);
  effsan_session_destroy(S);
}

TEST(ObsAbiTest, MetricsRenderProducesPrometheusText) {
  // Force the latency histograms into the global registry so the
  // render has something to say even before any check was sampled.
  // (Under EFFSAN_OBS_OFF the sampler never runs, so the registry may
  // be empty — render must still be a safe no-op.)
  obs::checkFastLatency();
  std::string Global;
  effsan_obs_metrics_render(appendWrite, &Global);
  EXPECT_NE(Global.find("# TYPE"), std::string::npos) << Global;

  effsan_service_options Opts;
  effsan_service_options_init(&Opts);
  Opts.shards = 1;
  Opts.log_errors = 0;
  Opts.drain_interval_usec = 60'000'000;
  effsan_service *Svc = effsan_service_create(&Opts);
  ASSERT_NE(Svc, nullptr);
  effsan_tenant T = effsan_service_tenant_open(Svc, "m", nullptr);
  ASSERT_NE(T, EFFSAN_NO_TENANT);

  std::string Text;
  effsan_service_metrics_render(Svc, appendWrite, &Text);
  EXPECT_EQ(metricValue(Text, "effsan_service_tenants_opened_total"), 1u);
  EXPECT_EQ(metricValue(Text, "effsan_service_tenants_open"), 1u);
  EXPECT_NE(Text.find("# TYPE effsan_service_drain_tick_duration_ticks "
                      "histogram"),
            std::string::npos);
  effsan_service_destroy(Svc);
}

TEST(ObsAbiTest, PoolHotSitesMergeAcrossShards) {
  effsan_pool_options Options;
  effsan_pool_options_init(&Options);
  Options.log_errors = 0;
  Options.shards = 2;
  effsan_pool *Pool = effsan_pool_create(&Options);
  ASSERT_NE(Pool, nullptr);

  if (!obs::compiledIn()) {
    effsan_obs_site Sites[1];
    EXPECT_EQ(effsan_pool_hot_sites(Pool, Sites, 1), 0u);
    effsan_pool_destroy(Pool);
    return;
  }
  ObsQuiesce Quiesce;

  effsan_session *S0 = effsan_pool_shard(Pool, 0);
  effsan_session *S1 = effsan_pool_shard(Pool, 1);
  effsan_type IntTy = effsan_type_primitive(S0, EFFSAN_PRIM_INT);

  // Registration through ANY shard session is pool-wide, so both
  // shards profile the same site id.
  effsan_site_info Info[1];
  std::memset(Info, 0, sizeof(Info));
  Info[0].line = 11;
  Info[0].column = 5;
  Info[0].kind = EFFSAN_CHECK_TYPE;
  Info[0].function = "shared_loop";
  Info[0].static_type = IntTy;
  uint32_t Base = effsan_site_table_register(S0, "pool.c", Info, 1);
  ASSERT_NE(Base, EFFSAN_NO_SITE);

  int *P0 = static_cast<int *>(effsan_malloc(S0, 8 * sizeof(int), IntTy));
  int *P1 = static_cast<int *>(effsan_malloc(S1, 8 * sizeof(int), IntTy));
  effsan_obs_enable(EFFSAN_OBS_PROFILE);
  effsan_bounds B0 = effsan_type_check_at(S0, P0, IntTy, Base);
  effsan_bounds B1 = effsan_type_check_at(S1, P1, IntTy, Base);
  for (int I = 0; I < 499; ++I) {
    B0 = effsan_type_check_at(S0, P0, IntTy, Base);
    B1 = effsan_type_check_at(S1, P1, IntTy, Base);
  }
  effsan_obs_enable(0);
  // Errors at the site land in the central reporter regardless of
  // which shard trips them.
  effsan_bounds_check_at(S0, P0 + 8, sizeof(int), B0, Base);
  effsan_bounds_check_at(S1, P1 + 8, sizeof(int), B1, Base);

  // Per-shard rankings see only their own shard's traffic...
  effsan_obs_site Shard0[8];
  uint32_t N0 = effsan_obs_hot_sites(S0, Shard0, 8);
  ASSERT_GE(N0, 1u);
  EXPECT_EQ(Shard0[0].site, Base);

  // ...while the pool merge sums both shards into ONE entry.
  effsan_obs_site Hot[8];
  uint32_t N = effsan_pool_hot_sites(Pool, Hot, 8);
  ASSERT_GE(N, 1u);
  ASSERT_LE(N, 8u);
  EXPECT_EQ(Hot[0].site, Base);
  EXPECT_GE(Hot[0].misses, 2u) << "both shards' cold-cache first checks";
  EXPECT_GT(Hot[0].hits + Hot[0].misses,
            Shard0[0].hits + Shard0[0].misses)
      << "the merged entry carries more traffic than any one shard";
  EXPECT_EQ(Hot[0].error_events, 2u) << "joined from the central drain";
  EXPECT_STREQ(Hot[0].file, "pool.c");
  EXPECT_EQ(Hot[0].line, 11u);
  EXPECT_EQ(Hot[0].column, 5u);
  EXPECT_STREQ(Hot[0].function, "shared_loop");

  EXPECT_EQ(effsan_pool_hot_sites(Pool, nullptr, 8), 0u);
  EXPECT_EQ(effsan_pool_hot_sites(nullptr, Hot, 8), 0u);

  effsan_free(S0, P0);
  effsan_free(S1, P1);
  effsan_pool_destroy(Pool);
}
