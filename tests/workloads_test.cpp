//===- tests/workloads_test.cpp - Workload integration tests --------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Integration tests over the Figure 7-10 workloads: every kernel must
/// produce the same checksum under all four instrumentation policies
/// (same work), full instrumentation must find exactly the seeded
/// issues (and only in the benchmarks the paper lists), and check
/// counters must behave (type checks only under type-checking
/// policies, etc.).
///
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include <gtest/gtest.h>

using namespace effective;
using namespace effective::workloads;

namespace {

class SpecWorkloadTest : public ::testing::TestWithParam<size_t> {
protected:
  const Workload &workload() const {
    return specWorkloads()[GetParam()];
  }
};

std::string specName(const ::testing::TestParamInfo<size_t> &Info) {
  return specWorkloads()[Info.param].Info.Name;
}

} // namespace

TEST_P(SpecWorkloadTest, ChecksumIdenticalAcrossPolicies) {
  const Workload &W = workload();
  RunStats None = runWorkload(W, PolicyKind::None, 1);
  RunStats Type = runWorkload(W, PolicyKind::Type, 1);
  RunStats Bounds = runWorkload(W, PolicyKind::Bounds, 1);
  RunStats Full = runWorkload(W, PolicyKind::Full, 1);
  EXPECT_EQ(None.Checksum, Full.Checksum) << W.Info.Name;
  EXPECT_EQ(Type.Checksum, Full.Checksum) << W.Info.Name;
  EXPECT_EQ(Bounds.Checksum, Full.Checksum) << W.Info.Name;
}

TEST_P(SpecWorkloadTest, FullInstrumentationFindsSeededIssues) {
  const Workload &W = workload();
  RunStats Full = runWorkload(W, PolicyKind::Full, 1);
  EXPECT_EQ(Full.Issues, W.Info.SeededIssues) << W.Info.Name;
}

TEST_P(SpecWorkloadTest, UninstrumentedRunsNoChecks) {
  const Workload &W = workload();
  RunStats None = runWorkload(W, PolicyKind::None, 1);
  EXPECT_EQ(None.Checks.TypeChecks, 0u) << W.Info.Name;
  EXPECT_EQ(None.Checks.BoundsChecks, 0u) << W.Info.Name;
  EXPECT_EQ(None.Issues, 0u) << W.Info.Name;
}

TEST_P(SpecWorkloadTest, FullInstrumentationChecksEverything) {
  const Workload &W = workload();
  RunStats Full = runWorkload(W, PolicyKind::Full, 1);
  EXPECT_GT(Full.Checks.TypeChecks, 0u) << W.Info.Name;
  EXPECT_GT(Full.Checks.BoundsChecks, 0u) << W.Info.Name;
}

TEST_P(SpecWorkloadTest, VariantsScaleDownChecking) {
  const Workload &W = workload();
  RunStats Full = runWorkload(W, PolicyKind::Full, 1);
  RunStats Type = runWorkload(W, PolicyKind::Type, 1);
  RunStats Bounds = runWorkload(W, PolicyKind::Bounds, 1);
  // The -type variant performs no bounds checking at all.
  EXPECT_EQ(Type.Checks.BoundsChecks, 0u) << W.Info.Name;
  // The -bounds variant never compares types.
  EXPECT_EQ(Bounds.Checks.TypeChecks, 0u) << W.Info.Name;
  EXPECT_GT(Bounds.Checks.BoundsGets, 0u) << W.Info.Name;
  // Full does at least as many type checks as the casts-only variant.
  EXPECT_GE(Full.Checks.TypeChecks, Type.Checks.TypeChecks)
      << W.Info.Name;
}

TEST_P(SpecWorkloadTest, IssuesAreDeterministic) {
  const Workload &W = workload();
  RunStats A = runWorkload(W, PolicyKind::Full, 1);
  RunStats B = runWorkload(W, PolicyKind::Full, 1);
  EXPECT_EQ(A.Issues, B.Issues) << W.Info.Name;
  EXPECT_EQ(A.Checksum, B.Checksum) << W.Info.Name;
  EXPECT_EQ(A.Checks.TypeChecks, B.Checks.TypeChecks) << W.Info.Name;
}

INSTANTIATE_TEST_SUITE_P(AllSpec, SpecWorkloadTest,
                         ::testing::Range<size_t>(0,
                                                  specWorkloads().size()),
                         specName);

//===----------------------------------------------------------------------===//
// Figure 7 aggregate shape
//===----------------------------------------------------------------------===//

TEST(Figure7Shape, CleanBenchmarksMatchPaper) {
  // The paper reports zero issues for mcf, gobmk, hmmer, sjeng,
  // libquantum, omnetpp and astar.
  for (const Workload &W : specWorkloads()) {
    std::string_view Name = W.Info.Name;
    bool PaperClean = Name == "mcf" || Name == "gobmk" ||
                      Name == "hmmer" || Name == "sjeng" ||
                      Name == "libquantum" || Name == "omnetpp" ||
                      Name == "astar";
    EXPECT_EQ(W.Info.SeededIssues == 0, PaperClean) << Name;
  }
}

TEST(Figure7Shape, BoundsChecksOutnumberTypeChecks) {
  // Paper totals: 2193.0 billion type vs 8836.3 billion bounds checks
  // (~4x). Our kernels must reproduce the direction of this ratio.
  uint64_t Type = 0, Bounds = 0;
  for (const Workload &W : specWorkloads()) {
    RunStats Full = runWorkload(W, PolicyKind::Full, 1);
    Type += Full.Checks.TypeChecks;
    Bounds += Full.Checks.BoundsChecks;
  }
  EXPECT_GT(Bounds, Type);
}

TEST(Figure7Shape, LegacyChecksAreRare) {
  // Paper: only ~1.1% of type checks were on legacy pointers.
  uint64_t Type = 0, Legacy = 0;
  for (const Workload &W : specWorkloads()) {
    RunStats Full = runWorkload(W, PolicyKind::Full, 1);
    Type += Full.Checks.TypeChecks;
    Legacy += Full.Checks.LegacyTypeChecks;
  }
  ASSERT_GT(Type, 0u);
  EXPECT_LT(static_cast<double>(Legacy) / Type, 0.05);
}

//===----------------------------------------------------------------------===//
// Figure 9 shape
//===----------------------------------------------------------------------===//

TEST(Figure9Shape, MemoryOverheadIsModest) {
  uint64_t None = 0, Full = 0;
  for (const Workload &W : specWorkloads()) {
    None += runWorkload(W, PolicyKind::None, 1).PeakHeapBytes;
    Full += runWorkload(W, PolicyKind::Full, 1).PeakHeapBytes;
  }
  ASSERT_GT(None, 0u);
  double Overhead = static_cast<double>(Full) / None;
  EXPECT_GT(Overhead, 1.0) << "metadata must cost something";
  EXPECT_LT(Overhead, 1.8) << "paper reports ~12%, far below shadow-"
                              "memory tools (~237%)";
}

//===----------------------------------------------------------------------===//
// Browser workloads (Figure 10)
//===----------------------------------------------------------------------===//

namespace {

class BrowserWorkloadTest : public ::testing::TestWithParam<size_t> {};

std::string browserName(const ::testing::TestParamInfo<size_t> &Info) {
  std::string Name = browserWorkloads()[Info.param].Info.Name;
  for (char &C : Name)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

} // namespace

TEST_P(BrowserWorkloadTest, ChecksumIdenticalAcrossPolicies) {
  const Workload &W = browserWorkloads()[GetParam()];
  RunStats None = runWorkload(W, PolicyKind::None, 1);
  RunStats Full = runWorkload(W, PolicyKind::Full, 1);
  EXPECT_EQ(None.Checksum, Full.Checksum) << W.Info.Name;
  EXPECT_EQ(Full.Issues, W.Info.SeededIssues) << W.Info.Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBrowser, BrowserWorkloadTest,
    ::testing::Range<size_t>(0, browserWorkloads().size()), browserName);
