//===- tests/bytecode_test.cpp - Tree-walker vs bytecode differential -----===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The bytecode engine's correctness contract: for every program the
/// tree-walking interpreter can run, the VM produces the same result,
/// the same output, the same executed-check counters and the same
/// error-report stream. The corpus below mirrors every runnable program
/// in interp_test.cpp and minic_test.cpp, swept under all four
/// instrumentation variants and with superinstruction fusion both on
/// and off. Steps is deliberately *not* compared: a fused
/// superinstruction executes as one bytecode step.
///
/// Also here: the disassembler round trip (parse(disassemble(P))
/// reproduces every instruction field-for-field) and a fusion
/// smoke-test pinning that hot check+access pairs actually fuse.
///
//===----------------------------------------------------------------------===//

#include "bytecode/Compiler.h"
#include "bytecode/Disasm.h"
#include "bytecode/VM.h"
#include "instrument/Pipeline.h"
#include "interp/Interp.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

using namespace effective;
using namespace effective::instrument;

namespace {

//===----------------------------------------------------------------------===//
// Corpus: every runnable program from interp_test.cpp + minic_test.cpp
//===----------------------------------------------------------------------===//

struct CorpusProgram {
  const char *Name;
  const char *Source;
};

const CorpusProgram Corpus[] = {
    // --- interp_test.cpp: clean execution ---
    {"Arithmetic",
     "int main() { return (3 + 4) * 5 - 100 / 4 + (27 % 4); }"},
    {"FibonacciRecursion", R"(
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int main() { return fib(15); }
)"},
    {"PrintBuiltins", R"(
int main() {
  print_int(42);
  print_float(2.5);
  print_str("hello world");
  return 0;
}
)"},
    {"LinkedListLength", R"(
struct node { int value; struct node *next; };
struct node *push(struct node *head, int v) {
  struct node *n = (struct node *)malloc(sizeof(struct node));
  n->value = v;
  n->next = head;
  return n;
}
int length(struct node *xs) {
  int len = 0;
  while (xs != NULL) {
    len = len + 1;
    xs = xs->next;
  }
  return len;
}
int main() {
  struct node *head = NULL;
  int i;
  for (i = 0; i < 10; i = i + 1)
    head = push(head, i);
  int len = length(head);
  while (head != NULL) {
    struct node *next = head->next;
    free(head);
    head = next;
  }
  return len;
}
)"},
    {"SumArray", R"(
int sum(int *a, int len) {
  int s = 0;
  int i;
  for (i = 0; i < len; i = i + 1)
    s = s + a[i];
  return s;
}
int main() {
  int *a = (int *)malloc(100 * sizeof(int));
  int i;
  for (i = 0; i < 100; i = i + 1)
    a[i] = i;
  int s = sum(a, 100);
  free(a);
  return s % 251;
}
)"},
    {"GlobalsStringsStructs", R"(
struct config { int verbose; double scale; };
struct config g_config;
int g_calls = 3;
double scaled(double v) {
  g_calls = g_calls + 1;
  return v * g_config.scale;
}
int main() {
  g_config.verbose = 1;
  g_config.scale = 2.5;
  double r = scaled(4.0);
  return (int)r + g_calls;
}
)"},
    {"CleanPairs", R"(
struct pair { int a; int b; };
int main() {
  struct pair *p = (struct pair *)malloc(4 * sizeof(struct pair));
  int i;
  for (i = 0; i < 4; i = i + 1) {
    p[i].a = i;
    p[i].b = 2 * i;
  }
  int total = 0;
  for (i = 0; i < 4; i = i + 1)
    total = total + p[i].a + p[i].b;
  free(p);
  return total;
}
)"},
    // --- interp_test.cpp: type confusion ---
    {"BadCast", R"(
int main() {
  int *p = (int *)malloc(8 * sizeof(int));
  float *q = (float *)p;
  float f = *q;
  free(p);
  return (int)f;
}
)"},
    {"BadCastAndSubObjectOverflow", R"(
struct S { int x[8]; };
int main() {
  struct S *s = (struct S *)malloc(sizeof(struct S));
  double *q = (double *)s;      /* bad cast, result used below */
  double d = *q;
  s->x[9] = 1;                  /* sub-object overflow */
  free(s);
  return d != 0.0;
}
)"},
    {"UnusedBadCast", R"(
struct S { int x[8]; };
int main() {
  struct S *s = (struct S *)malloc(sizeof(struct S));
  double *q = (double *)s;      /* bad cast, result never used */
  free(s);
  return 0;
}
)"},
    {"ImplicitCastThroughMemory", R"(
struct holder { int *slot; };
int main() {
  float *f = (float *)malloc(4 * sizeof(float));
  struct holder h;
  h.slot = (int *)f;
  int *p = h.slot;
  int v = *p;
  free(f);
  return v;
}
)"},
    // --- interp_test.cpp: bounds ---
    {"ObjectBoundsOverflow", R"(
int main() {
  int *a = (int *)malloc(33 * sizeof(int));
  int i;
  int total = 0;
  for (i = 0; i <= 33; i = i + 1)   /* off-by-one */
    total = total + a[i];
  free(a);
  return total != 0;
}
)"},
    {"SubObjectOverflowWithinStruct", R"(
struct account { int number[8]; float balance; };
int main() {
  struct account *a = (struct account *)malloc(sizeof(struct account));
  a->balance = 100.0;
  a->number[8] = 7;           /* clobbers balance */
  free(a);
  return 0;
}
)"},
    {"StackArrayOverflow", R"(
int main() {
  int a[4];
  int i;
  for (i = 0; i <= 4; i = i + 1)    /* off-by-one on the stack */
    a[i] = i;
  return a[0];
}
)"},
    {"NegativeIndexUnderflow", R"(
struct vec { int header; double data[4]; };
int main() {
  struct vec *v = (struct vec *)malloc(sizeof(struct vec));
  double *d = v->data;
  double x = *(d - 1);              /* underflow into header */
  free(v);
  return x != 0.0;
}
)"},
    // --- interp_test.cpp: temporal ---
    {"UseAfterFreeAtInputEvent", R"(
struct node { int value; struct node *next; };
int readValue(struct node *n) { return n->value; }
int main() {
  struct node *n = (struct node *)malloc(sizeof(struct node));
  n->value = 42;
  free(n);
  return readValue(n);            /* use after free */
}
)"},
    {"UseAfterFreeThroughReloadedPointer", R"(
struct node { int value; struct node *next; };
struct node *g_head;
int main() {
  g_head = (struct node *)malloc(sizeof(struct node));
  g_head->value = 7;
  free(g_head);
  struct node *n = g_head;        /* load of a dangling pointer */
  return n->value;
}
)"},
    {"DirectDerefAfterFree", R"(
struct node { int value; struct node *next; };
int main() {
  struct node *n = (struct node *)malloc(sizeof(struct node));
  n->value = 42;
  free(n);
  int v = n->value;               /* missed: no input event since free */
  return v;
}
)"},
    {"DoubleFree", R"(
int main() {
  int *p = (int *)malloc(16 * sizeof(int));
  free(p);
  free(p);
  return 0;
}
)"},
    {"DanglingStackPointer", R"(
int *escape() {
  int local[4];
  local[0] = 9;
  int *p = local;
  return p;
}
int main() {
  int *p = escape();
  return *p;
}
)"},
    // --- interp_test.cpp: dynamic counts + faults ---
    {"VariantsScaleExecutedChecks", R"(
int main() {
  int *a = (int *)malloc(64 * sizeof(int));
  int i;
  for (i = 0; i < 64; i = i + 1)
    a[i] = i;
  int t = 0;
  for (i = 0; i < 64; i = i + 1)
    t = t + a[i];
  free(a);
  return t % 100;
}
)"},
    {"NullDereference", R"(
int main() {
  int *p = NULL;
  return *p;
}
)"},
    // --- minic_test.cpp: runnable frontend programs ---
    {"RecordTypesAndTags", R"(
struct point { double x; double y; };
union u { int i; float f; };
struct point g;
int main() { return 0; }
)"},
    {"PointerAndArrayDeclarators", R"(
int main() {
  int a[10];
  int *p;
  int **pp;
  int m[4][3];
  return 0;
}
)"},
    {"Precedence", "int main() { return 2 + 3 * 4; }"},
    {"RedeclaredTag", R"(
struct t { int code; };
int main() { struct t x; x.code = 1; return x.code; }
)"},
    {"TypesEveryExpression", R"(
int main() {
  double d = 1.5;
  int i = 2;
  double m = d * i;
  return (int)m;
}
)"},
    {"Builtins", R"(
int main() {
  print_int(1);
  print_float(1.5);
  print_str("x");
  return 0;
}
)"},
    {"MallocThroughExplicitCast", R"(
struct s { int x; };
int main() {
  struct s *p = (struct s *)malloc(sizeof(struct s));
  free(p);
  return 0;
}
)"},
    {"MallocThroughTypedInitializer", R"(
int main() {
  long *p = malloc(8 * sizeof(long));
  free(p);
  return 0;
}
)"},
    {"MallocThroughAssignment", R"(
int main() {
  double *p;
  p = malloc(4 * sizeof(double));
  free(p);
  return 0;
}
)"},
    {"MallocThroughCallArgument", R"(
int consume(int *p) { free(p); return 0; }
int main() { return consume(malloc(4 * sizeof(int))); }
)"},
    {"MallocVoidTargetStaysUntyped", R"(
int main() {
  void *p = malloc(64);
  free(p);
  return 0;
}
)"},
};

//===----------------------------------------------------------------------===//
// Differential harness
//===----------------------------------------------------------------------===//

/// Replaces hex pointer renderings ("0x1a2b...") with "<ptr>" so legacy
/// (unattributed) report lines — the only ones that embed raw addresses
/// — compare equal across runtimes with different arena placements.
/// Site-attributed reports are address-free by design.
std::string normalizePointers(std::string_view In) {
  std::string Out;
  for (size_t I = 0; I < In.size();) {
    if (I + 1 < In.size() && In[I] == '0' &&
        (In[I + 1] == 'x' || In[I + 1] == 'X')) {
      size_t J = I + 2;
      while (J < In.size() && std::isxdigit(static_cast<unsigned char>(In[J])))
        ++J;
      if (J > I + 2) {
        Out += "<ptr>";
        I = J;
        continue;
      }
    }
    Out += In[I++];
  }
  return Out;
}

/// One engine's observable behavior: the RunResult plus the full
/// error-report stream and per-kind bucket counts.
struct EngineRun {
  interp::RunResult R;
  std::vector<std::string> Msgs;
  uint64_t TypeErrors = 0;
  uint64_t BoundsErrors = 0;
  uint64_t UafErrors = 0;
  uint64_t DoubleFrees = 0;
  uint64_t StackUarErrors = 0;
};

enum class Engine { Tree, Bytecode };

/// Runs \p C on \p E against a fresh runtime, capturing every emitted
/// report in order.
EngineRun runEngine(TypeContext &Types, const CompileResult &C, Engine E,
                    const interp::RunOptions &Opts = interp::RunOptions()) {
  EngineRun Out;
  RuntimeOptions RTOpts;
  RTOpts.Reporter.Mode = ReportMode::Count;
  RTOpts.Reporter.Callback = [](const ErrorInfo &, const char *Message,
                                void *User) {
    static_cast<std::vector<std::string> *>(User)->push_back(
        normalizePointers(Message ? Message : ""));
  };
  RTOpts.Reporter.CallbackUserData = &Out.Msgs;
  Runtime RT(Types, RTOpts);

  Out.R = E == Engine::Bytecode ? bytecode::run(*C.BC, RT, Opts)
                                : interp::run(*C.M, RT, Opts);
  Out.TypeErrors = RT.reporter().numIssues(ErrorKind::TypeError);
  Out.BoundsErrors = RT.reporter().numIssues(ErrorKind::BoundsError);
  Out.UafErrors = RT.reporter().numIssues(ErrorKind::UseAfterFree);
  Out.DoubleFrees = RT.reporter().numIssues(ErrorKind::DoubleFree);
  Out.StackUarErrors =
      RT.reporter().numIssues(ErrorKind::StackUseAfterReturn);
  return Out;
}

/// Everything must match except Steps (fusion changes instruction
/// granularity, not behavior).
void expectSameBehavior(const EngineRun &T, const EngineRun &B,
                        const std::string &Label) {
  EXPECT_EQ(T.R.Ok, B.R.Ok) << Label;
  EXPECT_EQ(normalizePointers(T.R.Fault), normalizePointers(B.R.Fault))
      << Label;
  EXPECT_EQ(T.R.ExitCode, B.R.ExitCode) << Label;
  EXPECT_EQ(T.R.Output, B.R.Output) << Label;
  EXPECT_EQ(T.R.Checks.TypeChecks, B.R.Checks.TypeChecks) << Label;
  EXPECT_EQ(T.R.Checks.BoundsGets, B.R.Checks.BoundsGets) << Label;
  EXPECT_EQ(T.R.Checks.BoundsChecks, B.R.Checks.BoundsChecks) << Label;
  EXPECT_EQ(T.R.Checks.BoundsNarrows, B.R.Checks.BoundsNarrows) << Label;
  EXPECT_EQ(T.R.IssuesReported, B.R.IssuesReported) << Label;
  EXPECT_EQ(T.TypeErrors, B.TypeErrors) << Label;
  EXPECT_EQ(T.BoundsErrors, B.BoundsErrors) << Label;
  EXPECT_EQ(T.UafErrors, B.UafErrors) << Label;
  EXPECT_EQ(T.DoubleFrees, B.DoubleFrees) << Label;
  EXPECT_EQ(T.StackUarErrors, B.StackUarErrors) << Label;
  EXPECT_EQ(T.Msgs, B.Msgs) << Label;
}

constexpr Variant AllVariants[] = {Variant::None, Variant::Type,
                                   Variant::Bounds, Variant::Full};

/// Compiles \p Source under \p V and diffs the two engines; with
/// \p Fused false the bytecode is recompiled without superinstructions
/// to cover the plain handlers too.
void diffProgram(const char *Name, const char *Source, Variant V,
                 bool Fused = true) {
  std::string Label = std::string(Name) + " [" +
                      std::string(variantName(V)) +
                      (Fused ? "" : " unfused") + "]";
  TypeContext Types;
  DiagnosticEngine Diags;
  InstrumentOptions Opts;
  Opts.V = V;
  CompileResult C = compileMiniC(Source, Types, Diags, Opts);
  for (const Diagnostic &D : Diags.diagnostics())
    ADD_FAILURE() << Label << ": " << D.Loc.Line << ":" << D.Loc.Column
                  << ": " << D.Message;
  ASSERT_TRUE(C.M) << Label;
  ASSERT_TRUE(C.BC) << Label << ": pipeline produced no bytecode";

  if (!Fused) {
    std::string Error;
    bytecode::CompileOptions BcOpts;
    BcOpts.FuseChecks = false;
    C.BC = bytecode::compile(*C.M, &Error, BcOpts);
    ASSERT_TRUE(C.BC) << Label << ": " << Error;
  }

  EngineRun T = runEngine(Types, C, Engine::Tree);
  EngineRun B = runEngine(Types, C, Engine::Bytecode);
  expectSameBehavior(T, B, Label);
}

} // namespace

//===----------------------------------------------------------------------===//
// The differential sweep
//===----------------------------------------------------------------------===//

TEST(Differential, FullCorpusAllVariants) {
  for (const CorpusProgram &P : Corpus)
    for (Variant V : AllVariants)
      diffProgram(P.Name, P.Source, V);
}

TEST(Differential, FullCorpusUnfused) {
  for (const CorpusProgram &P : Corpus)
    diffProgram(P.Name, P.Source, Variant::Full, /*Fused=*/false);
}

TEST(Differential, BudgetFaultMatches) {
  TypeContext Types;
  DiagnosticEngine Diags;
  CompileResult C = compileMiniC("int main() { while (1) { } return 0; }",
                                 Types, Diags, InstrumentOptions());
  ASSERT_TRUE(C.M && C.BC);
  interp::RunOptions Opts;
  Opts.MaxSteps = 10000;
  EngineRun T = runEngine(Types, C, Engine::Tree, Opts);
  EngineRun B = runEngine(Types, C, Engine::Bytecode, Opts);
  EXPECT_FALSE(T.R.Ok);
  EXPECT_FALSE(B.R.Ok);
  EXPECT_EQ(T.R.Fault, B.R.Fault); // "...budget exhausted in @main"
  EXPECT_NE(B.R.Fault.find("budget"), std::string::npos);
}

TEST(Differential, DepthFaultMatches) {
  TypeContext Types;
  DiagnosticEngine Diags;
  CompileResult C = compileMiniC("int f(int n) { return f(n + 1); }\n"
                                 "int main() { return f(0); }",
                                 Types, Diags, InstrumentOptions());
  ASSERT_TRUE(C.M && C.BC);
  interp::RunOptions Opts;
  Opts.MaxCallDepth = 64;
  EngineRun T = runEngine(Types, C, Engine::Tree, Opts);
  EngineRun B = runEngine(Types, C, Engine::Bytecode, Opts);
  EXPECT_FALSE(T.R.Ok);
  EXPECT_FALSE(B.R.Ok);
  EXPECT_EQ(T.R.Fault, B.R.Fault); // "call depth limit exceeded in @f"
  EXPECT_NE(B.R.Fault.find("depth"), std::string::npos);
}

TEST(Differential, MissingEntryFaultMatches) {
  TypeContext Types;
  DiagnosticEngine Diags;
  CompileResult C = compileMiniC("int helper() { return 1; }\n"
                                 "int main() { return helper(); }",
                                 Types, Diags, InstrumentOptions());
  ASSERT_TRUE(C.M && C.BC);
  EngineRun T = runEngine(Types, C, Engine::Tree);
  EngineRun B = runEngine(Types, C, Engine::Bytecode);
  expectSameBehavior(T, B, "entry=main");

  RuntimeOptions RTOpts;
  RTOpts.Reporter.Mode = ReportMode::Count;
  Runtime RT1(Types, RTOpts);
  Runtime RT2(Types, RTOpts);
  interp::RunResult TR =
      interp::run(*C.M, RT1, interp::RunOptions(), "nonexistent");
  interp::RunResult BR =
      bytecode::run(*C.BC, RT2, interp::RunOptions(), "nonexistent");
  EXPECT_FALSE(TR.Ok);
  EXPECT_FALSE(BR.Ok);
  EXPECT_EQ(TR.Fault, BR.Fault);
}

//===----------------------------------------------------------------------===//
// Disassembler round trip
//===----------------------------------------------------------------------===//

TEST(Disasm, RoundTripReproducesEveryField) {
  TypeContext Types;
  DiagnosticEngine Diags;
  // A program exercising most opcode families: calls, floats, structs,
  // arrays, globals, strings, checks, branches.
  CompileResult C = compileMiniC(R"(
struct item { int id; double weight; };
struct item g_items[4];
double total(struct item *xs, int n) {
  double t = 0.0;
  int i;
  for (i = 0; i < n; i = i + 1)
    t = t + xs[i].weight;
  return t;
}
int main() {
  int i;
  for (i = 0; i < 4; i = i + 1) {
    g_items[i].id = i;
    g_items[i].weight = 1.5 * i;
  }
  print_str("total:");
  print_float(total(g_items, 4));
  return (int)total(g_items, 4);
}
)",
                                 Types, Diags, InstrumentOptions());
  ASSERT_TRUE(C.BC);

  std::string Text = bytecode::disassemble(*C.BC);
  std::vector<std::pair<std::string, std::vector<bytecode::Inst>>> Parsed;
  ASSERT_TRUE(bytecode::parseDisassembly(Text, Parsed));

  ASSERT_EQ(Parsed.size(), C.BC->Funcs.size());
  for (size_t F = 0; F < Parsed.size(); ++F) {
    const bytecode::BcFunction &Orig = C.BC->Funcs[F];
    EXPECT_EQ(Parsed[F].first, Orig.Name);
    ASSERT_EQ(Parsed[F].second.size(), Orig.Code.size()) << Orig.Name;
    for (size_t I = 0; I < Orig.Code.size(); ++I) {
      const bytecode::Inst &A = Orig.Code[I];
      const bytecode::Inst &B = Parsed[F].second[I];
      EXPECT_EQ(A.Op, B.Op) << Orig.Name << ":" << I;
      EXPECT_EQ(A.A, B.A) << Orig.Name << ":" << I;
      EXPECT_EQ(A.B, B.B) << Orig.Name << ":" << I;
      EXPECT_EQ(A.C, B.C) << Orig.Name << ":" << I;
      EXPECT_EQ(A.Imm, B.Imm) << Orig.Name << ":" << I;
      EXPECT_EQ(A.Aux, B.Aux) << Orig.Name << ":" << I;
      EXPECT_EQ(A.Type, B.Type) << Orig.Name << ":" << I;
    }
  }
}

TEST(Disasm, UnknownMnemonicIsRejected) {
  std::vector<std::pair<std::string, std::vector<bytecode::Inst>>> Parsed;
  EXPECT_FALSE(bytecode::parseDisassembly(
      "  0: NotAnOpcode a=0 b=0 c=0 imm=0x0 aux=0x0 ty=0x0\n", Parsed));
}

//===----------------------------------------------------------------------===//
// Fusion + dispatch sanity
//===----------------------------------------------------------------------===//

TEST(Fusion, HotCheckAccessPairsFuse) {
  TypeContext Types;
  DiagnosticEngine Diags;
  InstrumentOptions Opts;
  Opts.V = Variant::Full;
  CompileResult C = compileMiniC(R"(
int main() {
  int *a = (int *)malloc(16 * sizeof(int));
  int i;
  for (i = 0; i < 16; i = i + 1)
    a[i] = i;
  int t = 0;
  for (i = 0; i < 16; i = i + 1)
    t = t + a[i];
  free(a);
  return t;
}
)",
                                 Types, Diags, Opts);
  ASSERT_TRUE(C.BC);
  std::string Text = bytecode::disassemble(*C.BC);
  // The array loops must have produced fused check+access
  // superinstructions; which exact flavor depends on the optimizer, so
  // accept any of the catalogue.
  bool Fused = Text.find("BoundsCheckLoad") != std::string::npos ||
               Text.find("BoundsCheckStore") != std::string::npos ||
               Text.find("TypeCheckLoad") != std::string::npos ||
               Text.find("TypeCheckStore") != std::string::npos ||
               Text.find("BoundsGetCheckLoad") != std::string::npos ||
               Text.find("BoundsGetCheckStore") != std::string::npos ||
               Text.find("TypeCheckBounds") != std::string::npos ||
               Text.find("BoundsGetCheck") != std::string::npos;
  EXPECT_TRUE(Fused) << Text;

  // And fusion must never cross a branch: disassembly with fusion off
  // contains no superinstruction mnemonics at all.
  std::string Error;
  bytecode::CompileOptions BcOpts;
  BcOpts.FuseChecks = false;
  auto Plain = bytecode::compile(*C.M, &Error, BcOpts);
  ASSERT_TRUE(Plain) << Error;
  std::string PlainText = bytecode::disassemble(*Plain);
  EXPECT_EQ(PlainText.find("TypeCheckBounds"), std::string::npos);
  EXPECT_EQ(PlainText.find("CheckLoad"), std::string::npos);
  EXPECT_EQ(PlainText.find("CheckStore"), std::string::npos);
}

TEST(Dispatch, StrategyIsReported) {
  std::string_view S = bytecode::dispatchStrategy();
  EXPECT_TRUE(S == "computed-goto" || S == "switch") << S;
#if !defined(EFFSAN_BC_SWITCH_DISPATCH) && (defined(__GNUC__) || defined(__clang__))
  EXPECT_EQ(S, "computed-goto");
#endif
}
