//===- tests/semantics_test.cpp - MiniC execution semantics sweeps --------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Property-style sweeps over the pipeline:
///
///  * a table of small programs with known results, each executed under
///    all four variants (instrumentation must never change semantics);
///  * off-by-one overflows at parameterized array sizes (detection must
///    not depend on the size class the allocation lands in);
///  * the CSE pre-pass preserves program behaviour while shrinking the
///    instruction stream.
///
//===----------------------------------------------------------------------===//

#include "instrument/CheckOptimizer.h"
#include "instrument/Lowering.h"
#include "instrument/Pipeline.h"
#include "interp/Interp.h"
#include "minic/Parser.h"
#include "minic/Sema.h"

#include <gtest/gtest.h>

using namespace effective;
using namespace effective::instrument;

namespace {

interp::RunResult compileAndRun(std::string_view Source, Variant V,
                                uint64_t *Issues = nullptr) {
  TypeContext Types;
  RuntimeOptions RTOpts;
  RTOpts.Reporter.Mode = ReportMode::Count;
  Runtime RT(Types, RTOpts);
  DiagnosticEngine Diags;
  InstrumentOptions Opts;
  Opts.V = V;
  CompileResult C = compileMiniC(Source, Types, Diags, Opts);
  for (const Diagnostic &D : Diags.diagnostics())
    ADD_FAILURE() << D.Loc.Line << ":" << D.Loc.Column << ": "
                  << D.Message;
  if (!C.M)
    return {};
  interp::RunResult R = interp::run(*C.M, RT);
  if (Issues)
    *Issues = RT.reporter().numIssues();
  return R;
}

//===----------------------------------------------------------------------===//
// Known-result program table
//===----------------------------------------------------------------------===//

struct KnownProgram {
  const char *Name;
  const char *Source;
  int64_t Expected;
};

const KnownProgram KnownPrograms[] = {
    {"gcd",
     R"(
int gcd(int a, int b) { while (b != 0) { int t = a % b; a = b; b = t; }
                        return a; }
int main() { return gcd(252, 105); }
)",
     21},
    {"short_circuit",
     R"(
int g;
int bump() { g = g + 1; return 1; }
int main() {
  int a = 0 && bump();     /* bump not called */
  int b = 1 || bump();     /* bump not called */
  int c = 1 && bump();     /* called once */
  int d = 0 || bump();     /* called once */
  return g * 10 + a + b + c + d;
}
)",
     23},
    {"break_continue",
     R"(
int main() {
  int total = 0;
  int i;
  for (i = 0; i < 100; i = i + 1) {
    if (i % 2 == 0) continue;
    if (i > 10) break;
    total = total + i;
  }
  return total;
}
)",
     1 + 3 + 5 + 7 + 9},
    {"char_arith",
     R"(
int main() {
  char c = 'A';
  c = c + 1;
  char buf[4];
  buf[0] = c;
  return buf[0];
}
)",
     'B'},
    {"nested_struct",
     R"(
struct inner { int a; int b; };
struct outer { struct inner i; int c; };
int main() {
  struct outer o;
  o.i.a = 3; o.i.b = 4; o.c = 5;
  struct inner *p = &o.i;
  return p->a * 100 + p->b * 10 + o.c;
}
)",
     345},
    {"pointer_walk",
     R"(
int main() {
  int *xs = (int *)malloc(16 * sizeof(int));
  int i;
  for (i = 0; i < 16; i = i + 1) xs[i] = i;
  int *p = xs;
  int *end = xs + 16;
  int total = 0;
  while (p != end) { total = total + *p; p = p + 1; }
  free(xs);
  return total;
}
)",
     120},
    {"unsigned_wrap",
     R"(
int main() {
  unsigned int u = 0;
  u = u - 1;
  return u > 1000000;         /* wrapped to UINT_MAX */
}
)",
     1},
    {"float_convert",
     R"(
int main() {
  double d = 7.9;
  int i = (int)d;             /* truncates */
  float f = 0.5;
  return i * 10 + (int)(f * 4.0);
}
)",
     72},
    {"sizeof_values",
     R"(
struct s { int a[3]; char *p; };
int main() {
  return (int)(sizeof(int) + sizeof(double) * 10 + sizeof(struct s) * 100);
}
)",
     4 + 80 + 2400},
    {"recursion_mutual",
     R"(
int isOdd(int n);
int isEven(int n) { if (n == 0) return 1; return isOdd(n - 1); }
int isOdd(int n) { if (n == 0) return 0; return isEven(n - 1); }
int main() { return isEven(10) * 10 + isOdd(7); }
)",
     11},
    {"matrix2d",
     R"(
int main() {
  int m[4][3];
  int i; int j;
  for (i = 0; i < 4; i = i + 1)
    for (j = 0; j < 3; j = j + 1)
      m[i][j] = i * 10 + j;
  int total = 0;
  for (i = 0; i < 4; i = i + 1)
    for (j = 0; j < 3; j = j + 1)
      total = total + m[i][j];
  return total;
}
)",
     (0 + 10 + 20 + 30) * 3 + (0 + 1 + 2) * 4},
    {"union_pun",
     R"(
union bits { float f; int i; };
int main() {
  union bits b;
  b.f = 1.0;
  int asInt = b.i;
  b.i = 0;
  return (asInt != 0) * 10 + (b.f == 0.0);
}
)",
     11},
    {"addr_taken_param",
     R"(
int set(int *p, int v) { *p = v; return *p; }
int bump(int x) {
  int *p = &x;
  set(p, x + 5);
  return x;
}
int main() { return bump(10); }
)",
     15},
    {"global_array",
     R"(
int g_table[10];
int g_seed = 3;
int main() {
  int i;
  for (i = 0; i < 10; i = i + 1)
    g_table[i] = g_seed * i;
  return g_table[9] + g_table[1];
}
)",
     27 + 3},
    {"bit_ops",
     R"(
int main() {
  int a = 0xF0;
  int b = a >> 4;          /* 0x0F */
  int c = (a | b) & 0x3C;  /* 0xFF & 0x3C = 0x3C */
  int d = c ^ 0xFF;        /* 0xC3 */
  return (b << 8) + d - (1 << 2);
}
)",
     (0x0F << 8) + 0xC3 - 4},
};

class KnownProgramTest
    : public ::testing::TestWithParam<std::tuple<size_t, int>> {};

std::string knownName(
    const ::testing::TestParamInfo<std::tuple<size_t, int>> &Info) {
  const char *Variants[] = {"None", "Type", "Bounds", "Full"};
  return std::string(KnownPrograms[std::get<0>(Info.param)].Name) + "_" +
         Variants[std::get<1>(Info.param)];
}

} // namespace

TEST_P(KnownProgramTest, ComputesExpectedResultUnderEveryVariant) {
  auto [Idx, V] = GetParam();
  const KnownProgram &P = KnownPrograms[Idx];
  uint64_t Issues = 0;
  interp::RunResult R =
      compileAndRun(P.Source, static_cast<Variant>(V), &Issues);
  ASSERT_TRUE(R.Ok) << R.Fault;
  EXPECT_EQ(R.ExitCode, P.Expected);
  EXPECT_EQ(Issues, 0u) << "clean program reported issues";
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, KnownProgramTest,
    ::testing::Combine(
        ::testing::Range<size_t>(0, std::size(KnownPrograms)),
        ::testing::Range(0, 4)),
    knownName);

//===----------------------------------------------------------------------===//
// Off-by-one detection across allocation sizes
//===----------------------------------------------------------------------===//

class OffByOneTest : public ::testing::TestWithParam<int> {};

TEST_P(OffByOneTest, HeapOverflowDetectedAtEverySize) {
  int N = GetParam();
  char Source[512];
  std::snprintf(Source, sizeof(Source), R"(
int main() {
  long *a = (long *)malloc(%d * sizeof(long));
  int i;
  for (i = 0; i <= %d; i = i + 1)
    a[i] = i;
  free(a);
  return 0;
}
)",
                N, N);
  uint64_t Issues = 0;
  interp::RunResult R = compileAndRun(Source, Variant::Full, &Issues);
  ASSERT_TRUE(R.Ok) << R.Fault;
  EXPECT_GE(Issues, 1u) << "size " << N;
}

TEST_P(OffByOneTest, InBoundsLoopIsSilentAtEverySize) {
  int N = GetParam();
  char Source[512];
  std::snprintf(Source, sizeof(Source), R"(
int main() {
  long *a = (long *)malloc(%d * sizeof(long));
  int i;
  for (i = 0; i < %d; i = i + 1)
    a[i] = i;
  free(a);
  return 0;
}
)",
                N, N);
  uint64_t Issues = 0;
  interp::RunResult R = compileAndRun(Source, Variant::Full, &Issues);
  ASSERT_TRUE(R.Ok) << R.Fault;
  EXPECT_EQ(Issues, 0u) << "size " << N;
}

INSTANTIATE_TEST_SUITE_P(Sizes, OffByOneTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 17, 31, 64,
                                           100, 1000));

//===----------------------------------------------------------------------===//
// CSE preserves behaviour
//===----------------------------------------------------------------------===//

namespace {

/// Compiles without instrumentation, optionally skipping CSE (compileMiniC
/// always applies it, so this drives the pieces directly).
std::unique_ptr<ir::Module> lowerOnly(std::string_view Source,
                                      TypeContext &Types, bool RunCSE) {
  minic::ASTContext Ctx(Types);
  minic::TranslationUnit Unit;
  DiagnosticEngine Diags;
  minic::Parser P(Source, Ctx, Diags);
  if (!P.parseUnit(Unit))
    return nullptr;
  minic::Sema S(Ctx, Diags);
  if (!S.check(Unit))
    return nullptr;
  std::unique_ptr<ir::Module> M = lowerToIR(Unit, Types, Diags);
  if (M && RunCSE)
    localCSE(*M);
  return M;
}

uint64_t instructionCount(const ir::Module &M) {
  uint64_t N = 0;
  for (const auto &F : M.Functions)
    for (const ir::Block &B : F->Blocks)
      N += B.Instrs.size();
  return N;
}

} // namespace

TEST(CSE, PreservesBehaviourAndShrinksTheStream) {
  constexpr const char *Source = R"(
struct v { int x; int y; };
int main() {
  struct v a;
  a.x = 3;
  a.y = a.x + a.x * 2;
  int t = 0;
  int i;
  for (i = 0; i < 10; i = i + 1)
    t = t + a.x * a.y + a.x * a.y;
  return t;
}
)";
  TypeContext TypesA, TypesB;
  auto Plain = lowerOnly(Source, TypesA, /*RunCSE=*/false);
  auto Optimized = lowerOnly(Source, TypesB, /*RunCSE=*/true);
  ASSERT_TRUE(Plain);
  ASSERT_TRUE(Optimized);
  EXPECT_LT(instructionCount(*Optimized), instructionCount(*Plain));

  RuntimeOptions RTOpts;
  RTOpts.Reporter.Mode = ReportMode::Count;
  Runtime RTA(TypesA, RTOpts), RTB(TypesB, RTOpts);
  interp::RunResult A = interp::run(*Plain, RTA);
  interp::RunResult B = interp::run(*Optimized, RTB);
  ASSERT_TRUE(A.Ok) << A.Fault;
  ASSERT_TRUE(B.Ok) << B.Fault;
  EXPECT_EQ(A.ExitCode, B.ExitCode);
  EXPECT_EQ(A.ExitCode, 3 * 9 * 2 * 10);
  EXPECT_LT(B.Steps, A.Steps);
}

TEST(CSE, MutableRegistersAreRespected) {
  // The loop variable's register is redefined every iteration: CSE must
  // not treat stale copies of it as equal.
  constexpr const char *Source = R"(
int main() {
  int total = 0;
  int i;
  for (i = 0; i < 5; i = i + 1) {
    int a = i * 2;
    int b = i * 2;   /* equal only within one iteration */
    total = total + a + b;
  }
  return total;
}
)";
  TypeContext Types;
  auto M = lowerOnly(Source, Types, /*RunCSE=*/true);
  ASSERT_TRUE(M);
  RuntimeOptions RTOpts;
  RTOpts.Reporter.Mode = ReportMode::Count;
  Runtime RT(Types, RTOpts);
  interp::RunResult R = interp::run(*M, RT);
  ASSERT_TRUE(R.Ok) << R.Fault;
  EXPECT_EQ(R.ExitCode, (0 + 2 + 4 + 6 + 8) * 2);
}

TEST(CSE, ShortCircuitResultSurvives) {
  // The && result register is written in two blocks and read in a
  // third; CSE must not delete either definition.
  constexpr const char *Source = R"(
int main() {
  int x = 3;
  int a = (x > 1) && (x < 10);
  int b = (x > 5) && (x < 10);
  return a * 10 + b;
}
)";
  TypeContext Types;
  auto M = lowerOnly(Source, Types, /*RunCSE=*/true);
  ASSERT_TRUE(M);
  RuntimeOptions RTOpts;
  RTOpts.Reporter.Mode = ReportMode::Count;
  Runtime RT(Types, RTOpts);
  interp::RunResult R = interp::run(*M, RT);
  ASSERT_TRUE(R.Ok) << R.Fault;
  EXPECT_EQ(R.ExitCode, 10);
}
