//===- tests/api_test.cpp - Session API and C ABI tests -------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Covers the instance-scoped public API: session isolation (two
/// concurrent sessions with independent counters and error sinks), the
/// policy matrix (one buggy program under all five CheckPolicy values
/// in one process), the session-aware CheckedPtr constructor, the
/// injectable default runtime, the stable effsan C ABI, and the
/// reporter's per-location dedup caps.
///
//===----------------------------------------------------------------------===//

#include "api/Sanitizer.h"
#include "api/effsan.h"
#include "core/Effective.h"
#include "instrument/Pipeline.h"
#include "interp/Interp.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

using namespace effective;

namespace api_test {

struct Account {
  int Number[8];
  float Balance;
};

} // namespace api_test

EFFECTIVE_REFLECT(api_test::Account, Number, Balance);

namespace {

SessionOptions quietOptions(CheckPolicy Policy = CheckPolicy::Full) {
  SessionOptions Options;
  Options.Policy = Policy;
  Options.Reporter.Mode = ReportMode::Count;
  return Options;
}

/// The shared buggy program: one type confusion, one sub-object
/// overflow (only narrowing catches it), one allocation overflow.
/// What surfaces depends entirely on the session's policy.
void runBuggyProgram(Sanitizer &S) {
  TypeContext &Ctx = S.types();
  const TypeInfo *AccT = TypeOf<api_test::Account>::get(Ctx);
  void *P = S.malloc(sizeof(api_test::Account), AccT);
  char *Raw = static_cast<char *>(P);

  // Type confusion: no double lives at offset 0.
  S.typeCheck(P, Ctx.getDouble());

  // Sub-object overflow: Number[8] is one past the int[8] field.
  Bounds NB = S.typeCheck(P, Ctx.getInt());
  S.boundsCheck(Raw + 8 * sizeof(int), sizeof(int), NB);

  // Allocation overflow: past the whole object.
  Bounds AB = S.boundsGet(P);
  S.boundsCheck(Raw + sizeof(api_test::Account) + 4, sizeof(int), AB);

  S.free(P);
}

void collectErrors(const ErrorInfo &, const char *Message, void *UserData) {
  static_cast<std::vector<std::string> *>(UserData)->push_back(Message);
}

//===----------------------------------------------------------------------===//
// Session isolation
//===----------------------------------------------------------------------===//

TEST(SessionTest, ConcurrentSessionsAreIsolated) {
  Sanitizer A(quietOptions());
  Sanitizer B(quietOptions());

  std::vector<std::string> AErrors, BErrors;
  A.setErrorCallback(collectErrors, &AErrors);
  B.setErrorCallback(collectErrors, &BErrors);

  uint64_t DefaultIssuesBefore = Sanitizer::defaultSession().issuesFound();

  // A runs the buggy program once, B ten times, concurrently.
  std::thread TA([&] { runBuggyProgram(A); });
  std::thread TB([&] {
    for (int I = 0; I < 10; ++I)
      runBuggyProgram(B);
  });
  TA.join();
  TB.join();

  // Independent issue buckets and counters.
  EXPECT_EQ(A.issuesFound(), 3u);
  EXPECT_EQ(B.issuesFound(), 3u); // Buckets dedup across iterations...
  EXPECT_EQ(A.reporter().numEvents(), 3u);
  EXPECT_EQ(B.reporter().numEvents(), 30u); // ...events do not.
  EXPECT_EQ(A.counters().snapshot().TypeChecks, 2u);
  EXPECT_EQ(B.counters().snapshot().TypeChecks, 20u);

  // Independent error sinks: one emitted report per bucket (default
  // per-location cap of 1).
  EXPECT_EQ(AErrors.size(), 3u);
  EXPECT_EQ(BErrors.size(), 3u);

  // Nothing leaked into the process-wide default session.
  EXPECT_EQ(Sanitizer::defaultSession().issuesFound(),
            DefaultIssuesBefore);
}

TEST(SessionTest, SessionsCanShareATypeContext) {
  TypeContext Shared;
  Sanitizer A(Shared, quietOptions());
  Sanitizer B(Shared, quietOptions());
  // Interned types are pointer-identical across the sharing sessions.
  EXPECT_EQ(TypeOf<api_test::Account>::get(A.types()),
            TypeOf<api_test::Account>::get(B.types()));
  runBuggyProgram(A);
  EXPECT_EQ(A.issuesFound(), 3u);
  EXPECT_EQ(B.issuesFound(), 0u);
}

//===----------------------------------------------------------------------===//
// The policy matrix (Section 6.2 as a constructor argument)
//===----------------------------------------------------------------------===//

struct PolicyExpectation {
  CheckPolicy Policy;
  uint64_t TypeChecks;
  uint64_t BoundsGets;
  uint64_t BoundsChecks;
  uint64_t Issues;
};

TEST(SessionTest, PolicyMatrix) {
  // One buggy program, five sessions in one process; the findings are
  // decided by policy alone:
  //   Full       — type confusion + sub-object + allocation overflow;
  //   BoundsOnly — allocation overflow only (the ASan/LowFat scope);
  //   TypeOnly   — type confusion only;
  //   CountOnly  — checks counted, nothing probed or reported;
  //   Off        — nothing at all.
  const PolicyExpectation Expectations[] = {
      {CheckPolicy::Full, 2, 1, 2, 3},
      {CheckPolicy::BoundsOnly, 0, 3, 2, 1},
      {CheckPolicy::TypeOnly, 2, 0, 0, 1},
      {CheckPolicy::CountOnly, 2, 1, 2, 0},
      {CheckPolicy::Off, 0, 0, 0, 0},
  };

  for (const PolicyExpectation &E : Expectations) {
    SCOPED_TRACE(std::string("policy = ") +
                 std::string(checkPolicyName(E.Policy)));
    Sanitizer S(quietOptions(E.Policy));
    runBuggyProgram(S);
    CheckCounters::Snapshot Snap = S.counters().snapshot();
    EXPECT_EQ(Snap.TypeChecks, E.TypeChecks);
    EXPECT_EQ(Snap.BoundsGets, E.BoundsGets);
    EXPECT_EQ(Snap.BoundsChecks, E.BoundsChecks);
    EXPECT_EQ(S.issuesFound(), E.Issues);
  }
}

TEST(SessionTest, ResetRecyclesArenaCountersAndIssues) {
  Sanitizer S(quietOptions());
  void *First = S.malloc(64, TypeOf<int>::get(S.types()));
  runBuggyProgram(S);
  ASSERT_EQ(S.issuesFound(), 3u);
  ASSERT_GT(S.counters().snapshot().TypeChecks, 0u);

  S.reset();

  // Counters and issue buckets are gone...
  EXPECT_EQ(S.issuesFound(), 0u);
  EXPECT_EQ(S.reporter().numEvents(), 0u);
  CheckCounters::Snapshot Snap = S.counters().snapshot();
  EXPECT_EQ(Snap.TypeChecks + Snap.BoundsChecks + Snap.BoundsGets, 0u);
  // ...and the arena is rewound: the very first address is served
  // again to the next tenant.
  void *Fresh = S.malloc(64, TypeOf<int>::get(S.types()));
  EXPECT_EQ(Fresh, First);
  // The recycled session works end to end.
  runBuggyProgram(S);
  EXPECT_EQ(S.issuesFound(), 3u);
  S.free(Fresh);
}

TEST(SessionTest, FullPolicyFindsTheExpectedKinds) {
  Sanitizer S(quietOptions(CheckPolicy::Full));
  runBuggyProgram(S);
  EXPECT_EQ(S.reporter().numIssues(ErrorKind::TypeError), 1u);
  EXPECT_EQ(S.reporter().numIssues(ErrorKind::BoundsError), 2u);
}

TEST(SessionTest, InterpreterRespectsSessionPolicy) {
  // One MiniC program with an off-by-one, compiled once per policy via
  // instrumentOptionsFor and run through the session-scoped VM entry.
  constexpr const char *Program = R"(
int main() {
  int *a = (int *)malloc(4 * sizeof(int));
  int i;
  for (i = 0; i <= 4; i = i + 1)
    a[i] = i;
  free(a);
  return 0;
}
)";
  struct Case {
    CheckPolicy Policy;
    bool ExpectIssues;
  } Cases[] = {
      {CheckPolicy::Full, true},
      {CheckPolicy::CountOnly, false},
      {CheckPolicy::Off, false},
  };
  for (const Case &C : Cases) {
    SCOPED_TRACE(std::string(checkPolicyName(C.Policy)));
    Sanitizer S(quietOptions(C.Policy));
    DiagnosticEngine Diags;
    instrument::CompileResult R = instrument::compileMiniC(
        Program, S.types(), Diags, instrument::instrumentOptionsFor(C.Policy));
    ASSERT_TRUE(R.M != nullptr);
    interp::RunResult Run = interp::run(*R.M, S);
    ASSERT_TRUE(Run.Ok) << Run.Fault;
    EXPECT_EQ(Run.IssuesReported > 0, C.ExpectIssues);
    if (C.Policy == CheckPolicy::CountOnly) {
      EXPECT_GT(Run.Checks.BoundsChecks, 0u); // Counted, not probed.
    }
  }
}

//===----------------------------------------------------------------------===//
// CheckedPtr injection
//===----------------------------------------------------------------------===//

TEST(SessionTest, CheckedPtrSessionAwareConstructor) {
  Sanitizer S(quietOptions());
  auto *Raw = static_cast<int *>(
      S.malloc(10 * sizeof(int), TypeOf<int>::get(S.types())));

  // The session-aware constructor checks against S (via its Runtime
  // conversion), not whatever the thread default is.
  CheckedPtr<int> P(Raw, S);
  EXPECT_EQ(P.bounds(), Bounds::forObject(Raw, 10 * sizeof(int)));
  EXPECT_EQ(S.counters().snapshot().TypeChecks, 1u);

  // Dereference checks flow through the bound scope.
  {
    SanitizerScope Scope(S);
    CheckedPtr<int> End = P + 10;
    *End; // One past the end: a bounds error into S.
  }
  EXPECT_EQ(S.reporter().numIssues(ErrorKind::BoundsError), 1u);
  S.free(Raw);
}

TEST(SessionTest, DefaultRuntimeInjection) {
  TypeContext Ctx;
  RuntimeOptions Quiet;
  Quiet.Reporter.Mode = ReportMode::Count;
  Runtime RT(Ctx, Quiet);

  Runtime *Prev = setDefaultRuntime(&RT);
  EXPECT_EQ(&currentRuntime(), &RT);
  // A scope binding still wins over the injected default.
  {
    Sanitizer S(quietOptions());
    SanitizerScope Scope(S);
    EXPECT_EQ(&currentRuntime(), &S.runtime());
  }
  EXPECT_EQ(&currentRuntime(), &RT);
  setDefaultRuntime(Prev);
}

//===----------------------------------------------------------------------===//
// Reporter dedup caps
//===----------------------------------------------------------------------===//

TEST(ReporterTest, PerBucketCapSuppressesFloods) {
  SessionOptions Options = quietOptions();
  Options.Reporter.MaxReportsPerBucket = 3;
  Sanitizer S(Options);
  std::vector<std::string> Errors;
  S.setErrorCallback(collectErrors, &Errors);

  void *P = S.malloc(4 * sizeof(int), TypeOf<int>::get(S.types()));
  Bounds B = S.boundsGet(P);
  const char *Raw = static_cast<const char *>(P);
  for (int I = 0; I < 100; ++I)
    S.boundsCheck(Raw + 100, 4, B); // Same bucket every time.

  EXPECT_EQ(Errors.size(), 3u);                   // Capped emission.
  EXPECT_EQ(S.reporter().numEvents(), 100u);      // Full count kept.
  EXPECT_EQ(S.reporter().numSuppressed(), 97u);
  EXPECT_EQ(S.issuesFound(), 1u);
  S.free(P);
}

TEST(ReporterTest, TotalCapAcrossBuckets) {
  SessionOptions Options = quietOptions();
  Options.Reporter.MaxTotalReports = 2;
  Sanitizer S(Options);
  std::vector<std::string> Errors;
  S.setErrorCallback(collectErrors, &Errors);

  runBuggyProgram(S); // Three distinct buckets; only two get emitted.
  EXPECT_EQ(Errors.size(), 2u);
  EXPECT_EQ(S.issuesFound(), 3u);
  EXPECT_EQ(S.reporter().numSuppressed(), 1u);
}

TEST(ReporterTest, DeferredRenderingLeavesCountingBucketsUnrendered) {
  // Render-on-demand (opt-in): counting-mode buckets skip the string
  // build; all bucketing, dedup and counting behave identically.
  SessionOptions Options = quietOptions();
  Options.Reporter.DeferMessageRendering = true;
  Sanitizer S(Options);
  runBuggyProgram(S);
  EXPECT_EQ(S.issuesFound(), 3u);
  for (const ErrorBucket &B : S.reporter().buckets())
    EXPECT_TRUE(B.Message.empty()) << B.Message;

  // Log mode renders regardless — it has to print something.
  std::FILE *Tmp = std::tmpfile();
  ASSERT_NE(Tmp, nullptr);
  SessionOptions LogOptions;
  LogOptions.Reporter.Mode = ReportMode::Log;
  LogOptions.Reporter.Stream = Tmp;
  LogOptions.Reporter.DeferMessageRendering = true;
  Sanitizer LogS(LogOptions);
  runBuggyProgram(LogS);
  EXPECT_EQ(LogS.issuesFound(), 3u);
  for (const ErrorBucket &B : LogS.reporter().buckets())
    EXPECT_FALSE(B.Message.empty());
  std::fclose(Tmp);
}

//===----------------------------------------------------------------------===//
// The stable C ABI
//===----------------------------------------------------------------------===//

void abiCallback(const effsan_error *Error, void *UserData) {
  auto *Kinds = static_cast<std::vector<uint32_t> *>(UserData);
  Kinds->push_back(Error->kind);
  EXPECT_NE(Error->message, nullptr);
}

TEST(EffsanAbiTest, VersionAndSessionLifecycle) {
  EXPECT_EQ(effsan_abi_version(), (uint32_t)EFFSAN_ABI_VERSION);

  effsan_options Options;
  effsan_options_init(&Options);
  EXPECT_EQ(Options.struct_size, sizeof(effsan_options));
  Options.log_errors = 0;
  Options.policy = EFFSAN_POLICY_BOUNDS_ONLY;

  effsan_session *S = effsan_session_create(&Options);
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(effsan_session_policy(S), (uint32_t)EFFSAN_POLICY_BOUNDS_ONLY);
  effsan_session_destroy(S);
}

TEST(EffsanAbiTest, TypedAllocationAndChecks) {
  effsan_options Options;
  effsan_options_init(&Options);
  Options.log_errors = 0;
  effsan_session *S = effsan_session_create(&Options);
  ASSERT_NE(S, nullptr);

  std::vector<uint32_t> Kinds;
  effsan_set_error_callback(S, abiCallback, &Kinds);

  // struct account { int number[8]; float balance; } via the builder.
  effsan_type IntTy = effsan_type_primitive(S, EFFSAN_PRIM_INT);
  effsan_type FloatTy = effsan_type_primitive(S, EFFSAN_PRIM_FLOAT);
  effsan_struct_builder *B = effsan_struct_begin(S, "account");
  effsan_struct_field(B, "number", effsan_type_array(S, IntTy, 8));
  effsan_struct_field(B, "balance", FloatTy);
  effsan_type AccountTy = effsan_struct_end(B);
  ASSERT_NE(AccountTy, nullptr);
  EXPECT_EQ(effsan_type_size(AccountTy), 36u);

  char Name[64];
  EXPECT_STREQ(effsan_type_name(AccountTy, Name, sizeof(Name)),
               "struct account");

  void *P = effsan_malloc(S, (size_t)effsan_type_size(AccountTy),
                          AccountTy);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(effsan_type_of(S, P), AccountTy);

  // type_check as int[] narrows to the number[] sub-object; number[8]
  // is the paper's off-by-one.
  effsan_bounds Bounds = effsan_type_check(S, P, IntTy);
  char *Raw = static_cast<char *>(P);
  EXPECT_EQ(Bounds.hi - Bounds.lo, 8 * sizeof(int));
  effsan_bounds_check(S, Raw + 8 * sizeof(int), sizeof(int), Bounds);

  // Double free through the ABI.
  effsan_free(S, P);
  effsan_free(S, P);

  effsan_counters Counters;
  effsan_get_counters(S, &Counters);
  EXPECT_EQ(Counters.type_checks, 1u);
  EXPECT_EQ(Counters.bounds_checks, 1u);
  EXPECT_EQ(Counters.issues_found, 2u);
  ASSERT_EQ(Kinds.size(), 2u);
  EXPECT_EQ(Kinds[0], (uint32_t)EFFSAN_ERROR_BOUNDS);
  EXPECT_EQ(Kinds[1], (uint32_t)EFFSAN_ERROR_DOUBLE_FREE);

  effsan_session_destroy(S);
}

TEST(EffsanAbiTest, UnionBuilderThroughTheAbi) {
  // ABI 1.2: unions share the struct builder protocol.
  effsan_options Options;
  effsan_options_init(&Options);
  Options.log_errors = 0;
  effsan_session *S = effsan_session_create(&Options);
  ASSERT_NE(S, nullptr);

  effsan_type IntTy = effsan_type_primitive(S, EFFSAN_PRIM_INT);
  effsan_type DoubleTy = effsan_type_primitive(S, EFFSAN_PRIM_DOUBLE);
  effsan_struct_builder *B = effsan_union_begin(S, "number");
  effsan_struct_field(B, "i", IntTy);
  effsan_struct_field(B, "d", DoubleTy);
  effsan_type UnionTy = effsan_struct_end(B);
  ASSERT_NE(UnionTy, nullptr);
  EXPECT_EQ(effsan_type_size(UnionTy), 8u)
      << "union size is the widest member";
  char Name[64];
  EXPECT_STREQ(effsan_type_name(UnionTy, Name, sizeof(Name)),
               "union number");

  void *P = effsan_malloc(S, (size_t)effsan_type_size(UnionTy), UnionTy);
  ASSERT_NE(P, nullptr);
  // Every member's static type matches at offset 0...
  effsan_bounds BI = effsan_type_check(S, P, IntTy);
  effsan_bounds BD = effsan_type_check(S, P, DoubleTy);
  EXPECT_EQ(BD.hi - BD.lo, 8u);
  EXPECT_LE(BI.hi - BI.lo, 8u);
  // ...and no type error was raised.
  effsan_counters Counters;
  effsan_get_counters(S, &Counters);
  EXPECT_EQ(Counters.issues_found, 0u);

  effsan_free(S, P);
  effsan_session_destroy(S);
}

TEST(EffsanAbiTest, FlexibleArrayMemberThroughTheAbi) {
  // ABI 1.2: a FAM tail on the struct builder. struct msg { long len;
  // int data[]; } allocated with a 12-element tail.
  effsan_options Options;
  effsan_options_init(&Options);
  Options.log_errors = 0;
  effsan_session *S = effsan_session_create(&Options);
  ASSERT_NE(S, nullptr);

  effsan_type LongTy = effsan_type_primitive(S, EFFSAN_PRIM_LONG);
  effsan_type IntTy = effsan_type_primitive(S, EFFSAN_PRIM_INT);
  effsan_struct_builder *B = effsan_struct_begin(S, "msg");
  effsan_struct_field(B, "len", LongTy);
  effsan_struct_flexible_array(B, "data", IntTy);
  effsan_type MsgTy = effsan_struct_end(B);
  ASSERT_NE(MsgTy, nullptr);
  // The FAM is represented as int[1]: sizeof(msg) == 8 + 4 (+ padding
  // to long alignment).
  EXPECT_EQ(effsan_type_size(MsgTy), 16u);

  size_t Alloc = 8 + 12 * sizeof(int);
  char *P = static_cast<char *>(effsan_malloc(S, Alloc, MsgTy));
  ASSERT_NE(P, nullptr);

  // Element-base pointers into the tail type-check as int[], with
  // bounds clamped to the allocation (element 1's base doubles as the
  // in-struct member's one-past-the-end and keeps that narrower entry,
  // per the paper's FAM-as-member[1] approximation).
  for (int Elem : {0, 2, 5, 11}) {
    effsan_bounds Bd =
        effsan_type_check(S, P + 8 + Elem * sizeof(int), IntTy);
    EXPECT_LE(Bd.lo, reinterpret_cast<uintptr_t>(P + 8)) << Elem;
    EXPECT_EQ(Bd.hi, reinterpret_cast<uintptr_t>(P) + Alloc) << Elem;
  }
  effsan_counters Counters;
  effsan_get_counters(S, &Counters);
  EXPECT_EQ(Counters.issues_found, 0u)
      << "tail elements must not be type errors";

  // An access past the allocation is still caught by bounds_check.
  effsan_bounds Bd = effsan_type_check(S, P + 8, IntTy);
  effsan_bounds_check(S, P + Alloc, sizeof(int), Bd);
  effsan_get_counters(S, &Counters);
  EXPECT_EQ(Counters.issues_found, 1u);

  effsan_free(S, P);
  effsan_session_destroy(S);
}

TEST(EffsanAbiTest, SiteCacheStatsThroughTheAbi) {
  effsan_options Options;
  effsan_options_init(&Options);
  Options.log_errors = 0;
  effsan_session *S = effsan_session_create(&Options);
  ASSERT_NE(S, nullptr);

  effsan_type IntTy = effsan_type_primitive(S, EFFSAN_PRIM_INT);
  int *P = (int *)effsan_malloc(S, 100 * sizeof(int), IntTy);
  // Even element indices all normalize to offset 0 (index 1 would be
  // the sizeof(T) domain position with its own resolution).
  for (int I = 0; I < 10; ++I)
    effsan_type_check(S, P + 2 * I, IntTy);
  EXPECT_EQ(effsan_type_check_cache_misses(S), 1u);
  EXPECT_EQ(effsan_type_check_cache_hits(S), 9u);

  effsan_counters Counters;
  effsan_get_counters(S, &Counters);
  EXPECT_EQ(effsan_type_check_cache_hits(S) +
                effsan_type_check_cache_misses(S) +
                Counters.legacy_type_checks,
            Counters.type_checks);

  // Disabling the cache through the 1.2 tail option forces the slow
  // path on every check.
  Options.site_cache_entries = 0;
  effsan_session *S2 = effsan_session_create(&Options);
  ASSERT_NE(S2, nullptr);
  effsan_type IntTy2 = effsan_type_primitive(S2, EFFSAN_PRIM_INT);
  int *Q = (int *)effsan_malloc(S2, 64, IntTy2);
  for (int I = 0; I < 5; ++I)
    effsan_type_check(S2, Q, IntTy2);
  EXPECT_EQ(effsan_type_check_cache_hits(S2), 0u);
  EXPECT_EQ(effsan_type_check_cache_misses(S2), 5u);
  effsan_free(S2, Q);
  effsan_session_destroy(S2);

  effsan_free(S, P);
  effsan_session_destroy(S);
}

TEST(EffsanAbiTest, SessionResetThroughTheAbi) {
  effsan_options Options;
  effsan_options_init(&Options);
  Options.log_errors = 0;
  effsan_session *S = effsan_session_create(&Options);
  ASSERT_NE(S, nullptr);

  effsan_type IntTy = effsan_type_primitive(S, EFFSAN_PRIM_INT);
  void *First = effsan_malloc(S, 4 * sizeof(int), IntTy);
  effsan_bounds Bounds = effsan_bounds_get(S, First);
  effsan_bounds_check(S, static_cast<int *>(First) + 10, sizeof(int),
                      Bounds);

  effsan_counters Counters;
  effsan_get_counters(S, &Counters);
  ASSERT_EQ(Counters.issues_found, 1u);
  ASSERT_EQ(Counters.bounds_gets, 1u);

  effsan_session_reset(S);

  effsan_get_counters(S, &Counters);
  EXPECT_EQ(Counters.issues_found, 0u);
  EXPECT_EQ(Counters.error_events, 0u);
  EXPECT_EQ(Counters.bounds_gets, 0u);
  EXPECT_EQ(Counters.bounds_checks, 0u);

  // Arena recycled: the first tenant's first address comes back, and
  // type handles stay valid across the reset.
  void *Fresh = effsan_malloc(S, 4 * sizeof(int), IntTy);
  EXPECT_EQ(Fresh, First);
  EXPECT_EQ(effsan_type_of(S, Fresh), IntTy);
  effsan_free(S, Fresh);
  effsan_session_destroy(S);
}

TEST(EffsanAbiTest, PoolCheckoutDrainAndMergedCounters) {
  effsan_pool_options Options;
  effsan_pool_options_init(&Options);
  EXPECT_EQ(Options.struct_size, sizeof(effsan_pool_options));
  Options.shards = 2;
  Options.log_errors = 0;
  effsan_pool *Pool = effsan_pool_create(&Options);
  ASSERT_NE(Pool, nullptr);
  ASSERT_EQ(effsan_pool_num_shards(Pool), 2u);

  std::vector<uint32_t> Kinds;
  effsan_pool_set_error_callback(Pool, abiCallback, &Kinds);

  // Two worker threads, each on its own checked-out shard, trip the
  // same overflow; one supervisor drain reports it once.
  auto Work = [Pool] {
    effsan_session *S = effsan_pool_checkout(Pool);
    ASSERT_NE(S, nullptr);
    EXPECT_EQ(S, effsan_pool_checkout(Pool)) << "sticky per thread";
    effsan_type IntTy = effsan_type_primitive(S, EFFSAN_PRIM_INT);
    int *P = static_cast<int *>(effsan_malloc(S, 4 * sizeof(int), IntTy));
    effsan_bounds Bounds = effsan_type_check(S, P, IntTy);
    effsan_bounds_check(S, P + 4, sizeof(int), Bounds);
    effsan_free(S, P);
  };
  std::thread A(Work), B(Work);
  A.join();
  B.join();

  effsan_counters Counters;
  effsan_pool_get_counters(Pool, &Counters); // Implies a drain.
  EXPECT_EQ(Counters.type_checks, 2u);
  EXPECT_EQ(Counters.bounds_checks, 2u);
  EXPECT_EQ(Counters.error_events, 2u);
  EXPECT_EQ(Counters.issues_found, 1u)
      << "same issue from both shards buckets once";
  EXPECT_EQ(Kinds.size(), 1u) << "dedup cap of 1 emits one report";

  // Destroying a checked-out session is a guarded no-op; the pool owns
  // its shards.
  effsan_session_destroy(effsan_pool_shard(Pool, 0));
  EXPECT_NE(effsan_pool_shard(Pool, 1), nullptr);
  EXPECT_EQ(effsan_pool_shard(Pool, 2), nullptr);
  effsan_pool_destroy(Pool);
}

TEST(EffsanAbiTest, DedupCapThroughTheAbi) {
  effsan_options Options;
  effsan_options_init(&Options);
  Options.log_errors = 0;
  Options.max_reports_per_location = 2;
  effsan_session *S = effsan_session_create(&Options);
  ASSERT_NE(S, nullptr);

  std::vector<uint32_t> Kinds;
  effsan_set_error_callback(S, abiCallback, &Kinds);

  effsan_type IntTy = effsan_type_primitive(S, EFFSAN_PRIM_INT);
  int *P = static_cast<int *>(effsan_malloc(S, 4 * sizeof(int), IntTy));
  effsan_bounds Bounds = effsan_bounds_get(S, P);
  for (int I = 0; I < 50; ++I)
    effsan_bounds_check(S, P + 10, sizeof(int), Bounds);

  effsan_counters Counters;
  effsan_get_counters(S, &Counters);
  EXPECT_EQ(Kinds.size(), 2u);
  EXPECT_EQ(Counters.error_events, 50u);
  EXPECT_EQ(Counters.reports_suppressed, 48u);

  effsan_free(S, P);
  effsan_session_destroy(S);
}

//===----------------------------------------------------------------------===//
// ABI 1.3: site attribution and back-compat
//===----------------------------------------------------------------------===//

namespace {

struct V2Capture {
  std::vector<std::string> Messages;
  std::vector<uint32_t> Sites;
  std::vector<std::string> Files;
  std::vector<uint32_t> Lines;
};

void abiCallbackV2(const effsan_error_v2 *Error, void *UserData) {
  auto *C = static_cast<V2Capture *>(UserData);
  C->Messages.push_back(Error->message);
  C->Sites.push_back(Error->site);
  C->Files.push_back(Error->file ? Error->file : "");
  C->Lines.push_back(Error->line);
}

} // namespace

TEST(EffsanAbiTest, SiteAttributedReportsThroughTheAbi) {
  effsan_options Options;
  effsan_options_init(&Options);
  Options.log_errors = 0;
  effsan_session *S = effsan_session_create(&Options);
  ASSERT_NE(S, nullptr);

  V2Capture Capture;
  effsan_set_error_callback_v2(S, abiCallbackV2, &Capture);

  effsan_type IntTy = effsan_type_primitive(S, EFFSAN_PRIM_INT);
  effsan_site_info Sites[1];
  Sites[0].line = 41;
  Sites[0].column = 7;
  Sites[0].kind = EFFSAN_CHECK_BOUNDS;
  Sites[0].function = "hot_loop";
  Sites[0].static_type = IntTy;
  uint32_t Base = effsan_site_table_register(S, "spec.c", Sites, 1);
  ASSERT_NE(Base, EFFSAN_NO_SITE);

  int *P = static_cast<int *>(effsan_malloc(S, 10 * sizeof(int), IntTy));
  effsan_bounds B = effsan_type_check_at(S, P, IntTy, EFFSAN_NO_SITE);
  for (int I = 0; I < 3; ++I)
    effsan_bounds_check_at(S, P + 10, sizeof(int), B, Base);

  // One deduplicated, fully attributed report.
  ASSERT_EQ(Capture.Messages.size(), 1u);
  EXPECT_EQ(Capture.Messages[0],
            "BOUNDS ERROR at spec.c:41:7 in hot_loop: allocated (int), "
            "accessed via (bounds_check) at offset 40 "
            "[out-of-bounds access]");
  EXPECT_EQ(Capture.Sites[0], Base);
  EXPECT_EQ(Capture.Files[0], "spec.c");
  EXPECT_EQ(Capture.Lines[0], 41u);

  // Per-site counter: every event, not just emitted reports.
  EXPECT_EQ(effsan_site_error_events(S, Base), 3u);
  EXPECT_EQ(effsan_site_error_events(S, Base + 1), 0u);

  effsan_free(S, P);
  effsan_session_destroy(S);
}

TEST(EffsanAbiTest, AbiV13BackCompat) {
  // A caller compiled against the 1.2 header: it passes a 1.2-sized
  // options prefix, never mentions sites, and installs only the v1
  // callback. Everything must behave exactly as it did under 1.2.
  EXPECT_GE(effsan_abi_version(), (1u << 16) | 3u);

  effsan_options Options;
  effsan_options_init(&Options);
  Options.log_errors = 0;
  // The 1.2 struct ended with site_cache_entries; simulate the old
  // footprint by declaring the prefix size only.
  Options.struct_size = static_cast<uint32_t>(
      offsetof(effsan_options, site_cache_entries) +
      sizeof(Options.site_cache_entries));
  effsan_session *S = effsan_session_create(&Options);
  ASSERT_NE(S, nullptr);

  std::vector<uint32_t> Kinds;
  effsan_set_error_callback(S, abiCallback, &Kinds);

  effsan_type IntTy = effsan_type_primitive(S, EFFSAN_PRIM_INT);
  int *P = static_cast<int *>(effsan_malloc(S, 4 * sizeof(int), IntTy));
  effsan_bounds B = effsan_type_check(S, P, IntTy);
  effsan_bounds_check(S, P + 4, sizeof(int), B);

  // The v1 callback fires as before; the unsited report keeps the
  // legacy pointer-carrying format.
  ASSERT_EQ(Kinds.size(), 1u);
  EXPECT_EQ(Kinds[0], (uint32_t)EFFSAN_ERROR_BOUNDS);

  effsan_counters Counters;
  effsan_get_counters(S, &Counters);
  EXPECT_EQ(Counters.type_checks, 1u);
  EXPECT_EQ(Counters.bounds_checks, 1u);
  EXPECT_EQ(Counters.issues_found, 1u);

  // 1.2-era cache statistics still work.
  EXPECT_EQ(effsan_type_check_cache_hits(S) +
                effsan_type_check_cache_misses(S),
            1u);

  // Installing a v2 sink does not disturb the v1 sink: both fire for
  // the next fresh bucket (a double free).
  V2Capture Capture;
  effsan_set_error_callback_v2(S, abiCallbackV2, &Capture);
  effsan_free(S, P);
  effsan_free(S, P);
  EXPECT_EQ(Kinds.size(), 2u);
  ASSERT_EQ(Capture.Messages.size(), 1u);
  EXPECT_EQ(Capture.Sites[0], (uint32_t)EFFSAN_NO_SITE)
      << "unsited paths report no site";

  effsan_session_destroy(S);
}

//===----------------------------------------------------------------------===//
// ABI 1.4: allocator fast-path knobs, heap stats, deferred rendering
//===----------------------------------------------------------------------===//

TEST(EffsanAbiTest, HeapStatsAndMagazinesThroughTheAbi) {
  EXPECT_GE(effsan_abi_version(), (1u << 16) | 4u);

  effsan_options Options;
  effsan_options_init(&Options);
  EXPECT_EQ(Options.magazine_size, 16u) << "1.4 default";
  Options.log_errors = 0;
  Options.magazine_size = 8;
  effsan_session *S = effsan_session_create(&Options);
  ASSERT_NE(S, nullptr);

  effsan_type IntTy = effsan_type_primitive(S, EFFSAN_PRIM_INT);
  for (int I = 0; I < 50; ++I) {
    void *P = effsan_malloc(S, 64, IntTy);
    effsan_free(S, P);
  }

  effsan_heap_stats Stats;
  std::memset(&Stats, 0, sizeof(Stats));
  Stats.struct_size = sizeof(Stats);
  effsan_get_heap_stats(S, &Stats);
  EXPECT_EQ(Stats.num_allocs, 50u);
  EXPECT_EQ(Stats.num_frees, 50u);
  EXPECT_EQ(Stats.block_bytes_in_use, 0u);
  EXPECT_GT(Stats.magazine_hits, 40u)
      << "steady-state churn must be magazine-served";
  EXPECT_EQ(Stats.exhaust_fallbacks, 0u);

  // A caller-declared prefix (growability contract): only the prefix
  // is written.
  effsan_heap_stats Partial;
  std::memset(&Partial, 0xee, sizeof(Partial));
  Partial.struct_size =
      offsetof(effsan_heap_stats, num_allocs); // Pre-"1.5" caller.
  effsan_get_heap_stats(S, &Partial);
  EXPECT_EQ(Partial.block_bytes_in_use, 0u);
  EXPECT_EQ(Partial.num_allocs, 0xeeeeeeeeeeeeeeeeull)
      << "fields beyond the declared prefix must not be written";

  // A caller built against a FUTURE, larger struct: the tail this
  // library predates must read as zero, never as stack garbage.
  struct Future {
    effsan_heap_stats Known;
    uint64_t NewCounter;
  } Grown;
  std::memset(&Grown, 0xee, sizeof(Grown));
  Grown.Known.struct_size = sizeof(Grown);
  effsan_get_heap_stats(S, &Grown.Known);
  EXPECT_EQ(Grown.Known.num_allocs, 50u);
  EXPECT_EQ(Grown.NewCounter, 0u)
      << "declared-but-unknown tail must be zeroed";

  effsan_session_destroy(S);

  // magazine_size = 0 disables the TLS cache entirely.
  Options.magazine_size = 0;
  effsan_session *S0 = effsan_session_create(&Options);
  ASSERT_NE(S0, nullptr);
  effsan_type IntTy0 = effsan_type_primitive(S0, EFFSAN_PRIM_INT);
  for (int I = 0; I < 10; ++I) {
    void *P = effsan_malloc(S0, 64, IntTy0);
    effsan_free(S0, P);
  }
  std::memset(&Stats, 0, sizeof(Stats));
  Stats.struct_size = sizeof(Stats);
  effsan_get_heap_stats(S0, &Stats);
  EXPECT_EQ(Stats.magazine_hits, 0u);
  EXPECT_EQ(Stats.num_allocs, 10u);
  effsan_session_destroy(S0);
}

namespace {

/// Sink for the deferred-rendering test: records whether messages were
/// NULL (must not construct std::string from NULL).
struct DeferCapture {
  unsigned Calls = 0;
  unsigned NullMessages = 0;
};

void deferCallbackV2(const effsan_error_v2 *Error, void *UserData) {
  auto *C = static_cast<DeferCapture *>(UserData);
  ++C->Calls;
  if (!Error->message)
    ++C->NullMessages;
}

} // namespace

TEST(EffsanAbiTest, DeferredRenderingSkipsMessagesInCountMode) {
  effsan_options Options;
  effsan_options_init(&Options);
  Options.log_errors = 0; // Counting mode.
  Options.defer_error_rendering = 1;
  effsan_session *S = effsan_session_create(&Options);
  ASSERT_NE(S, nullptr);

  DeferCapture Capture;
  effsan_set_error_callback_v2(S, deferCallbackV2, &Capture);

  effsan_type IntTy = effsan_type_primitive(S, EFFSAN_PRIM_INT);
  int *P = (int *)effsan_malloc(S, 4 * sizeof(int), IntTy);
  effsan_bounds B = effsan_type_check(S, P, IntTy);
  effsan_bounds_check(S, P + 10, sizeof(int), B);

  EXPECT_EQ(Capture.Calls, 1u);
  EXPECT_EQ(Capture.NullMessages, 1u)
      << "deferred rendering must surface NULL, not an empty render";
  effsan_counters Counters;
  effsan_get_counters(S, &Counters);
  EXPECT_EQ(Counters.issues_found, 1u)
      << "counting is unaffected by deferred rendering";
  effsan_free(S, P);
  effsan_session_destroy(S);

  // Default (defer off): messages keep arriving rendered.
  Options.defer_error_rendering = 0;
  effsan_session *S2 = effsan_session_create(&Options);
  ASSERT_NE(S2, nullptr);
  DeferCapture Rendered;
  effsan_set_error_callback_v2(S2, deferCallbackV2, &Rendered);
  effsan_type IntTy2 = effsan_type_primitive(S2, EFFSAN_PRIM_INT);
  int *Q = (int *)effsan_malloc(S2, 4 * sizeof(int), IntTy2);
  effsan_bounds B2 = effsan_type_check(S2, Q, IntTy2);
  effsan_bounds_check(S2, Q + 10, sizeof(int), B2);
  EXPECT_EQ(Rendered.Calls, 1u);
  EXPECT_EQ(Rendered.NullMessages, 0u);
  effsan_free(S2, Q);
  effsan_session_destroy(S2);
}

TEST(EffsanAbiTest, PoolHeapStatsAndStealingThroughTheAbi) {
  effsan_pool_options Options;
  effsan_pool_options_init(&Options);
  EXPECT_EQ(Options.magazine_size, 16u);
  EXPECT_EQ(Options.enable_work_stealing, 0);
  Options.shards = 2;
  Options.log_errors = 0;
  Options.enable_work_stealing = 1;
  Options.magazine_size = 8;
  effsan_pool *Pool = effsan_pool_create(&Options);
  ASSERT_NE(Pool, nullptr);

  effsan_session *Shard0 = effsan_pool_shard(Pool, 0);
  effsan_type IntTy = effsan_type_primitive(Shard0, EFFSAN_PRIM_INT);
  for (int I = 0; I < 30; ++I) {
    void *P = effsan_malloc(Shard0, 64, IntTy);
    effsan_free(Shard0, P);
  }

  effsan_heap_stats ShardStats;
  std::memset(&ShardStats, 0, sizeof(ShardStats));
  ShardStats.struct_size = sizeof(ShardStats);
  effsan_get_heap_stats(Shard0, &ShardStats);
  EXPECT_EQ(ShardStats.num_allocs, 30u);
  EXPECT_GT(ShardStats.magazine_hits, 20u);

  effsan_heap_stats PoolStats;
  std::memset(&PoolStats, 0, sizeof(PoolStats));
  PoolStats.struct_size = sizeof(PoolStats);
  effsan_pool_get_heap_stats(Pool, &PoolStats);
  EXPECT_GE(PoolStats.num_allocs, ShardStats.num_allocs)
      << "pool stats sum over shards";
  EXPECT_EQ(PoolStats.steals, 0u) << "nothing exhausted here";

  effsan_pool_destroy(Pool);
}

} // namespace

//===----------------------------------------------------------------------===//
// Program execution through the ABI (since 1.7)
//===----------------------------------------------------------------------===//

namespace {

/// Collects effsan_run_minic output chunks into a std::string.
void collectOutput(const char *Data, size_t Len, void *UserData) {
  static_cast<std::string *>(UserData)->append(Data, Len);
}

} // namespace

TEST(EffsanAbiTest, RunMinicThroughBothEngines) {
  constexpr const char *Source = R"(
int main() {
  int *a = (int *)malloc(16 * sizeof(int));
  int i;
  for (i = 0; i < 16; i = i + 1)
    a[i] = i;
  int t = 0;
  for (i = 0; i < 16; i = i + 1)
    t = t + a[i];
  print_int(t);
  free(a);
  return t % 100;
}
)";
  effsan_run_result Results[2];
  std::string Outputs[2];
  const uint32_t Engines[2] = {EFFSAN_ENGINE_BYTECODE, EFFSAN_ENGINE_TREE};

  for (int E = 0; E < 2; ++E) {
    effsan_options Options;
    effsan_options_init(&Options);
    EXPECT_EQ(Options.engine, (uint32_t)EFFSAN_ENGINE_BYTECODE)
        << "the VM is the default engine";
    Options.log_errors = 0;
    Options.engine = Engines[E];
    effsan_session *S = effsan_session_create(&Options);
    ASSERT_NE(S, nullptr);
    EXPECT_EQ(effsan_session_engine(S), Engines[E]);

    effsan_run_options Run;
    effsan_run_options_init(&Run);
    Run.output = collectOutput;
    Run.output_user_data = &Outputs[E];

    std::memset(&Results[E], 0, sizeof(Results[E]));
    Results[E].struct_size = sizeof(Results[E]);
    ASSERT_NE(effsan_run_minic(S, Source, &Run, &Results[E]), 0)
        << Results[E].fault;
    EXPECT_NE(Results[E].ok, 0u) << Results[E].fault;
    effsan_session_destroy(S);
  }

  // Differential through the C surface: identical everything but steps.
  EXPECT_EQ(Results[0].exit_code, 120 % 100);
  EXPECT_EQ(Results[0].exit_code, Results[1].exit_code);
  EXPECT_EQ(Results[0].type_checks, Results[1].type_checks);
  EXPECT_EQ(Results[0].bounds_gets, Results[1].bounds_gets);
  EXPECT_EQ(Results[0].bounds_checks, Results[1].bounds_checks);
  EXPECT_EQ(Results[0].bounds_narrows, Results[1].bounds_narrows);
  EXPECT_EQ(Results[0].issues_reported, 0u);
  EXPECT_EQ(Results[1].issues_reported, 0u);
  EXPECT_EQ(Outputs[0], "120\n");
  EXPECT_EQ(Outputs[0], Outputs[1]);
  EXPECT_GT(Results[0].bounds_checks, 16u) << "checks actually executed";
  EXPECT_LT(Results[0].steps, Results[1].steps)
      << "superinstructions retire more work per step";
}

TEST(EffsanAbiTest, RunMinicReportsIntoTheSession) {
  effsan_options Options;
  effsan_options_init(&Options);
  Options.log_errors = 0;
  effsan_session *S = effsan_session_create(&Options);
  ASSERT_NE(S, nullptr);

  effsan_run_result R;
  std::memset(&R, 0, sizeof(R));
  R.struct_size = sizeof(R);
  ASSERT_NE(effsan_run_minic(S, R"(
int main() {
  int *p = (int *)malloc(8 * sizeof(int));
  float *q = (float *)p;   /* bad cast */
  float f = *q;
  free(p);
  return (int)f;
}
)",
                             nullptr, &R),
            0)
      << R.fault;
  EXPECT_NE(R.ok, 0u) << "logging mode: errors reported, run continues";
  EXPECT_GE(R.issues_reported, 1u);

  // The run's issues land in the session's counters, like API checks.
  effsan_counters Counters;
  effsan_get_counters(S, &Counters);
  EXPECT_GE(Counters.issues_found, 1u);
  EXPECT_GE(Counters.type_checks, 1u);
  effsan_session_destroy(S);
}

TEST(EffsanAbiTest, RunMinicCompileErrorAndFaultPaths) {
  effsan_options Options;
  effsan_options_init(&Options);
  Options.log_errors = 0;
  effsan_session *S = effsan_session_create(&Options);
  ASSERT_NE(S, nullptr);

  // Frontend error: returns 0, fault carries the diagnostic.
  effsan_run_result R;
  std::memset(&R, 0, sizeof(R));
  R.struct_size = sizeof(R);
  EXPECT_EQ(effsan_run_minic(S, "int main() { return missing; }",
                             nullptr, &R),
            0);
  EXPECT_EQ(R.ok, 0u);
  EXPECT_NE(std::string(R.fault).find("missing"), std::string::npos)
      << R.fault;

  // VM fault: budget exhaustion surfaces through ok=0 + fault text.
  effsan_run_options Run;
  effsan_run_options_init(&Run);
  Run.max_steps = 5000;
  std::memset(&R, 0, sizeof(R));
  R.struct_size = sizeof(R);
  ASSERT_NE(effsan_run_minic(S, "int main() { while (1) { } return 0; }",
                             &Run, &R),
            0);
  EXPECT_EQ(R.ok, 0u);
  EXPECT_NE(std::string(R.fault).find("budget"), std::string::npos)
      << R.fault;
  effsan_session_destroy(S);
}

TEST(EffsanAbiTest, PoolShardsInheritThePoolEngine) {
  effsan_pool_options Options;
  effsan_pool_options_init(&Options);
  EXPECT_EQ(Options.engine, (uint32_t)EFFSAN_ENGINE_BYTECODE);
  Options.log_errors = 0;
  Options.shards = 2;
  Options.engine = EFFSAN_ENGINE_TREE;
  effsan_pool *Pool = effsan_pool_create(&Options);
  ASSERT_NE(Pool, nullptr);
  for (uint32_t I = 0; I < effsan_pool_num_shards(Pool); ++I)
    EXPECT_EQ(effsan_session_engine(effsan_pool_shard(Pool, I)),
              (uint32_t)EFFSAN_ENGINE_TREE);

  // Shard sessions run programs like owned sessions do.
  effsan_run_result R;
  std::memset(&R, 0, sizeof(R));
  R.struct_size = sizeof(R);
  ASSERT_NE(effsan_run_minic(effsan_pool_shard(Pool, 0),
                             "int main() { return 7; }", nullptr, &R),
            0)
      << R.fault;
  EXPECT_NE(R.ok, 0u);
  EXPECT_EQ(R.exit_code, 7);
  effsan_pool_destroy(Pool);
}
