//===- tests/interp_test.cpp - End-to-end VM + sanitizer tests ------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// End-to-end tests: MiniC programs compiled with the Figure 3 schema
/// and executed on the VM against the real runtime. Clean programs are
/// silent under full instrumentation; seeded type/bounds/use-after-free
/// errors are detected (and the run still completes, as in the paper's
/// logging mode); the reduced variants detect exactly their classes.
///
//===----------------------------------------------------------------------===//

#include "instrument/Pipeline.h"
#include "interp/Interp.h"

#include <gtest/gtest.h>

using namespace effective;
using namespace effective::instrument;

namespace {

struct ProgramRun {
  interp::RunResult R;
  uint64_t TypeErrors = 0;
  uint64_t BoundsErrors = 0;
  uint64_t UafErrors = 0;
  uint64_t DoubleFrees = 0;
  uint64_t StackUarErrors = 0;
};

/// Compiles and runs \p Source under \p V; asserts compilation itself
/// succeeds.
ProgramRun runProgram(std::string_view Source,
                      Variant V = Variant::Full) {
  TypeContext Types;
  RuntimeOptions RTOpts;
  RTOpts.Reporter.Mode = ReportMode::Count;
  Runtime RT(Types, RTOpts);

  DiagnosticEngine Diags;
  InstrumentOptions Opts;
  Opts.V = V;
  CompileResult C = compileMiniC(Source, Types, Diags, Opts);
  for (const Diagnostic &D : Diags.diagnostics())
    ADD_FAILURE() << D.Loc.Line << ":" << D.Loc.Column << ": "
                  << D.Message;
  ProgramRun Out;
  if (!C.M)
    return Out;

  Out.R = interp::run(*C.M, RT);
  Out.TypeErrors = RT.reporter().numIssues(ErrorKind::TypeError);
  Out.BoundsErrors = RT.reporter().numIssues(ErrorKind::BoundsError);
  Out.UafErrors = RT.reporter().numIssues(ErrorKind::UseAfterFree);
  Out.DoubleFrees = RT.reporter().numIssues(ErrorKind::DoubleFree);
  Out.StackUarErrors =
      RT.reporter().numIssues(ErrorKind::StackUseAfterReturn);
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Clean programs: correct results, zero reports
//===----------------------------------------------------------------------===//

TEST(Execution, Arithmetic) {
  ProgramRun P = runProgram(R"(
int main() { return (3 + 4) * 5 - 100 / 4 + (27 % 4); }
)");
  ASSERT_TRUE(P.R.Ok) << P.R.Fault;
  EXPECT_EQ(P.R.ExitCode, 35 - 25 + 3);
  EXPECT_EQ(P.R.IssuesReported, 0u);
}

TEST(Execution, FibonacciRecursion) {
  ProgramRun P = runProgram(R"(
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int main() { return fib(15); }
)");
  ASSERT_TRUE(P.R.Ok) << P.R.Fault;
  EXPECT_EQ(P.R.ExitCode, 610);
  EXPECT_EQ(P.R.IssuesReported, 0u);
}

TEST(Execution, PrintBuiltins) {
  ProgramRun P = runProgram(R"(
int main() {
  print_int(42);
  print_float(2.5);
  print_str("hello world");
  return 0;
}
)");
  ASSERT_TRUE(P.R.Ok) << P.R.Fault;
  EXPECT_EQ(P.R.Output, "42\n2.5\nhello world\n");
  EXPECT_EQ(P.R.IssuesReported, 0u);
}

TEST(Execution, LinkedListLength) {
  ProgramRun P = runProgram(R"(
struct node { int value; struct node *next; };

struct node *push(struct node *head, int v) {
  struct node *n = (struct node *)malloc(sizeof(struct node));
  n->value = v;
  n->next = head;
  return n;
}

int length(struct node *xs) {
  int len = 0;
  while (xs != NULL) {
    len = len + 1;
    xs = xs->next;
  }
  return len;
}

int main() {
  struct node *head = NULL;
  int i;
  for (i = 0; i < 10; i = i + 1)
    head = push(head, i);
  int len = length(head);
  while (head != NULL) {
    struct node *next = head->next;
    free(head);
    head = next;
  }
  return len;
}
)");
  ASSERT_TRUE(P.R.Ok) << P.R.Fault;
  EXPECT_EQ(P.R.ExitCode, 10);
  EXPECT_EQ(P.R.IssuesReported, 0u);
  EXPECT_GT(P.R.Checks.TypeChecks, 10u); // Re-checked per node.
}

TEST(Execution, SumArray) {
  ProgramRun P = runProgram(R"(
int sum(int *a, int len) {
  int s = 0;
  int i;
  for (i = 0; i < len; i = i + 1)
    s = s + a[i];
  return s;
}
int main() {
  int *a = (int *)malloc(100 * sizeof(int));
  int i;
  for (i = 0; i < 100; i = i + 1)
    a[i] = i;
  int s = sum(a, 100);
  free(a);
  return s % 251;
}
)");
  ASSERT_TRUE(P.R.Ok) << P.R.Fault;
  EXPECT_EQ(P.R.ExitCode, 4950 % 251);
  EXPECT_EQ(P.R.IssuesReported, 0u);
  // One type check at sum() entry, one per element access elided to
  // bounds checks: the Figure 4 shape.
  EXPECT_GT(P.R.Checks.BoundsChecks, 100u);
}

TEST(Execution, GlobalsStringsStructs) {
  ProgramRun P = runProgram(R"(
struct config { int verbose; double scale; };
struct config g_config;
int g_calls = 3;

double scaled(double v) {
  g_calls = g_calls + 1;
  return v * g_config.scale;
}

int main() {
  g_config.verbose = 1;
  g_config.scale = 2.5;
  double r = scaled(4.0);
  return (int)r + g_calls;
}
)");
  ASSERT_TRUE(P.R.Ok) << P.R.Fault;
  EXPECT_EQ(P.R.ExitCode, 10 + 4);
  EXPECT_EQ(P.R.IssuesReported, 0u);
}

TEST(Execution, CleanProgramSilentUnderAllVariants) {
  constexpr const char *Source = R"(
struct pair { int a; int b; };
int main() {
  struct pair *p = (struct pair *)malloc(4 * sizeof(struct pair));
  int i;
  for (i = 0; i < 4; i = i + 1) {
    p[i].a = i;
    p[i].b = 2 * i;
  }
  int total = 0;
  for (i = 0; i < 4; i = i + 1)
    total = total + p[i].a + p[i].b;
  free(p);
  return total;
}
)";
  for (Variant V :
       {Variant::None, Variant::Type, Variant::Bounds, Variant::Full}) {
    ProgramRun P = runProgram(Source, V);
    ASSERT_TRUE(P.R.Ok) << P.R.Fault;
    EXPECT_EQ(P.R.ExitCode, 0 + 0 + 1 + 2 + 2 + 4 + 3 + 6);
    EXPECT_EQ(P.R.IssuesReported, 0u) << variantName(V);
  }
}

//===----------------------------------------------------------------------===//
// Error detection: type confusion
//===----------------------------------------------------------------------===//

TEST(Detection, BadCastIsATypeError) {
  ProgramRun P = runProgram(R"(
int main() {
  int *p = (int *)malloc(8 * sizeof(int));
  float *q = (float *)p;
  float f = *q;
  free(p);
  return (int)f;
}
)");
  ASSERT_TRUE(P.R.Ok) << P.R.Fault;
  EXPECT_GE(P.TypeErrors, 1u);
}

TEST(Detection, TypeVariantCatchesBadCastOnly) {
  constexpr const char *Source = R"(
struct S { int x[8]; };
int main() {
  struct S *s = (struct S *)malloc(sizeof(struct S));
  double *q = (double *)s;      /* bad cast, result used below */
  double d = *q;
  s->x[9] = 1;                  /* sub-object overflow */
  free(s);
  return d != 0.0;
}
)";
  ProgramRun Type = runProgram(Source, Variant::Type);
  ASSERT_TRUE(Type.R.Ok) << Type.R.Fault;
  EXPECT_GE(Type.TypeErrors, 1u);
  EXPECT_EQ(Type.BoundsErrors, 0u); // No bounds checking at all.

  ProgramRun Full = runProgram(Source, Variant::Full);
  ASSERT_TRUE(Full.R.Ok) << Full.R.Fault;
  EXPECT_GE(Full.TypeErrors, 1u);
  EXPECT_GE(Full.BoundsErrors, 1u); // Full catches both.
}

TEST(Detection, UnusedBadCastIsDeliberatelySkippedByFull) {
  // Section 4: instrumentation is limited to used pointers — "it is
  // the responsibility of the eventual user of the pointer to check
  // the type". The -type variant instead checks every cast (Section
  // 6.2), so it catches what full instrumentation skips here.
  constexpr const char *Source = R"(
struct S { int x[8]; };
int main() {
  struct S *s = (struct S *)malloc(sizeof(struct S));
  double *q = (double *)s;      /* bad cast, result never used */
  free(s);
  return 0;
}
)";
  ProgramRun Full = runProgram(Source, Variant::Full);
  ASSERT_TRUE(Full.R.Ok) << Full.R.Fault;
  EXPECT_EQ(Full.TypeErrors, 0u);

  ProgramRun Type = runProgram(Source, Variant::Type);
  ASSERT_TRUE(Type.R.Ok) << Type.R.Fault;
  EXPECT_GE(Type.TypeErrors, 1u);
}

TEST(Detection, ImplicitCastThroughMemoryIsCaught) {
  // The Section 2.1 memcpy example, MiniC-style: the cast happens via a
  // void* stored in memory; the error surfaces at *use*, which is what
  // distinguishes EffectiveSan from cast-site-only tools.
  ProgramRun P = runProgram(R"(
struct holder { int *slot; };
int main() {
  float *f = (float *)malloc(4 * sizeof(float));
  struct holder h;
  h.slot = (int *)f;
  int *p = h.slot;
  int v = *p;
  free(f);
  return v;
}
)");
  ASSERT_TRUE(P.R.Ok) << P.R.Fault;
  EXPECT_GE(P.TypeErrors, 1u);
}

//===----------------------------------------------------------------------===//
// Error detection: (sub-)object bounds
//===----------------------------------------------------------------------===//

TEST(Detection, ObjectBoundsOverflow) {
  ProgramRun P = runProgram(R"(
int main() {
  int *a = (int *)malloc(33 * sizeof(int));
  int i;
  int total = 0;
  for (i = 0; i <= 33; i = i + 1)   /* off-by-one */
    total = total + a[i];
  free(a);
  return total != 0;
}
)");
  ASSERT_TRUE(P.R.Ok) << P.R.Fault;
  EXPECT_GE(P.BoundsErrors, 1u);
}

TEST(Detection, SubObjectOverflowWithinStruct) {
  // The paper's "account" example from the introduction: an overflow of
  // number[] lands in balance — inside the same allocation, invisible
  // to allocation-bounds tools.
  constexpr const char *Source = R"(
struct account { int number[8]; float balance; };
int main() {
  struct account *a = (struct account *)malloc(sizeof(struct account));
  a->balance = 100.0;
  a->number[8] = 7;           /* clobbers balance */
  free(a);
  return 0;
}
)";
  ProgramRun Full = runProgram(Source, Variant::Full);
  ASSERT_TRUE(Full.R.Ok) << Full.R.Fault;
  EXPECT_GE(Full.BoundsErrors, 1u);

  // The -bounds variant only enforces allocation bounds, so the write
  // inside the struct passes — exactly the LowFat/ASan blind spot.
  ProgramRun Bounds = runProgram(Source, Variant::Bounds);
  ASSERT_TRUE(Bounds.R.Ok) << Bounds.R.Fault;
  EXPECT_EQ(Bounds.BoundsErrors, 0u);
}

TEST(Detection, StackArrayOverflow) {
  ProgramRun P = runProgram(R"(
int main() {
  int a[4];
  int i;
  for (i = 0; i <= 4; i = i + 1)    /* off-by-one on the stack */
    a[i] = i;
  return a[0];
}
)");
  ASSERT_TRUE(P.R.Ok) << P.R.Fault;
  EXPECT_GE(P.BoundsErrors, 1u);
}

TEST(Detection, NegativeIndexUnderflow) {
  ProgramRun P = runProgram(R"(
struct vec { int header; double data[4]; };
int main() {
  struct vec *v = (struct vec *)malloc(sizeof(struct vec));
  double *d = v->data;
  double x = *(d - 1);              /* underflow into header */
  free(v);
  return x != 0.0;
}
)");
  ASSERT_TRUE(P.R.Ok) << P.R.Fault;
  EXPECT_GE(P.BoundsErrors, 1u);
}

//===----------------------------------------------------------------------===//
// Error detection: temporal
//===----------------------------------------------------------------------===//

TEST(Detection, UseAfterFreeAtInputEvent) {
  // The FREE type surfaces at the next input event — here the callee's
  // rule (a) parameter check after the object was freed.
  ProgramRun P = runProgram(R"(
struct node { int value; struct node *next; };
int readValue(struct node *n) { return n->value; }
int main() {
  struct node *n = (struct node *)malloc(sizeof(struct node));
  n->value = 42;
  free(n);
  return readValue(n);            /* use after free */
}
)");
  ASSERT_TRUE(P.R.Ok) << P.R.Fault;
  EXPECT_GE(P.UafErrors, 1u);
}

TEST(Detection, UseAfterFreeThroughReloadedPointer) {
  // Rule (c): the dangling pointer is re-loaded from memory after the
  // free, re-checking it against the (now FREE) dynamic type.
  ProgramRun P = runProgram(R"(
struct node { int value; struct node *next; };
struct node *g_head;
int main() {
  g_head = (struct node *)malloc(sizeof(struct node));
  g_head->value = 7;
  free(g_head);
  struct node *n = g_head;        /* load of a dangling pointer */
  return n->value;
}
)");
  ASSERT_TRUE(P.R.Ok) << P.R.Fault;
  EXPECT_GE(P.UafErrors, 1u);
}

TEST(Detection, DirectDerefAfterFreeIsTheKnownPartialCase) {
  // Section 4: "the Figure 3 schema is not designed to be complete
  // with respect to use-after-free errors" — a register-held pointer
  // dereferenced right after free, with no intervening input event,
  // has stale (still valid) bounds, so nothing fires. This test pins
  // the documented partiality.
  ProgramRun P = runProgram(R"(
struct node { int value; struct node *next; };
int main() {
  struct node *n = (struct node *)malloc(sizeof(struct node));
  n->value = 42;
  free(n);
  int v = n->value;               /* missed: no input event since free */
  return v;
}
)");
  ASSERT_TRUE(P.R.Ok) << P.R.Fault;
  EXPECT_EQ(P.UafErrors, 0u);
}

TEST(Detection, DoubleFree) {
  ProgramRun P = runProgram(R"(
int main() {
  int *p = (int *)malloc(16 * sizeof(int));
  free(p);
  free(p);
  return 0;
}
)");
  ASSERT_TRUE(P.R.Ok) << P.R.Fault;
  EXPECT_GE(P.DoubleFrees, 1u);
}

TEST(Detection, DanglingStackPointer) {
  // The callee's slot is rebound to STACK-FREE when the frame is
  // released; using the escaped pointer afterwards is a stack
  // use-after-return (its own error class, distinct from heap UAF).
  ProgramRun P = runProgram(R"(
int *escape() {
  int local[4];
  local[0] = 9;
  int *p = local;
  return p;
}
int main() {
  int *p = escape();
  return *p;
}
)");
  ASSERT_TRUE(P.R.Ok) << P.R.Fault;
  EXPECT_GE(P.StackUarErrors, 1u);
  EXPECT_EQ(P.UafErrors, 0u);
}

//===----------------------------------------------------------------------===//
// Checks actually execute (dynamic counts)
//===----------------------------------------------------------------------===//

TEST(Dynamic, VariantsScaleExecutedChecks) {
  constexpr const char *Source = R"(
int main() {
  int *a = (int *)malloc(64 * sizeof(int));
  int i;
  for (i = 0; i < 64; i = i + 1)
    a[i] = i;
  int t = 0;
  for (i = 0; i < 64; i = i + 1)
    t = t + a[i];
  free(a);
  return t % 100;
}
)";
  ProgramRun None = runProgram(Source, Variant::None);
  ProgramRun Type = runProgram(Source, Variant::Type);
  ProgramRun Bounds = runProgram(Source, Variant::Bounds);
  ProgramRun Full = runProgram(Source, Variant::Full);

  ASSERT_TRUE(None.R.Ok && Type.R.Ok && Bounds.R.Ok && Full.R.Ok);
  // Same program result everywhere.
  EXPECT_EQ(None.R.ExitCode, Full.R.ExitCode);
  EXPECT_EQ(Type.R.ExitCode, Full.R.ExitCode);
  EXPECT_EQ(Bounds.R.ExitCode, Full.R.ExitCode);
  // None: no checks at all.
  EXPECT_EQ(None.R.Checks.TypeChecks + None.R.Checks.BoundsChecks +
                None.R.Checks.BoundsGets,
            0u);
  // Type: no bounds activity.
  EXPECT_EQ(Type.R.Checks.BoundsChecks + Type.R.Checks.BoundsGets, 0u);
  // Bounds: bounds checks but zero type comparisons.
  EXPECT_EQ(Bounds.R.Checks.TypeChecks, 0u);
  EXPECT_GT(Bounds.R.Checks.BoundsChecks, 64u);
  // Full: checks everything, at least as many bounds checks as -bounds.
  EXPECT_GE(Full.R.Checks.BoundsChecks, Bounds.R.Checks.BoundsChecks);
}

//===----------------------------------------------------------------------===//
// VM robustness
//===----------------------------------------------------------------------===//

TEST(VmFaults, InfiniteLoopHitsBudget) {
  TypeContext Types;
  RuntimeOptions RTOpts;
  RTOpts.Reporter.Mode = ReportMode::Count;
  Runtime RT(Types, RTOpts);
  DiagnosticEngine Diags;
  CompileResult C = compileMiniC("int main() { while (1) { } return 0; }",
                                 Types, Diags, InstrumentOptions());
  ASSERT_TRUE(C.M);
  interp::RunOptions Opts;
  Opts.MaxSteps = 10000;
  interp::RunResult R = interp::run(*C.M, RT, Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Fault.find("budget"), std::string::npos);
}

TEST(VmFaults, RunawayRecursionHitsDepthLimit) {
  TypeContext Types;
  RuntimeOptions RTOpts;
  RTOpts.Reporter.Mode = ReportMode::Count;
  Runtime RT(Types, RTOpts);
  DiagnosticEngine Diags;
  CompileResult C = compileMiniC("int f(int n) { return f(n + 1); }\n"
                                 "int main() { return f(0); }",
                                 Types, Diags, InstrumentOptions());
  ASSERT_TRUE(C.M);
  interp::RunOptions Opts;
  Opts.MaxCallDepth = 64;
  interp::RunResult R = interp::run(*C.M, RT, Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Fault.find("depth"), std::string::npos);
}

TEST(VmFaults, NullDereferenceIsAFault) {
  ProgramRun P = runProgram(R"(
int main() {
  int *p = NULL;
  return *p;
}
)");
  EXPECT_FALSE(P.R.Ok);
  EXPECT_NE(P.R.Fault.find("null"), std::string::npos);
}
