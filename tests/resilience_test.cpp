//===- tests/resilience_test.cpp - Fault injection and self-healing -------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Covers the src/resilience/ layer and the degradation machinery it
/// exercises: the deterministic FaultRegistry (count / probability /
/// every triggers, seeded replay, the EFFSAN_FAULTS spec grammar), the
/// full fault-point catalogue (every registered point fired at least
/// once and observed through its documented degradation path),
/// graceful allocation exhaustion through both execution engines, the
/// ErrorRing retry/fallback/drop backpressure policy, the Supervisor's
/// self-healing watchdog (deterministic restart of a killed drain
/// thread, restart-budget escalation to Critical), the ServiceHealth
/// state machine, lease backoff hints, and the effsan_fault_* /
/// effsan_service_health C ABI (since 1.9). The arm/disarm storm at
/// the end runs under -fsanitize=thread in the CI TSan job.
///
/// Every test arms its own schedule (arm() resets all points), so the
/// suite also passes under a CI fault-matrix EFFSAN_FAULTS schedule.
///
//===----------------------------------------------------------------------===//

#include "resilience/Fault.h"

#include "api/Sanitizer.h"
#include "api/effsan.h"
#include "concurrent/SessionPool.h"
#include "service/Supervisor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace effective;
using namespace effective::service;
using resilience::FaultConfig;
using resilience::FaultMode;
using resilience::FaultPoint;
using resilience::FaultRegistry;
using resilience::NumFaultPointValues;

namespace {

FaultRegistry &Faults() { return FaultRegistry::instance(); }

/// Disarms the registry when a test scope ends, so a test's schedule
/// can never leak into the rest of the binary.
struct FaultScope {
  FaultScope() = default;
  ~FaultScope() { Faults().disarm(); }
};

SessionOptions quietSession(CheckPolicy Policy = CheckPolicy::Full) {
  SessionOptions Options;
  Options.Policy = Policy;
  Options.Reporter.Mode = ReportMode::Count;
  return Options;
}

concurrent::PoolOptions quietPool(unsigned Shards) {
  concurrent::PoolOptions Options;
  Options.Shards = Shards;
  Options.Reporter.Mode = ReportMode::Count;
  return Options;
}

ServiceOptions quietService(unsigned Shards) {
  ServiceOptions Options;
  Options.Shards = Shards;
  Options.Reporter.Mode = ReportMode::Count;
  Options.DrainIntervalMicros = 60'000'000; // Forced ticks only.
  return Options;
}

/// One out-of-bounds access: pushes exactly one error event.
void oneBoundsError(Sanitizer &S) {
  TypeContext &Ctx = S.types();
  auto *P = static_cast<int *>(S.malloc(16 * sizeof(int), Ctx.getInt()));
  ASSERT_NE(P, nullptr);
  Bounds B = S.boundsGet(P);
  S.boundsCheck(P + 16, sizeof(int), B);
  S.free(P);
}

/// Spins until \p Done returns true or ~5 s pass.
template <typename Pred> bool waitFor(Pred Done) {
  for (int I = 0; I < 5000; ++I) {
    if (Done())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Done();
}

//===----------------------------------------------------------------------===//
// FaultRegistry: trigger modes and deterministic replay
//===----------------------------------------------------------------------===//

TEST(FaultRegistryTest, CountModeFiresExactWindow) {
  FaultScope Scope;
  Faults().arm(7);
  FaultConfig C;
  C.Mode = FaultMode::Count;
  C.Arg = 2;
  C.After = 3;
  Faults().configure(FaultPoint::HeapMagazineRefill, C);

  // Evaluations [3, 5) fire; everything else passes.
  std::vector<bool> Fired;
  for (int I = 0; I < 10; ++I)
    Fired.push_back(Faults().shouldFire(FaultPoint::HeapMagazineRefill));
  std::vector<bool> Expected = {false, false, false, true, true,
                                false, false, false, false, false};
  EXPECT_EQ(Fired, Expected);
  EXPECT_EQ(Faults().evaluations(FaultPoint::HeapMagazineRefill), 10u);
  EXPECT_EQ(Faults().fires(FaultPoint::HeapMagazineRefill), 2u);
  EXPECT_EQ(Faults().totalFires(), 2u);
}

TEST(FaultRegistryTest, EveryModeHonoursThePeriod) {
  FaultScope Scope;
  Faults().arm(7);
  FaultConfig C;
  C.Mode = FaultMode::Every;
  C.Arg = 3;
  Faults().configure(FaultPoint::RingFull, C);
  unsigned Fires = 0;
  for (int I = 0; I < 9; ++I)
    Fires += Faults().shouldFire(FaultPoint::RingFull) ? 1 : 0;
  EXPECT_EQ(Fires, 3u) << "every:3 fires once per three evaluations";
}

TEST(FaultRegistryTest, ProbabilityReplaysExactlyFromSeed) {
  FaultScope Scope;
  FaultConfig C;
  C.Mode = FaultMode::Probability;
  C.Arg = 16;

  auto Drive = [&](uint64_t Seed) {
    Faults().arm(Seed);
    Faults().configure(FaultPoint::HeapExhausted, C);
    std::vector<bool> Seq;
    for (int I = 0; I < 1000; ++I)
      Seq.push_back(Faults().shouldFire(FaultPoint::HeapExhausted));
    return Seq;
  };

  std::vector<bool> A = Drive(42);
  std::vector<bool> B = Drive(42);
  EXPECT_EQ(A, B) << "same seed, same config: identical firing sequence";
  EXPECT_GT(Faults().fires(FaultPoint::HeapExhausted), 0u)
      << "1000 draws at 1-in-16 fire with overwhelming probability";

  std::vector<bool> Other = Drive(43);
  EXPECT_NE(A, Other) << "a different seed draws a different stream";
}

TEST(FaultRegistryTest, ArmResetsCountersAndConfiguration) {
  FaultScope Scope;
  Faults().arm(5);
  FaultConfig C;
  C.Mode = FaultMode::Every;
  C.Arg = 1;
  Faults().configure(FaultPoint::SiteRegister, C);
  EXPECT_TRUE(Faults().shouldFire(FaultPoint::SiteRegister));
  EXPECT_EQ(Faults().fires(FaultPoint::SiteRegister), 1u);

  Faults().arm(6);
  EXPECT_EQ(Faults().seed(), 6u);
  EXPECT_EQ(Faults().evaluations(FaultPoint::SiteRegister), 0u);
  EXPECT_EQ(Faults().fires(FaultPoint::SiteRegister), 0u);
  EXPECT_FALSE(Faults().shouldFire(FaultPoint::SiteRegister))
      << "arm() clears every point back to Off";
}

TEST(FaultRegistryTest, PointNamesRoundTrip) {
  const char *Expected[NumFaultPointValues] = {
      "heap_exhausted",          "heap_slice_exhausted",
      "heap_magazine_refill",    "heap_quarantine_overrun",
      "ring_full",               "site_register",
      "drain_stall",             "snapshot_hook",
      "governor_misfire",
  };
  for (unsigned I = 0; I < NumFaultPointValues; ++I) {
    auto Point = static_cast<FaultPoint>(I);
    EXPECT_STREQ(FaultRegistry::pointName(Point), Expected[I]);
    EXPECT_EQ(FaultRegistry::pointFromName(Expected[I]), Point);
  }
  EXPECT_EQ(FaultRegistry::pointFromName("no_such_point"),
            FaultPoint::NumFaultPoints);
  EXPECT_EQ(FaultRegistry::pointFromName(nullptr),
            FaultPoint::NumFaultPoints);
  EXPECT_STREQ(FaultRegistry::pointName(FaultPoint::NumFaultPoints),
               "unknown");
}

TEST(FaultRegistryTest, SpecGrammarConfiguresAndArms) {
  FaultScope Scope;
  ASSERT_TRUE(Faults().configureFromSpec(
      "seed=99;heap_exhausted=count:2@3;ring_full=every:2;"
      "drain_stall=off"));
  EXPECT_EQ(Faults().seed(), 99u);

  // count:2@3 — evaluations [3, 5) fire.
  std::vector<bool> Fired;
  for (int I = 0; I < 6; ++I)
    Fired.push_back(Faults().shouldFire(FaultPoint::HeapExhausted));
  std::vector<bool> Expected = {false, false, false, true, true, false};
  EXPECT_EQ(Fired, Expected);

  // every:2 — the second and fourth evaluations fire.
  EXPECT_FALSE(Faults().shouldFire(FaultPoint::RingFull));
  EXPECT_TRUE(Faults().shouldFire(FaultPoint::RingFull));
  EXPECT_FALSE(Faults().shouldFire(FaultPoint::RingFull));
  EXPECT_TRUE(Faults().shouldFire(FaultPoint::RingFull));

  EXPECT_FALSE(Faults().shouldFire(FaultPoint::DrainStall));
}

TEST(FaultRegistryTest, MalformedSpecsAreRejected) {
  FaultScope Scope;
  Faults().disarm();
  EXPECT_FALSE(Faults().configureFromSpec("no_such_point=count:1"));
  EXPECT_FALSE(Faults().configureFromSpec("heap_exhausted=wat:3"));
  EXPECT_FALSE(Faults().configureFromSpec("heap_exhausted"));
  EXPECT_FALSE(Faults().configureFromSpec(nullptr));
  EXPECT_FALSE(Faults().armed()) << "a bad spec never arms injection";
}

TEST(FaultMacroTest, DisarmedPointNeverFires) {
  FaultScope Scope;
  Faults().arm(1);
  FaultConfig C;
  C.Mode = FaultMode::Every;
  C.Arg = 1;
  Faults().configure(FaultPoint::HeapExhausted, C);
  Faults().disarm();
  // The macro gates on the armed flag before ever reaching the
  // registry, whatever the point's configuration says.
  for (int I = 0; I < 4; ++I)
    EXPECT_FALSE(EFFSAN_FAULT(HeapExhausted));
}

//===----------------------------------------------------------------------===//
// The fault-point catalogue: every point fires and degrades gracefully
//===----------------------------------------------------------------------===//

TEST(FaultCatalogueTest, EveryPointFiresThroughItsLayer) {
  if (!resilience::compiledIn())
    GTEST_SKIP() << "EFFSAN_FAULT_OFF build: no fault points compiled in";
  FaultScope Scope;
  bool Fired[NumFaultPointValues] = {};
  auto Record = [&](FaultPoint P) {
    Fired[static_cast<unsigned>(P)] = Faults().fires(P) > 0;
  };

  // heap_exhausted: guest allocation returns a diagnosable null.
  {
    Sanitizer S(quietSession());
    ASSERT_TRUE(Faults().configureFromSpec("seed=1;heap_exhausted=every:1"));
    EXPECT_EQ(S.malloc(64, S.types().getInt()), nullptr);
    EXPECT_GE(S.reporter().numIssues(ErrorKind::ResourceExhausted), 1u);
    Record(FaultPoint::HeapExhausted);
  }

  // heap_magazine_refill: the TLS magazine refill fails and allocation
  // falls through to the bump allocator — still succeeds.
  {
    Sanitizer S(quietSession());
    ASSERT_TRUE(
        Faults().configureFromSpec("seed=2;heap_magazine_refill=every:1"));
    void *P = S.malloc(64, S.types().getInt());
    EXPECT_NE(P, nullptr);
    S.free(P);
    Record(FaultPoint::HeapMagazineRefill);
  }

  // heap_slice_exhausted: with the magazine also dry, the bump
  // allocator is skipped and the steal-then-legacy fallback serves.
  {
    Sanitizer S(quietSession());
    ASSERT_TRUE(Faults().configureFromSpec(
        "seed=3;heap_magazine_refill=every:1;heap_slice_exhausted=every:1"));
    void *P = S.malloc(64, S.types().getInt());
    EXPECT_NE(P, nullptr) << "exhaust path degrades to a legacy block";
    S.free(P);
    Record(FaultPoint::HeapSliceExhausted);
  }

  // heap_quarantine_overrun: the next quarantine flush treats the
  // budget as overrun and evicts every parked block. The point lives
  // on the flush path, so the session needs quarantine enabled.
  {
    SessionOptions Options = quietSession();
    Options.Heap.QuarantineBytes = 1 << 16;
    Sanitizer S(Options);
    ASSERT_TRUE(Faults().configureFromSpec(
        "seed=4;heap_quarantine_overrun=every:1"));
    for (int I = 0; I < 64; ++I) {
      void *P = S.malloc(64, S.types().getInt());
      ASSERT_NE(P, nullptr);
      S.free(P);
    }
    Record(FaultPoint::HeapQuarantineOverrun);
  }

  // ring_full: every push sees a full ring; after the retry budget the
  // event takes the locked fallback — delivered, never lost.
  {
    concurrent::SessionPool Pool(quietPool(1));
    ASSERT_TRUE(Faults().configureFromSpec("seed=5;ring_full=every:1"));
    for (int I = 0; I < 5; ++I)
      oneBoundsError(Pool.shard(0));
    EXPECT_EQ(Pool.ringFallbacks(), 5u);
    EXPECT_EQ(Pool.reporter().numEvents(), 5u) << "no event loss";
    Record(FaultPoint::RingFull);
  }

  // site_register: registration refused; checks still run, they just
  // lose source attribution.
  {
    Sanitizer S(quietSession());
    ASSERT_TRUE(Faults().configureFromSpec("seed=6;site_register=every:1"));
    SiteTable Table;
    Table.File = "res.c";
    Table.Entries.push_back(
        {CheckSiteKind::BoundsCheck, SourceLoc{1, 1}, "f", nullptr});
    EXPECT_EQ(S.registerSiteTable(Table), NoSite);
    Record(FaultPoint::SiteRegister);
  }

  // drain_stall: the drain thread dies mid-loop; the watchdog restarts
  // it and the forced tick still completes.
  {
    ServiceOptions Options = quietService(1);
    Options.WatchdogIntervalMicros = 1000;
    Supervisor Sup(Options);
    ASSERT_TRUE(Faults().configureFromSpec("seed=7;drain_stall=count:1"));
    Sup.tick();
    EXPECT_GE(Sup.stats().DrainRestarts, 1u);
    Record(FaultPoint::DrainStall);
  }

  // snapshot_hook + governor_misfire: induced delivery failure delays
  // the snapshot one cadence; an induced misfire skips one governor
  // pass. Neither breaks the tick.
  {
    static std::atomic<unsigned> HookFired{0};
    HookFired = 0;
    ServiceOptions Options = quietService(1);
    Options.SnapshotHook = [](const char *, void *) { ++HookFired; };
    Options.SnapshotEveryTicks = 1;
    Supervisor Sup(Options);
    TenantId T = Sup.openTenant("t");
    ASSERT_NE(T, NoTenant);
    ASSERT_TRUE(Faults().configureFromSpec(
        "seed=8;snapshot_hook=count:1;governor_misfire=count:1"));
    Sup.tick(); // Snapshot delivery fails; governor pass skipped.
    EXPECT_EQ(HookFired.load(), 0u);
    Sup.tick(); // The next cadence retries and delivers.
    EXPECT_GE(HookFired.load(), 1u);
    Record(FaultPoint::SnapshotHook);
    Record(FaultPoint::GovernorMisfire);
  }

  for (unsigned I = 0; I < NumFaultPointValues; ++I)
    EXPECT_TRUE(Fired[I]) << "fault point never fired: "
                          << FaultRegistry::pointName(
                                 static_cast<FaultPoint>(I));
}

//===----------------------------------------------------------------------===//
// Graceful allocation exhaustion through both engines
//===----------------------------------------------------------------------===//

/// Collects effsan_run_minic output chunks into a std::string.
void collectOutput(const char *Data, size_t Len, void *UserData) {
  static_cast<std::string *>(UserData)->append(Data, Len);
}

TEST(GracefulAllocTest, NullCheckedSweepIsDeterministicOnBothEngines) {
  if (!resilience::compiledIn())
    GTEST_SKIP() << "EFFSAN_FAULT_OFF build: no fault points compiled in";
  FaultScope Scope;
  // A SPEC-style mix that checks every malloc for null: under a 1-in-N
  // allocation-failure fault the run must complete cleanly, count its
  // failures, and replay identically on both engines from one seed.
  constexpr const char *Source = R"(
int main() {
  int nulls = 0;
  int sum = 0;
  int i;
  for (i = 0; i < 40; i = i + 1) {
    int *p = (int *)malloc(8 * sizeof(int));
    if (p == 0) {
      nulls = nulls + 1;
    } else {
      p[0] = i;
      p[7] = i * 2;
      sum = sum + p[0] + p[7];
      free(p);
    }
  }
  print_int(nulls);
  print_int(sum);
  return nulls;
}
)";
  const uint32_t Engines[2] = {EFFSAN_ENGINE_BYTECODE, EFFSAN_ENGINE_TREE};
  effsan_run_result Results[2];
  std::string Outputs[2];
  uint64_t Fires[2];

  for (int E = 0; E < 2; ++E) {
    // Re-arming the identical spec resets counters and PRNG streams:
    // both engines replay the same firing sequence.
    ASSERT_TRUE(
        Faults().configureFromSpec("seed=4242;heap_exhausted=prob:6"));
    effsan_options Options;
    effsan_options_init(&Options);
    Options.log_errors = 0;
    Options.engine = Engines[E];
    effsan_session *S = effsan_session_create(&Options);
    ASSERT_NE(S, nullptr);

    effsan_run_options Run;
    effsan_run_options_init(&Run);
    Run.output = collectOutput;
    Run.output_user_data = &Outputs[E];
    std::memset(&Results[E], 0, sizeof(Results[E]));
    Results[E].struct_size = sizeof(Results[E]);
    ASSERT_NE(effsan_run_minic(S, Source, &Run, &Results[E]), 0)
        << Results[E].fault;
    EXPECT_NE(Results[E].ok, 0u)
        << "null-checked program completes cleanly: " << Results[E].fault;
    Fires[E] = Faults().fires(FaultPoint::HeapExhausted);
    effsan_session_destroy(S);
  }

  EXPECT_GT(Fires[0], 0u) << "40 draws at 1-in-6 fire with certainty-ish";
  EXPECT_EQ(Fires[0], Fires[1]) << "same seed, same firing count";
  EXPECT_EQ(Outputs[0], Outputs[1]) << "bit-identical degraded runs";
  EXPECT_EQ(Results[0].exit_code, Results[1].exit_code);
  EXPECT_GE(Results[0].issues_reported, 1u)
      << "each induced failure is a diagnosable resource-exhausted report";
}

TEST(GracefulAllocTest, UncheckedNullDereferenceFaultsCleanly) {
  if (!resilience::compiledIn())
    GTEST_SKIP() << "EFFSAN_FAULT_OFF build: no fault points compiled in";
  FaultScope Scope;
  // The anti-test: a program that does NOT check malloc. The induced
  // null must surface as a clean engine fault (a "null store"), never
  // a crash or silent corruption — on both engines.
  constexpr const char *Source = R"(
int main() {
  int *p = (int *)malloc(4 * sizeof(int));
  p[0] = 1;
  return p[0];
}
)";
  const uint32_t Engines[2] = {EFFSAN_ENGINE_BYTECODE, EFFSAN_ENGINE_TREE};
  for (uint32_t Engine : Engines) {
    ASSERT_TRUE(
        Faults().configureFromSpec("seed=9;heap_exhausted=count:1"));
    effsan_options Options;
    effsan_options_init(&Options);
    Options.log_errors = 0;
    Options.engine = Engine;
    effsan_session *S = effsan_session_create(&Options);
    ASSERT_NE(S, nullptr);
    effsan_run_result R;
    std::memset(&R, 0, sizeof(R));
    R.struct_size = sizeof(R);
    ASSERT_NE(effsan_run_minic(S, Source, nullptr, &R), 0);
    EXPECT_EQ(R.ok, 0u);
    EXPECT_NE(std::string(R.fault).find("null"), std::string::npos)
        << R.fault;
    effsan_session_destroy(S);
  }
}

//===----------------------------------------------------------------------===//
// ErrorRing backpressure: retry, locked fallback, accounted drop
//===----------------------------------------------------------------------===//

TEST(RingBackpressureTest, FallbackDeliversEveryEventWhenRingStaysFull) {
  if (!resilience::compiledIn())
    GTEST_SKIP() << "EFFSAN_FAULT_OFF build: no fault points compiled in";
  FaultScope Scope;
  concurrent::SessionPool Pool(quietPool(1));
  ASSERT_TRUE(Faults().configureFromSpec("seed=21;ring_full=every:1"));

  for (int I = 0; I < 4; ++I)
    oneBoundsError(Pool.shard(0));
  // Initial push + 3 retries per event, all induced-full.
  EXPECT_EQ(Pool.ringOverflows(), 16u);
  EXPECT_EQ(Pool.ringFallbacks(), 4u);
  EXPECT_EQ(Pool.ringDrops(), 0u);
  EXPECT_EQ(Pool.reporter().numEvents(), 4u)
      << "every event reached the central reporter through the fallback";

  // Disarmed, the ring path serves again.
  Faults().disarm();
  oneBoundsError(Pool.shard(0));
  EXPECT_EQ(Pool.ringFallbacks(), 4u);
  Pool.drain();
  EXPECT_EQ(Pool.reporter().numEvents(), 5u);
}

TEST(RingBackpressureTest, OptInDropIsBoundedAndAccounted) {
  // No faults needed: a capacity-2 ring with zero retries and the
  // drop-on-full policy drops exactly the overflow, visibly.
  concurrent::PoolOptions Options = quietPool(1);
  Options.ErrorRingCapacity = 2;
  Options.RingRetryAttempts = 0;
  Options.DropOnRingFull = true;
  concurrent::SessionPool Pool(Options);

  for (int I = 0; I < 5; ++I)
    oneBoundsError(Pool.shard(0));
  EXPECT_EQ(Pool.ringDrops(), 3u) << "two queued, three accounted drops";
  EXPECT_EQ(Pool.ringFallbacks(), 0u);
  Pool.drain();
  EXPECT_EQ(Pool.reporter().numEvents(), 2u);
}

//===----------------------------------------------------------------------===//
// Self-healing supervisor: watchdog restart and escalation
//===----------------------------------------------------------------------===//

TEST(WatchdogTest, RestartsKilledDrainerWithoutLosingEvents) {
  if (!resilience::compiledIn())
    GTEST_SKIP() << "EFFSAN_FAULT_OFF build: no fault points compiled in";
  FaultScope Scope;
  ServiceOptions Options = quietService(1);
  Options.WatchdogIntervalMicros = 1000;
  Options.MaxDrainRestarts = 3;
  Supervisor Sup(Options);
  EXPECT_EQ(Sup.health(), ServiceHealth::Healthy);

  TenantId T = Sup.openTenant("t");
  ASSERT_NE(T, NoTenant);
  {
    Supervisor::Lease L = Sup.lease(T);
    ASSERT_TRUE(static_cast<bool>(L));
    oneBoundsError(L.session());
  }

  // Kill the drainer on its next wake, then force a tick: the poke
  // wakes the doomed thread, the watchdog notices the death via the
  // liveness stamp and respawns, and the restarted drainer completes
  // the still-pending tick — the barrier below is the proof.
  ASSERT_TRUE(Faults().configureFromSpec("seed=31;drain_stall=count:1"));
  Sup.tick();

  ServiceStats S = Sup.stats();
  EXPECT_EQ(S.DrainRestarts, 1u);
  EXPECT_GE(S.WatchdogChecks, 1u);
  EXPECT_EQ(S.DrainedEvents, 1u) << "the queued event survived the crash";
  EXPECT_EQ(S.Health, ServiceHealth::Degraded)
      << "a restarted drainer degrades health";
  EXPECT_GE(Sup.reporter().numIssues(), 1u);

  // The healed drainer keeps ticking deterministically.
  Faults().disarm();
  {
    Supervisor::Lease L = Sup.lease(T);
    ASSERT_TRUE(static_cast<bool>(L));
    oneBoundsError(L.session());
  }
  EXPECT_EQ(Sup.tick(), 1u);
  EXPECT_EQ(Sup.stats().DrainedEvents, 2u);
}

TEST(WatchdogTest, RestartBudgetExhaustionLatchesCriticalAndEscalates) {
  if (!resilience::compiledIn())
    GTEST_SKIP() << "EFFSAN_FAULT_OFF build: no fault points compiled in";
  FaultScope Scope;
  static std::atomic<unsigned> Escalations{0};
  Escalations = 0;

  ServiceOptions Options = quietService(1);
  Options.DrainIntervalMicros = 500; // Self-waking: dies on its own.
  Options.WatchdogIntervalMicros = 1000;
  Options.MaxDrainRestarts = 0; // Budget exhausted on the first death.
  Options.SnapshotHook = [](const char *Json, void *) {
    if (std::strstr(Json, "\"health\":\"critical\""))
      ++Escalations;
  };
  Options.SnapshotEveryTicks = 1'000'000; // Cadence never fires it.
  Supervisor Sup(Options);

  ASSERT_TRUE(Faults().configureFromSpec("seed=32;drain_stall=count:1"));
  EXPECT_TRUE(waitFor([&] {
    return Sup.stats().Health == ServiceHealth::Critical;
  })) << "budget-exhausted restart latches Critical";
  EXPECT_TRUE(waitFor([&] { return Escalations.load() >= 1; }))
      << "escalation snapshot reaches the hook";
  Faults().disarm();

  // The latch holds and the escalation fires exactly once.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(Sup.health(), ServiceHealth::Critical);
  EXPECT_EQ(Escalations.load(), 1u);
  EXPECT_EQ(Sup.stats().DrainRestarts, 0u);
}

//===----------------------------------------------------------------------===//
// Lease backoff hints
//===----------------------------------------------------------------------===//

TEST(LeaseHintTest, RefusalCarriesTheDrainIntervalAsBackoff) {
  Supervisor Sup(quietService(1));
  TenantQuota Quota;
  Quota.MaxAllocBytes = 4096;
  TenantId T = Sup.openTenant("greedy", Quota);
  ASSERT_NE(T, NoTenant);

  uint64_t Hint = 77; // Poisoned: a granted lease must clear it.
  Supervisor::Lease Held = Sup.lease(T, Hint);
  ASSERT_TRUE(static_cast<bool>(Held));
  EXPECT_EQ(Hint, 0u);
  TypeContext &Ctx = Held->types();
  void *P = Held->malloc(8192, Ctx.getChar());
  ASSERT_NE(P, nullptr);

  Supervisor::Lease Refused = Sup.lease(T, Hint);
  EXPECT_FALSE(static_cast<bool>(Refused));
  EXPECT_EQ(Hint, 60'000'000u)
      << "quota refusal suggests waiting one drain interval";

  // Unknown handles carry no hint: the caller should give up, not wait.
  uint64_t Stale = 77;
  Supervisor::Lease None = Sup.lease(NoTenant, Stale);
  EXPECT_FALSE(static_cast<bool>(None));
  EXPECT_EQ(Stale, 0u);

  Held->free(P);
}

//===----------------------------------------------------------------------===//
// Telemetry: snapshot JSON carries the resilience counters
//===----------------------------------------------------------------------===//

TEST(SnapshotTest, JsonCarriesHealthAndResilienceCounters) {
  Supervisor Sup(quietService(1));
  std::string Json = Sup.snapshotJson();
  EXPECT_NE(Json.find("\"health\":\"healthy\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"ring_fallbacks\":"), std::string::npos);
  EXPECT_NE(Json.find("\"ring_drops\":"), std::string::npos);
  EXPECT_NE(Json.find("\"drain_restarts\":"), std::string::npos);
  EXPECT_NE(Json.find("\"watchdog_checks\":"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// The effsan_fault_* / effsan_service_health C ABI (since 1.9)
//===----------------------------------------------------------------------===//

TEST(ResilienceAbiTest, FaultControlsRoundTrip) {
  FaultScope Scope;
  EXPECT_EQ(effsan_fault_compiled_in() != 0, resilience::compiledIn());
  ASSERT_EQ(effsan_fault_num_points(), NumFaultPointValues);
  EXPECT_STREQ(effsan_fault_point_name(0), "heap_exhausted");
  EXPECT_STREQ(effsan_fault_point_name(NumFaultPointValues - 1),
               "governor_misfire");
  EXPECT_EQ(effsan_fault_point_name(NumFaultPointValues), nullptr);
  EXPECT_EQ(effsan_fault_evaluations(NumFaultPointValues), 0u);
  EXPECT_EQ(effsan_fault_fires(NumFaultPointValues), 0u);

  effsan_fault_arm(77);
  EXPECT_EQ(effsan_fault_seed(), 77u);
  if (resilience::compiledIn())
    EXPECT_NE(effsan_fault_armed(), 0);
  effsan_fault_disarm();
  EXPECT_EQ(effsan_fault_armed(), 0);

  EXPECT_NE(effsan_fault_configure(
                "seed=42;heap_exhausted=prob:64;ring_full=count:3@100"),
            0);
  EXPECT_EQ(effsan_fault_seed(), 42u);
  EXPECT_EQ(effsan_fault_configure("bogus=every:1"), 0);
  EXPECT_EQ(effsan_fault_configure(nullptr), 0);
}

TEST(ResilienceAbiTest, ResourceExhaustionSurfacesThroughTheAbi) {
  if (!effsan_fault_compiled_in())
    GTEST_SKIP() << "EFFSAN_FAULT_OFF build: no fault points compiled in";
  FaultScope Scope;
  effsan_options Options;
  effsan_options_init(&Options);
  Options.log_errors = 0;
  effsan_session *S = effsan_session_create(&Options);
  ASSERT_NE(S, nullptr);

  static std::atomic<uint32_t> LastKind{~0u};
  LastKind = ~0u;
  effsan_set_error_callback(
      S,
      [](const effsan_error *E, void *) { LastKind = E->kind; }, nullptr);

  ASSERT_NE(effsan_fault_configure("seed=51;heap_exhausted=every:1"), 0);
  effsan_type IntTy = effsan_type_primitive(S, EFFSAN_PRIM_INT);
  EXPECT_EQ(effsan_malloc(S, 64, IntTy), nullptr);
  EXPECT_EQ(LastKind.load(), (uint32_t)EFFSAN_ERROR_RESOURCE_EXHAUSTED);
  EXPECT_GE(effsan_fault_fires(0), 1u);
  EXPECT_GE(effsan_fault_evaluations(0), 1u);

  effsan_fault_disarm();
  void *P = effsan_malloc(S, 64, IntTy);
  EXPECT_NE(P, nullptr);
  effsan_free(S, P);
  effsan_session_destroy(S);
}

TEST(ResilienceAbiTest, ServiceHealthCheckoutHintAndStatsTail) {
  effsan_service_options Opts;
  effsan_service_options_init(&Opts);
  EXPECT_EQ(Opts.ring_retry_attempts, 0u) << "zeroed 1.9 tail = defaults";
  EXPECT_EQ(Opts.disable_watchdog, 0);
  Opts.shards = 1;
  Opts.log_errors = 0;
  Opts.drain_interval_usec = 60'000'000;
  effsan_service *Svc = effsan_service_create(&Opts);
  ASSERT_NE(Svc, nullptr);

  EXPECT_EQ(effsan_service_health(Svc), (uint32_t)EFFSAN_HEALTH_HEALTHY);

  effsan_tenant_quota Quota;
  effsan_tenant_quota_init(&Quota);
  Quota.max_alloc_bytes = 4096;
  effsan_tenant T = effsan_service_tenant_open(Svc, "greedy", &Quota);
  ASSERT_NE(T, EFFSAN_NO_TENANT);

  uint64_t RetryAfter = 77;
  effsan_session *S = effsan_service_checkout_hint(Svc, T, &RetryAfter);
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(RetryAfter, 0u);
  effsan_type CharTy = effsan_type_primitive(S, EFFSAN_PRIM_CHAR);
  void *P = effsan_malloc(S, 8192, CharTy);
  ASSERT_NE(P, nullptr);

  EXPECT_EQ(effsan_service_checkout_hint(Svc, T, &RetryAfter), nullptr);
  EXPECT_EQ(RetryAfter, 60'000'000u)
      << "the refusal tells the caller how long to back off";

  // The 1.9 stats tail: present for full-size callers, untouched for
  // callers built against the 1.8 prefix.
  effsan_service_stats SS;
  std::memset(&SS, 0xAB, sizeof(SS));
  SS.struct_size = sizeof(SS);
  effsan_service_get_stats(Svc, &SS);
  EXPECT_EQ(SS.ring_fallbacks, 0u);
  EXPECT_EQ(SS.ring_drops, 0u);
  EXPECT_EQ(SS.drain_restarts, 0u);
  EXPECT_EQ(SS.health, (uint32_t)EFFSAN_HEALTH_HEALTHY);

  constexpr size_t Prefix = offsetof(effsan_service_stats, ring_fallbacks);
  alignas(effsan_service_stats) unsigned char Buf[sizeof(
      effsan_service_stats)];
  std::memset(Buf, 0xCD, sizeof(Buf));
  auto *Short = reinterpret_cast<effsan_service_stats *>(Buf);
  Short->struct_size = Prefix;
  effsan_service_get_stats(Svc, Short);
  EXPECT_EQ(Short->checkouts_refused, 1u);
  for (size_t I = Prefix; I < sizeof(Buf); ++I)
    ASSERT_EQ(Buf[I], 0xCD) << "byte past the 1.8 prefix at " << I;

  effsan_free(S, P);
  effsan_service_release(Svc, T);
  effsan_service_destroy(Svc);
}

//===----------------------------------------------------------------------===//
// Arm/disarm storm (the CI TSan job's resilience target)
//===----------------------------------------------------------------------===//

TEST(ResilienceStormTest, ArmDisarmRacesFourWorkerThreads) {
  FaultScope Scope;
  concurrent::SessionPool Pool(quietPool(4));

  constexpr int Threads = 4;
  constexpr int Iters = 800;
  std::vector<std::thread> Workers;
  for (int W = 0; W < Threads; ++W) {
    Workers.emplace_back([&, W] {
      Sanitizer &S = Pool.shard(W);
      TypeContext &Ctx = S.types();
      for (int I = 0; I < Iters; ++I) {
        // Faults may null any malloc mid-flight; the worker is the
        // well-behaved caller that checks.
        auto *P =
            static_cast<int *>(S.malloc(16 * sizeof(int), Ctx.getInt()));
        if (!P)
          continue;
        Bounds B = S.boundsGet(P);
        S.boundsCheck(P + (I % 16), sizeof(int), B);
        if (I % 128 == 0)
          S.boundsCheck(P + 16, sizeof(int), B); // One error event.
        S.free(P);
      }
    });
  }

  // The main thread storms the registry: re-seeding, reconfiguring and
  // disarming against live evaluations from every layer.
  for (int I = 0; I < 200; ++I) {
    std::string Spec = "seed=" + std::to_string(I) +
                       ";heap_exhausted=prob:64;heap_magazine_refill=prob:8;"
                       "ring_full=prob:8;heap_quarantine_overrun=every:3";
    ASSERT_TRUE(Faults().configureFromSpec(Spec.c_str()));
    if (I % 3 == 0)
      Faults().disarm();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  Faults().disarm();
  for (std::thread &W : Workers)
    W.join();

  // Conservation: everything that was not an accounted drop reached
  // the central reporter (ring or fallback); drops stayed zero because
  // the policy defaults to no-loss.
  Pool.drain();
  EXPECT_EQ(Pool.ringDrops(), 0u);
  EXPECT_GE(Pool.reporter().numEvents(), uint64_t(Threads) * (Iters / 128));
}

} // namespace
