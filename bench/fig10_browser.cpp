//===- bench/fig10_browser.cpp - Reproduces Figure 10 ---------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 10 of the paper: relative performance of the
/// browser benchmarks under full EffectiveSan instrumentation (Firefox
/// stand-ins; see DESIGN.md substitution 3). The paper reports a 422%
/// overall overhead — about 1.5x the SPEC geomean — driven by the
/// engine's temporary-object churn.
///
/// Usage: fig10_browser [scale] [reps]   (defaults 6, 3)
///
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include <cmath>
#include <cstdlib>

using namespace effective;
using namespace effective::workloads;

int main(int argc, char **argv) {
  unsigned Scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 48;
  unsigned Reps = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 3;
  if (Scale == 0)
    Scale = 1;
  if (Reps == 0)
    Reps = 1;

  std::printf("==============================================================="
              "=========\n");
  std::printf("Figure 10: browser benchmarks, EffectiveSan (full) relative "
              "overhead\n(scale=%u, best of %u)\n",
              Scale, Reps);
  std::printf("==============================================================="
              "=========\n\n");
  std::printf("%-14s %10s %10s %10s\n", "Benchmark", "Uninstr(s)",
              "Full(s)", "relative");

  double LogSum = 0;
  unsigned Counted = 0;
  for (const Workload &W : browserWorkloads()) {
    double None = 1e30, Full = 1e30;
    for (unsigned Rep = 0; Rep < Reps; ++Rep) {
      RunStats N = runWorkload(W, PolicyKind::None, Scale);
      RunStats F = runWorkload(W, PolicyKind::Full, Scale);
      if (N.Seconds < None)
        None = N.Seconds;
      if (F.Seconds < Full)
        Full = F.Seconds;
    }
    double Relative = Full / None;
    std::printf("%-14s %10.3f %10.3f %9.0f%%\n", W.Info.Name, None, Full,
                Relative * 100);
    LogSum += std::log(Relative);
    ++Counted;
  }

  double Geo = std::exp(LogSum / Counted);
  std::printf("\nOverall relative performance: %.0f%% (paper: ~522%% = 422%% "
              "overhead).\nExpected shape: browser overhead exceeds the "
              "SPEC-like geomean\n(temporary-object churn; see [11]).\n",
              Geo * 100);
  return 0;
}
