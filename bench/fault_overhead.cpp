//===- bench/fault_overhead.cpp - Fault-injection hot-path overhead -------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// What the resilience layer's fault points cost on the hot paths they
/// are compiled into (allocator bump/refill/quarantine, ring push,
/// site registration).
///
/// One measurement, run twice over the same session: the full SPEC
/// workload mix with the fault registry disarmed (one relaxed load per
/// point — the shipped default) and armed with every point Off (the
/// worst case short of firing: each point consults its per-point mode
/// atomically and counts the evaluation). Measurement is paired like
/// obs_overhead: alternating off/on passes, MEDIAN of the per-pair
/// throughput ratios, so slow drift cancels and outlier pairs drop.
///
/// The contract this bench gates (docs/RESILIENCE.md#overhead):
/// disarmed fault points cost <= 1% on the check-bound mix (the armed
/// figure bounds it from above), and an EFFSAN_FAULT_OFF build costs
/// nothing at all — the macro is a compile-time false, both passes run
/// identical code, and the JSON reports compiled_out so CI knows not
/// to read an overhead into the noise.
///
/// Usage: fault_overhead [reps] [--json=FILE]
///
///   reps         SPEC-mix iterations per timed pass (default 10;
///                seven off/on pairs are timed either way)
///   --json=FILE  emit the measurements as JSON (the BENCH_fault
///                artifact; the CI bench job gates .overhead_pct)
///
//===----------------------------------------------------------------------===//

#include "core/Effective.h"
#include "resilience/Fault.h"
#include "workloads/Workload.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace effective;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// One timed pass: \p Reps rounds of the full SPEC mix. Returns
/// checks per second (all check kinds, from the runtime's counters).
double runPass(Runtime &RT, unsigned Reps, uint64_t &Sink) {
  auto Before = RT.counters().snapshot();
  auto Start = std::chrono::steady_clock::now();
  for (unsigned R = 0; R < Reps; ++R)
    for (const workloads::Workload &W : workloads::specWorkloads())
      Sink += W.RunFull(RT, /*Scale=*/1);
  double Secs = secondsSince(Start);
  auto After = RT.counters().snapshot();
  double Checks =
      double((After.TypeChecks - Before.TypeChecks) +
             (After.BoundsChecks - Before.BoundsChecks) +
             (After.BoundsNarrows - Before.BoundsNarrows) +
             (After.BoundsGets - Before.BoundsGets));
  return Checks / Secs;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Reps = 10;
  const char *JsonPath = nullptr;
  for (int I = 1; I < argc; ++I) {
    if (std::strncmp(argv[I], "--json=", 7) == 0)
      JsonPath = argv[I] + 7;
    else
      Reps = static_cast<unsigned>(std::atoi(argv[I]));
  }
  if (Reps == 0)
    Reps = 1;

  SessionOptions Options;
  Options.Reporter.Mode = ReportMode::Count;
  Sanitizer Session(TypeContext::global(), Options);
  SanitizerScope Scope(Session);
  Runtime &RT = Session.runtime();

  resilience::FaultRegistry &Faults = resilience::FaultRegistry::instance();
  Faults.disarm();

  std::printf("================================================================"
              "========\n");
  std::printf("Fault-point overhead: SPEC mix, disarmed vs armed-never-firing "
              "(%u reps/pass, median of 7 pairs)\n",
              Reps);
  std::printf("compiled in: %s\n",
              resilience::compiledIn()
                  ? "yes"
                  : "no (EFFSAN_FAULT_OFF - both passes run identical code)");
  std::printf("================================================================"
              "========\n\n");

  uint64_t Sink = 0;
  // Warm both configurations once before timing starts.
  runPass(RT, 1, Sink);
  Faults.arm(/*Seed=*/1234); // Every point stays Off: armed, never fires.
  runPass(RT, 1, Sink);
  Faults.disarm();

  constexpr int Pairs = 7;
  double BestOff = 0, BestOn = 0;
  double Ratios[Pairs];
  for (int Pair = 0; Pair < Pairs; ++Pair) {
    double Off = runPass(RT, Reps, Sink);
    Faults.arm(/*Seed=*/1234);
    double On = runPass(RT, Reps, Sink);
    uint64_t Evals = 0;
    for (unsigned P = 0; P < resilience::NumFaultPointValues; ++P)
      Evals += Faults.evaluations(static_cast<resilience::FaultPoint>(P));
    Faults.disarm();
    if (resilience::compiledIn() && Evals == 0) {
      std::fprintf(stderr,
                   "fault_overhead: armed pass evaluated no fault points — "
                   "the measurement is vacuous\n");
      return 1;
    }
    BestOff = std::max(BestOff, Off);
    BestOn = std::max(BestOn, On);
    Ratios[Pair] = Off / On;
  }
  if (Sink == uint64_t(-1))
    std::printf("impossible\n"); // Keep the sink alive.

  std::sort(Ratios, Ratios + Pairs);
  double OverheadPct = (Ratios[Pairs / 2] - 1.0) * 100.0;

  std::printf("%18s %14.2f M checks/s\n", "faults disarmed", BestOff / 1e6);
  std::printf("%18s %14.2f M checks/s\n", "faults armed", BestOn / 1e6);
  std::printf("%18s %14.2f %%   (CI gate: <= 1%%)\n", "overhead",
              OverheadPct);

  if (JsonPath) {
    std::FILE *F = std::fopen(JsonPath, "w");
    if (!F) {
      std::fprintf(stderr, "fault_overhead: cannot write %s\n", JsonPath);
      return 1;
    }
    std::fprintf(F,
                 "{\n  \"bench\": \"fault_overhead\",\n  \"reps\": %u,\n"
                 "  \"compiled_out\": %s,\n"
                 "  \"fault_off_checks_per_sec\": %.2f,\n"
                 "  \"fault_on_checks_per_sec\": %.2f,\n"
                 "  \"overhead_pct\": %.3f\n}\n",
                 Reps, resilience::compiledIn() ? "false" : "true", BestOff,
                 BestOn, OverheadPct);
    std::fclose(F);
  }
  return 0;
}
