//===- bench/mt_throughput.cpp - Pool vs shared-session scaling -----------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Multi-threaded runtime throughput: the sharded SessionPool against a
/// single Sanitizer session shared by all threads, at 1/2/4/8 workers.
///
/// Two mixes are measured:
///
///  * alloc+check — per iteration: one typed malloc/free pair, one
///    type_check, eight bounds_checks (roughly the paper's dynamic
///    check densities). The shared session serializes allocation on one
///    size-class lock and ping-pongs one counter cache line; the pool
///    gives every thread its own sub-arena and counter block.
///
///  * report — per iteration: one out-of-bounds error event (counting
///    mode). The shared session takes the reporter mutex per event; the
///    pool pushes onto the lock-free MPSC error ring while a dedicated
///    drainer feeds the central reporter.
///
/// Expected shape on a multicore machine: pool throughput scales with
/// the thread count while the shared session flattens or regresses —
/// at 8 threads the pool should clear 3x the shared configuration on
/// the alloc+check mix. (On a single-core machine both configurations
/// time-slice and the gap shrinks to the locking overhead.)
///
/// Usage: mt_throughput [iters_per_thread] [--json=FILE]
///
///   iters_per_thread  default 300000; CI smoke mode passes a small
///                     count so the job finishes in seconds
///   --json=FILE       additionally emit the measured rows as a
///                     machine-readable JSON document (the BENCH_mt
///                     artifact the CI perf-trajectory job uploads)
///
//===----------------------------------------------------------------------===//

#include "concurrent/SessionPool.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace effective;

namespace {

SessionOptions countingSession() {
  SessionOptions Options;
  Options.Reporter.Mode = ReportMode::Count;
  return Options;
}

concurrent::PoolOptions countingPool(unsigned Shards) {
  concurrent::PoolOptions Options;
  Options.Shards = Shards;
  Options.Reporter.Mode = ReportMode::Count;
  return Options;
}

/// One worker's share of the alloc+check mix; ~10 runtime operations
/// per iteration.
uint64_t allocCheckWorker(Sanitizer &S, const TypeInfo *IntTy,
                          unsigned Iters) {
  uint64_t Sink = 0;
  for (unsigned I = 0; I < Iters; ++I) {
    size_t Count = 8 + (I & 63); // 32..284 bytes: several size classes.
    auto *P = static_cast<int *>(S.malloc(Count * sizeof(int), IntTy));
    Bounds B = S.typeCheck(P, IntTy);
    for (unsigned K = 0; K < 8; ++K)
      S.boundsCheck(P + (K % Count), sizeof(int), B);
    P[0] = static_cast<int>(I);
    Sink += static_cast<unsigned>(P[0]);
    S.free(P);
  }
  return Sink;
}

/// One worker's share of the report mix: every iteration trips a
/// bounds_check (counting mode, so nothing is formatted or printed).
void reportWorker(Sanitizer &S, const TypeInfo *IntTy, unsigned Iters) {
  auto *P = static_cast<int *>(S.malloc(16 * sizeof(int), IntTy));
  Bounds B = S.boundsGet(P);
  for (unsigned I = 0; I < Iters; ++I)
    S.boundsCheck(P + 16 + (I & 7), sizeof(int), B); // Out of bounds.
  S.free(P);
}

struct MixResult {
  double SharedOpsPerSec = 0;
  double PoolOpsPerSec = 0;
};

template <typename Fn>
double timeThreads(unsigned Threads, Fn &&Body) {
  std::vector<std::thread> Workers;
  Workers.reserve(Threads);
  auto Start = std::chrono::steady_clock::now();
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&Body, T] { Body(T); });
  for (std::thread &W : Workers)
    W.join();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

MixResult runAllocCheckMix(unsigned Threads, unsigned Iters) {
  // Ten runtime operations per iteration (1 alloc, 1 free, 1 type
  // check, 8 bounds checks counts as 10ish; keep it simple and report
  // iterations — the ratio is what matters).
  const double Ops = static_cast<double>(Threads) * Iters;
  MixResult R;
  {
    // One session, all threads hammer it.
    Sanitizer S(countingSession());
    const TypeInfo *IntTy = S.types().getInt();
    double Secs = timeThreads(Threads, [&](unsigned) {
      allocCheckWorker(S, IntTy, Iters);
    });
    R.SharedOpsPerSec = Ops / Secs;
  }
  {
    // One pool, one shard per thread.
    concurrent::SessionPool Pool(countingPool(Threads));
    const TypeInfo *IntTy = Pool.types().getInt();
    double Secs = timeThreads(Threads, [&](unsigned T) {
      allocCheckWorker(Pool.shard(T), IntTy, Iters);
    });
    R.PoolOpsPerSec = Ops / Secs;
  }
  return R;
}

MixResult runReportMix(unsigned Threads, unsigned Iters) {
  const double Ops = static_cast<double>(Threads) * Iters;
  MixResult R;
  {
    Sanitizer S(countingSession());
    // Unlimited per-bucket events so every iteration exercises the
    // full locked bucketing path, like an error storm would.
    S.reporter().options().MaxReportsPerBucket = 0;
    const TypeInfo *IntTy = S.types().getInt();
    double Secs = timeThreads(Threads, [&](unsigned) {
      reportWorker(S, IntTy, Iters);
    });
    R.SharedOpsPerSec = Ops / Secs;
  }
  {
    concurrent::PoolOptions Options = countingPool(Threads);
    Options.Reporter.MaxReportsPerBucket = 0;
    Options.ErrorRingCapacity = 1 << 16; // Slack for bursty producers.
    concurrent::SessionPool Pool(Options);
    const TypeInfo *IntTy = Pool.types().getInt();
    // Dedicated drainer: the MPSC consumer runs concurrently with the
    // producers, as a supervisor thread would in a server.
    std::atomic<bool> Done{false};
    std::thread Drainer([&] {
      while (!Done.load(std::memory_order_acquire)) {
        if (Pool.drain() == 0)
          std::this_thread::yield();
      }
      Pool.drain();
    });
    double Secs = timeThreads(Threads, [&](unsigned T) {
      reportWorker(Pool.shard(T), IntTy, Iters);
    });
    Done.store(true, std::memory_order_release);
    Drainer.join();
    R.PoolOpsPerSec = Ops / Secs;
  }
  return R;
}

void printRow(unsigned Threads, const MixResult &R) {
  std::printf("%7u %14.2f %14.2f %9.2fx\n", Threads,
              R.SharedOpsPerSec / 1e6, R.PoolOpsPerSec / 1e6,
              R.PoolOpsPerSec / R.SharedOpsPerSec);
}

/// One measured (mix, thread count) sample for the JSON artifact.
struct Sample {
  const char *Mix;
  unsigned Threads;
  MixResult R;
};

void writeJson(const char *Path, unsigned Iters,
               const std::vector<Sample> &Samples) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "mt_throughput: cannot write %s\n", Path);
    return;
  }
  std::fprintf(F,
               "{\n  \"bench\": \"mt_throughput\",\n"
               "  \"iters_per_thread\": %u,\n"
               "  \"hardware_threads\": %u,\n  \"samples\": [\n",
               Iters, std::thread::hardware_concurrency());
  for (size_t I = 0; I < Samples.size(); ++I) {
    const Sample &S = Samples[I];
    std::fprintf(F,
                 "    {\"mix\": \"%s\", \"threads\": %u, "
                 "\"shared_ops_per_sec\": %.2f, "
                 "\"pool_ops_per_sec\": %.2f, \"speedup\": %.3f}%s\n",
                 S.Mix, S.Threads, S.R.SharedOpsPerSec,
                 S.R.PoolOpsPerSec,
                 S.R.PoolOpsPerSec / S.R.SharedOpsPerSec,
                 I + 1 < Samples.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
}

} // namespace

int main(int argc, char **argv) {
  unsigned Iters = 300000;
  const char *JsonPath = nullptr;
  for (int I = 1; I < argc; ++I) {
    if (std::strncmp(argv[I], "--json=", 7) == 0)
      JsonPath = argv[I] + 7;
    else
      Iters = static_cast<unsigned>(std::atoi(argv[I]));
  }
  if (Iters == 0)
    Iters = 1;
  const unsigned ThreadCounts[] = {1, 2, 4, 8};
  std::vector<Sample> Samples;

  std::printf("==============================================================="
              "=========\n");
  std::printf("Concurrent runtime throughput: sharded SessionPool vs one "
              "shared session\n");
  std::printf("(%u iterations/thread; %u hardware threads; M iters/s, "
              "higher is better)\n",
              Iters, std::thread::hardware_concurrency());
  std::printf("==============================================================="
              "=========\n\n");

  std::printf("alloc+check mix (1 typed malloc/free + 1 type_check + 8 "
              "bounds_checks per iter)\n");
  std::printf("%7s %14s %14s %10s\n", "threads", "shared M/s", "pool M/s",
              "speedup");
  for (unsigned Threads : ThreadCounts) {
    MixResult R = runAllocCheckMix(Threads, Iters);
    printRow(Threads, R);
    Samples.push_back(Sample{"alloc+check", Threads, R});
  }

  std::printf("\nreport mix (1 error event per iter; pool pushes a "
              "lock-free ring, shared takes a mutex)\n");
  std::printf("%7s %14s %14s %10s\n", "threads", "shared M/s", "pool M/s",
              "speedup");
  for (unsigned Threads : ThreadCounts) {
    MixResult R = runReportMix(Threads, Iters / 4 ? Iters / 4 : 1);
    printRow(Threads, R);
    Samples.push_back(Sample{"report", Threads, R});
  }

  if (JsonPath)
    writeJson(JsonPath, Iters, Samples);

  std::printf("\nSingle-thread per-check nanoseconds live in "
              "bench/micro_runtime and fig8_timings;\nthis bench is the "
              "scaling story.\n");
  return 0;
}
