//===- bench/ablation_instrumentation.cpp - Pass-optimization ablation ----===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Ablation of the instrumentation-pass optimizations Section 6 lists
/// ("removing dynamic type checks that can never fail, removing
/// subsumed bounds checks, and removing redundant bounds narrowing"),
/// plus the used-pointers-only rule of Section 4, measured on MiniC
/// programs: static check counts, dynamically executed checks and VM
/// wall-clock, at O0 (schema-literal) vs. each optimization
/// individually vs. all together.
///
/// Usage: ablation_instrumentation [reps] [--engine=tree|bytecode]
///        (defaults: 5 reps, the bytecode VM)
///
//===----------------------------------------------------------------------===//

#include "api/Sanitizer.h"
#include "bytecode/VM.h"
#include "instrument/Pipeline.h"
#include "interp/Interp.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace effective;
using namespace effective::instrument;

namespace {

/// A check-dense workload exercising each optimization's target
/// pattern: matrix multiply (bounds checks), a linked list traversal
/// (input type checks), a cast-and-return helper (used-pointers-only),
/// struct-prefix upcasts in a loop (never-fail elision) and repeated
/// field read/write (subsumed checks).
constexpr const char *Program = R"(
struct cell { long weight; struct cell *next; };
struct base { long id; long kind; };
struct derived { struct base b; long payload[4]; };

char *as_bytes(struct cell *c) { return (char *)c; }

long traverse(struct cell *head) {
  long acc = 0;
  while (head != NULL) {
    char *bytes = as_bytes(head);
    acc = acc + head->weight;
    head = head->next;
  }
  return acc;
}

long churn(struct derived *d, int rounds) {
  long acc = 0;
  int i;
  for (i = 0; i < rounds; i = i + 1) {
    struct base *up = (struct base *)d;   /* upcast: never fails */
    acc = acc + up->id + up->kind;
    d->b.id = d->b.id + 1;                /* repeated access: subsumable */
    d->b.id = d->b.id + acc % 3;
  }
  return acc;
}

long matmul(long *a, long *b, long *c, int n) {
  int i; int j; int k;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      long acc = 0;
      for (k = 0; k < n; k = k + 1)
        acc = acc + a[i * n + k] * b[k * n + j];
      c[i * n + j] = acc;
    }
  }
  return c[(n - 1) * n + (n - 1)];
}

int main() {
  int n = 24;
  long *a = (long *)malloc(n * n * sizeof(long));
  long *b = (long *)malloc(n * n * sizeof(long));
  long *c = (long *)malloc(n * n * sizeof(long));
  int i;
  for (i = 0; i < n * n; i = i + 1) {
    a[i] = i % 7;
    b[i] = i % 5;
  }
  long m = matmul(a, b, c, n);

  struct cell *head = NULL;
  for (i = 0; i < 200; i = i + 1) {
    struct cell *fresh = (struct cell *)malloc(sizeof(struct cell));
    fresh->weight = i;
    fresh->next = head;
    head = fresh;
  }
  long t = traverse(head);
  while (head != NULL) {
    struct cell *next = head->next;
    free(head);
    head = next;
  }

  struct derived *d = (struct derived *)malloc(sizeof(struct derived));
  d->b.id = 1;
  d->b.kind = 2;
  long u = churn(d, 500);
  free(d);

  free(a); free(b); free(c);
  return (int)((m + t + u) % 97);
}
)";

struct Config {
  const char *Name;
  InstrumentOptions Opts;
};

double bestSeconds(const CompileResult &R, Sanitizer &Session, bool Tree,
                   unsigned Reps, interp::RunResult &Out) {
  double Best = 1e30;
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    auto T0 = std::chrono::steady_clock::now();
    interp::RunResult Res =
        Tree ? interp::run(*R.M, Session) : bytecode::run(*R.BC, Session);
    auto T1 = std::chrono::steady_clock::now();
    double Sec = std::chrono::duration<double>(T1 - T0).count();
    if (Res.Ok && Sec < Best) {
      Best = Sec;
      Out = Res;
    }
  }
  return Best;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Reps = 5;
  bool Tree = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--engine=tree") == 0)
      Tree = true;
    else if (std::strcmp(argv[I], "--engine=bytecode") == 0)
      Tree = false;
    else if (std::strncmp(argv[I], "--engine=", 9) == 0) {
      std::fprintf(stderr, "unknown engine '%s' (tree|bytecode)\n",
                   argv[I] + 9);
      return 2;
    } else
      Reps = static_cast<unsigned>(std::atoi(argv[I]));
  }
  if (Reps == 0)
    Reps = 1;

  InstrumentOptions O0;
  O0.OnlyUsedPointers = false;
  O0.ElideNeverFailingChecks = false;
  O0.ElideSubsumedChecks = false;

  InstrumentOptions UsedOnly = O0;
  UsedOnly.OnlyUsedPointers = true;

  InstrumentOptions NeverFail = O0;
  NeverFail.ElideNeverFailingChecks = true;

  InstrumentOptions Subsumed = O0;
  Subsumed.ElideSubsumedChecks = true;

  const Config Configs[] = {
      {"O0 (schema literal)", O0},
      {"+ used-pointers-only", UsedOnly},
      {"+ never-fail elision", NeverFail},
      {"+ subsumed-check removal", Subsumed},
      {"O1 (all, the default)", InstrumentOptions()},
  };

  std::printf("================================================================"
              "========\n");
  std::printf("Ablation: instrumentation-pass optimizations (Section 4/6)\n");
  std::printf("MiniC workload: 24x24 matmul + 200-node list, full variant, "
              "best of %u\nengine: %s\n",
              Reps,
              Tree ? "tree-walker"
                   : ("bytecode VM (" +
                      std::string(bytecode::dispatchStrategy()) + " dispatch)")
                         .c_str());
  std::printf("================================================================"
              "========\n\n");
  std::printf("%-26s %9s %9s %12s %12s %9s\n", "configuration", "static",
              "elided", "exec.type", "exec.bounds", "time");

  double Baseline = 0;
  for (const Config &C : Configs) {
    // A fresh session per configuration: private types, heap, counters.
    SessionOptions SessionOpts;
    SessionOpts.Reporter.Mode = ReportMode::Count;
    Sanitizer Session(SessionOpts);
    DiagnosticEngine Diags;
    CompileResult R =
        compileMiniC(Program, Session.types(), Diags, C.Opts);
    if (!R.M || !R.BC) {
      Diags.print(stderr, "<ablation>");
      return 1;
    }
    interp::RunResult Run;
    double Sec = bestSeconds(R, Session, Tree, Reps, Run);
    if (Baseline == 0)
      Baseline = Sec;
    uint64_t Static = R.Stats.TypeChecks + R.Stats.BoundsChecks +
                      R.Stats.BoundsGets + R.Stats.BoundsNarrows;
    uint64_t Elided = R.Stats.ElidedNeverFail + R.Stats.ElidedSubsumed +
                      R.Stats.UnusedPointers;
    std::printf("%-26s %9llu %9llu %12llu %12llu %8.3fs\n", C.Name,
                (unsigned long long)Static, (unsigned long long)Elided,
                (unsigned long long)Run.Checks.TypeChecks,
                (unsigned long long)(Run.Checks.BoundsChecks +
                                     Run.Checks.BoundsGets),
                Sec);
  }

  std::printf("\nExpected shape: every optimization reduces executed "
              "checks vs. O0;\nthe default configuration executes the "
              "fewest and runs fastest.\n");
  return 0;
}
