//===- bench/obs_overhead.cpp - Observability hot-path overhead -----------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// What arming the observability layer costs on the check hot path.
///
/// One measurement, run twice over the same session: the full SPEC
/// workload mix (all 19 stand-in kernels under the Full policy) with
/// observability disarmed (flags clear — the shipped default) and
/// armed (tracing + metrics + profiling all on: every type check pays
/// the decimation test, every 1024th check runs timed, every 16th
/// cache hit bumps a profiler slot, and allocator slow paths record
/// trace events).
/// Measurement is paired: the run alternates off/on passes and reports
/// the MEDIAN of the per-pair throughput ratios — pairing cancels the
/// slow drift (frequency scaling, noisy neighbours) that makes
/// absolute best-of-N numbers flap in CI, and the median discards the
/// outlier pairs a shared runner produces.
///
/// The contract this bench gates (docs/OBSERVABILITY.md#overhead):
/// armed observability costs <= 3% on the check-bound mix, and an
/// EFFSAN_OBS_OFF build costs nothing at all (the flag accessors are
/// constant false, so both passes here run identical code — the JSON
/// reports compiled_out so CI knows not to read an overhead into the
/// noise).
///
/// Usage: obs_overhead [reps] [--json=FILE]
///
///   reps         SPEC-mix iterations per timed pass (default 10;
///                seven off/on pairs are timed either way)
///   --json=FILE  emit the measurements as JSON (the BENCH_obs
///                artifact; the CI bench job gates .overhead_pct)
///
//===----------------------------------------------------------------------===//

#include "core/Effective.h"
#include "obs/Trace.h"
#include "workloads/Workload.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace effective;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// One timed pass: \p Reps rounds of the full SPEC mix. Returns
/// checks per second (all check kinds, from the runtime's counters).
double runPass(Runtime &RT, unsigned Reps, uint64_t &Sink) {
  auto Before = RT.counters().snapshot();
  auto Start = std::chrono::steady_clock::now();
  for (unsigned R = 0; R < Reps; ++R)
    for (const workloads::Workload &W : workloads::specWorkloads())
      Sink += W.RunFull(RT, /*Scale=*/1);
  double Secs = secondsSince(Start);
  auto After = RT.counters().snapshot();
  double Checks =
      double((After.TypeChecks - Before.TypeChecks) +
             (After.BoundsChecks - Before.BoundsChecks) +
             (After.BoundsNarrows - Before.BoundsNarrows) +
             (After.BoundsGets - Before.BoundsGets));
  return Checks / Secs;
}

void arm() {
  obs::Tracer::instance().start();
  obs::setFlags(obs::TraceFlag | obs::MetricsFlag | obs::ProfileFlag);
}

void disarm() {
  obs::Tracer::instance().stop();
  obs::setFlags(0);
}

} // namespace

int main(int argc, char **argv) {
  unsigned Reps = 10;
  const char *JsonPath = nullptr;
  for (int I = 1; I < argc; ++I) {
    if (std::strncmp(argv[I], "--json=", 7) == 0)
      JsonPath = argv[I] + 7;
    else
      Reps = static_cast<unsigned>(std::atoi(argv[I]));
  }
  if (Reps == 0)
    Reps = 1;

  SessionOptions Options;
  Options.Reporter.Mode = ReportMode::Count;
  Sanitizer Session(TypeContext::global(), Options);
  SanitizerScope Scope(Session);
  Runtime &RT = Session.runtime();

  std::printf("================================================================"
              "========\n");
  std::printf("Observability overhead: SPEC mix, disarmed vs armed "
              "(%u reps/pass, median of 7 pairs)\n",
              Reps);
  std::printf("compiled in: %s\n", obs::compiledIn() ? "yes" : "no "
              "(EFFSAN_OBS_OFF - both passes run identical code)");
  std::printf("================================================================"
              "========\n\n");

  uint64_t Sink = 0;
  // Warm both configurations once: layout tables, site caches and the
  // profiler/histogram allocations all settle before timing starts.
  runPass(RT, 1, Sink);
  arm();
  runPass(RT, 1, Sink);
  disarm();

  constexpr int Pairs = 7;
  double BestOff = 0, BestOn = 0;
  double Ratios[Pairs];
  for (int Pair = 0; Pair < Pairs; ++Pair) {
    double Off = runPass(RT, Reps, Sink);
    arm();
    double On = runPass(RT, Reps, Sink);
    disarm();
    BestOff = std::max(BestOff, Off);
    BestOn = std::max(BestOn, On);
    Ratios[Pair] = Off / On;
  }
  if (Sink == uint64_t(-1))
    std::printf("impossible\n"); // Keep the sink alive.

  obs::Tracer::instance().collect(); // Rings -> buffer so the count is real.
  uint64_t Events = obs::Tracer::instance().collectedSize();
  uint64_t Dropped = obs::Tracer::instance().dropped();
  std::sort(Ratios, Ratios + Pairs);
  double OverheadPct = (Ratios[Pairs / 2] - 1.0) * 100.0;

  std::printf("%18s %14.2f M checks/s\n", "obs disarmed", BestOff / 1e6);
  std::printf("%18s %14.2f M checks/s\n", "obs armed", BestOn / 1e6);
  std::printf("%18s %14.2f %%   (CI gate: <= 3%%)\n", "overhead",
              OverheadPct);
  std::printf("%18s %14llu collected, %llu dropped\n", "trace events",
              static_cast<unsigned long long>(Events),
              static_cast<unsigned long long>(Dropped));

  if (JsonPath) {
    std::FILE *F = std::fopen(JsonPath, "w");
    if (!F) {
      std::fprintf(stderr, "obs_overhead: cannot write %s\n", JsonPath);
      return 1;
    }
    std::fprintf(F,
                 "{\n  \"bench\": \"obs_overhead\",\n  \"reps\": %u,\n"
                 "  \"compiled_out\": %s,\n"
                 "  \"obs_off_checks_per_sec\": %.2f,\n"
                 "  \"obs_on_checks_per_sec\": %.2f,\n"
                 "  \"overhead_pct\": %.3f,\n"
                 "  \"events_collected\": %llu,\n"
                 "  \"events_dropped\": %llu\n}\n",
                 Reps, obs::compiledIn() ? "false" : "true", BestOff,
                 BestOn, OverheadPct,
                 static_cast<unsigned long long>(Events),
                 static_cast<unsigned long long>(Dropped));
    std::fclose(F);
  }
  return 0;
}
