//===- bench/fig7_spec_summary.cpp - Reproduces Figure 7 ------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 7 of the paper: per-benchmark dynamic type-check
/// and bounds-check counts plus the number of distinct issues found by
/// full EffectiveSan instrumentation, with the Section 6.2 aggregates
/// (C++-only totals, legacy-pointer ratio, per-variant check volumes).
///
/// Usage: fig7_spec_summary [scale]   (default scale 2)
///
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"
#include "workloads/Harness.h"

#include <cstdlib>
#include <cstring>

using namespace effective;
using namespace effective::workloads;

int main(int argc, char **argv) {
  unsigned Scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 2;
  if (Scale == 0)
    Scale = 1;

  std::printf("==============================================================="
              "=========\n");
  std::printf("Figure 7: SPEC2006 stand-in summary under EffectiveSan (full)"
              "\n");
  std::printf("scale=%u; checks in millions; kilo-sLOC column reproduces the"
              "\npaper's values for the original programs\n",
              Scale);
  std::printf("==============================================================="
              "=========\n\n");

  std::printf("%-12s %-5s %10s %12s %12s %8s %8s\n", "Benchmark", "Lang",
              "kilo-sLOC", "#Type (M)", "#Bounds (M)", "#Issues",
              "expect");
  std::printf("%-12s %-5s %10s %12s %12s %8s %8s\n", "---------", "----",
              "---------", "---------", "-----------", "-------",
              "------");

  uint64_t TotalType = 0, TotalBounds = 0, TotalIssues = 0;
  uint64_t TotalLegacy = 0;
  uint64_t CxxType = 0, CxxBounds = 0, CxxIssues = 0;
  double TotalSloc = 0, CxxSloc = 0;

  CheckCounters::Snapshot VariantTotals[3] = {};

  for (const Workload &W : specWorkloads()) {
    RunStats Full = runWorkload(W, PolicyKind::Full, Scale);
    uint64_t TypeChecks = Full.Checks.TypeChecks;
    uint64_t BoundsChecks = Full.Checks.BoundsChecks;
    bool IsCxx = std::strcmp(W.Info.Language, "C++") == 0;
    std::printf("%-12s %-5s %10.1f %12.2f %12.2f %8llu %8u%s\n",
                W.Info.Name, W.Info.Language, W.Info.KiloSloc,
                TypeChecks / 1e6, BoundsChecks / 1e6,
                (unsigned long long)Full.Issues, W.Info.SeededIssues,
                Full.Issues != W.Info.SeededIssues ? "  <-- MISMATCH"
                                                   : "");
    TotalType += TypeChecks;
    TotalBounds += BoundsChecks;
    TotalIssues += Full.Issues;
    TotalLegacy += Full.Checks.LegacyTypeChecks;
    TotalSloc += W.Info.KiloSloc;
    if (IsCxx) {
      CxxType += TypeChecks;
      CxxBounds += BoundsChecks;
      CxxIssues += Full.Issues;
      CxxSloc += W.Info.KiloSloc;
    }
    // Variant check volumes (Section 6.2 comparison with TypeSan).
    RunStats TypeVar = runWorkload(W, PolicyKind::Type, Scale);
    RunStats BoundsVar = runWorkload(W, PolicyKind::Bounds, Scale);
    VariantTotals[0].TypeChecks += TypeVar.Checks.TypeChecks;
    VariantTotals[1].BoundsGets += BoundsVar.Checks.BoundsGets;
    VariantTotals[1].BoundsChecks += BoundsVar.Checks.BoundsChecks;
  }

  std::printf("%-12s %-5s %10.1f %12.2f %12.2f %8llu\n", "Totals (all)",
              "", TotalSloc, TotalType / 1e6, TotalBounds / 1e6,
              (unsigned long long)TotalIssues);
  std::printf("%-12s %-5s %10.1f %12.2f %12.2f %8llu\n", "Totals (C++)",
              "", CxxSloc, CxxType / 1e6, CxxBounds / 1e6,
              (unsigned long long)CxxIssues);

  std::printf("\nSection 6.1/6.2 aggregates:\n");
  std::printf("  bounds/type check ratio:   %.2fx (paper: ~4.0x)\n",
              TotalType ? (double)TotalBounds / TotalType : 0.0);
  std::printf("  legacy-pointer type checks: %.2f%% (paper: ~1.1%%)\n",
              TotalType ? 100.0 * TotalLegacy / TotalType : 0.0);
  std::printf("  EffectiveSan-type total type checks: %s (full: %s)\n",
              withThousandsSep(VariantTotals[0].TypeChecks).c_str(),
              withThousandsSep(TotalType).c_str());
  std::printf("  EffectiveSan-bounds bounds_get ops:  %s\n",
              withThousandsSep(VariantTotals[1].BoundsGets).c_str());
  std::printf("\nBenchmarks with issues (paper: perlbench, bzip2, gcc, "
              "h264ref,\nxalancbmk, milc, namd, dealII, soplex, povray, "
              "lbm, sphinx3;\nzero for mcf, gobmk, hmmer, sjeng, "
              "libquantum, omnetpp, astar)\n");
  return 0;
}
