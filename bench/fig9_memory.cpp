//===- bench/fig9_memory.cpp - Reproduces Figure 9 ------------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 9 of the paper: peak memory per benchmark,
/// uninstrumented (plain malloc footprint) versus EffectiveSan full
/// (low-fat blocks including META headers and size-class rounding).
/// Paper result: ~12% overall overhead.
///
/// Usage: fig9_memory [scale]   (default 4)
///
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"
#include "workloads/Harness.h"

#include <cstdlib>

using namespace effective;
using namespace effective::workloads;

int main(int argc, char **argv) {
  unsigned Scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  if (Scale == 0)
    Scale = 1;

  std::printf("==============================================================="
              "=========\n");
  std::printf("Figure 9: peak memory, uninstrumented vs EffectiveSan (full); "
              "scale=%u\n",
              Scale);
  std::printf("==============================================================="
              "=========\n\n");
  std::printf("%-12s %14s %14s %10s\n", "Benchmark", "Uninstrumented",
              "EffectiveSan", "overhead");

  uint64_t TotalNone = 0, TotalFull = 0;
  for (const Workload &W : specWorkloads()) {
    RunStats None = runWorkload(W, PolicyKind::None, Scale);
    RunStats Full = runWorkload(W, PolicyKind::Full, Scale);
    double Overhead =
        None.PeakHeapBytes
            ? 100.0 * ((double)Full.PeakHeapBytes / None.PeakHeapBytes - 1)
            : 0.0;
    std::printf("%-12s %14s %14s %+9.1f%%\n", W.Info.Name,
                formatBytes(None.PeakHeapBytes).c_str(),
                formatBytes(Full.PeakHeapBytes).c_str(), Overhead);
    TotalNone += None.PeakHeapBytes;
    TotalFull += Full.PeakHeapBytes;
  }

  std::printf("\nOverall: %s -> %s (%+.1f%%); paper reports ~12%% "
              "(vs ~237%% for\nAddressSanitizer's shadow memory).\n",
              formatBytes(TotalNone).c_str(),
              formatBytes(TotalFull).c_str(),
              TotalNone
                  ? 100.0 * ((double)TotalFull / TotalNone - 1)
                  : 0.0);
  std::printf("The overhead is META headers (16 B/object) plus size-class "
              "rounding;\nconstant type meta data (layout tables) is shared "
              "process-wide.\n");
  return 0;
}
