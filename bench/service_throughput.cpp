//===- bench/service_throughput.cpp - Service-mode overheads --------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// What service mode costs — and what adaptive degradation buys back.
///
/// Two measurements:
///
///  * overload — one tenant hammers the check-heavy mix (1 type_check +
///    8 bounds_checks per iteration over a periodically-recycled typed
///    allocation) far past any
///    sane per-tick budget, measured twice: governor off (the shard
///    stays on the Full policy) and governor pre-tripped (the drain
///    thread has walked the shard down Full -> BoundsOnly -> CountOnly
///    before the timer starts). The ratio is the load the governor
///    sheds for an overloaded tenant while the service keeps counting
///    its checks — the CI bench job gates it at >= 1.5x.
///
///  * churn — N worker threads each cycling open-tenant -> lease ->
///    brief typed work -> release -> close at 1/2/4/8 threads, governor
///    off and on. Exercises the whole supervisor cold path (registry
///    gate, eviction, drain-tick shard recycling) and shows that the
///    governor adds nothing measurable to it.
///
/// Usage: service_throughput [iters] [--json=FILE]
///                           [--trace=FILE] [--metrics=FILE]
///
///   iters        overload iterations (default 200000); churn runs
///                iters/100 cycles per thread. CI smoke mode passes a
///                small count so the job finishes in seconds.
///   --json=FILE  additionally emit the measurements as JSON (the
///                BENCH_service artifact; the CI bench job reads
///                .overload.speedup from it)
///   --trace=FILE run an extra observed pass (full observability on)
///                and write its Chrome trace-event JSON to FILE — load
///                it in Perfetto / chrome://tracing. The pass
///                interleaves checked work with forced drain ticks so
///                the trace carries check, alloc and service events.
///   --metrics=FILE write the observed pass's Prometheus metrics text
///                to FILE (implies the observed pass, like --trace).
///
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"
#include "service/Supervisor.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace effective;
using namespace effective::service;

namespace {

ServiceOptions countingService(unsigned Shards, bool Governor) {
  ServiceOptions Options;
  Options.Shards = Shards;
  Options.Reporter.Mode = ReportMode::Count;
  Options.DrainIntervalMicros = 60'000'000; // Ticks only when forced.
  Options.EnableGovernor = Governor;
  return Options;
}

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// The check-heavy overload mix: 1 type_check + 8 bounds_checks per
/// iteration, with the working block recycled through typed
/// malloc/free every 64 iterations, all on the tenant's leased shard.
/// Allocation is deliberately amortized — degradation sheds check
/// work, not allocator work, and an overloaded sanitizer tenant is
/// check-bound (the paper's figure 8 mix runs ~10 checks per
/// allocation site visit).
uint64_t overloadWork(Sanitizer &S, const TypeInfo *IntTy, unsigned Iters) {
  uint64_t Sink = 0;
  auto *P = static_cast<int *>(S.malloc(16 * sizeof(int), IntTy));
  for (unsigned I = 0; I < Iters; ++I) {
    if ((I & 63) == 63) {
      S.free(P);
      P = static_cast<int *>(S.malloc(16 * sizeof(int), IntTy));
    }
    Bounds B = S.typeCheck(P, IntTy);
    for (unsigned K = 0; K < 8; ++K)
      S.boundsCheck(P + (K & 15), sizeof(int), B);
    P[0] = static_cast<int>(I);
    Sink += static_cast<unsigned>(P[0]);
  }
  S.free(P);
  return Sink;
}

/// Checks per second for the overload mix with the shard held at
/// \p Degrade ? CountOnly (governor-shed) : Full (governor off).
double runOverload(bool Degrade, unsigned Iters) {
  Supervisor Sup(countingService(1, Degrade));
  TenantId T = Sup.openTenant("overloaded");
  Supervisor::Lease L = Sup.lease(T);
  const TypeInfo *IntTy = L->types().getInt();

  if (Degrade) {
    // Pre-trip the governor exactly as a sustained overload would:
    // feed it pressured ticks until the ladder bottoms out. Each round
    // burns more checks than the default CheckRateHigh per-tick budget,
    // and the ticks are forced so the warm-up is deterministic.
    for (int Round = 0; Round < 8 &&
                        Sup.tenantPolicy(T) != CheckPolicy::CountOnly;
         ++Round) {
      overloadWork(L.session(), IntTy,
                   2'500'000 / 10); // > CheckRateHigh checks per tick.
      Sup.tick();
    }
    if (Sup.tenantPolicy(T) == CheckPolicy::Full) {
      std::fprintf(stderr, "service_throughput: governor never tripped\n");
      std::exit(1);
    }
  }

  auto Start = std::chrono::steady_clock::now();
  uint64_t Sink = overloadWork(L.session(), IntTy, Iters);
  double Secs = secondsSince(Start);
  if (Sink == uint64_t(-1))
    std::printf("impossible\n"); // Keep the sink alive.

  double ChecksPerIter = 9.0; // 1 type_check + 8 bounds_checks.
  return double(Iters) * ChecksPerIter / Secs;
}

/// One churn worker: open -> lease -> brief work -> release -> close,
/// \p Cycles times. Each worker owns one shard's worth of slots at a
/// time, so opens never fail with Shards == Threads.
void churnWorker(Supervisor &Sup, unsigned Cycles) {
  for (unsigned I = 0; I < Cycles; ++I) {
    TenantId T = Sup.openTenant("churn");
    while (T == NoTenant) { // A sibling's close is mid-recycle.
      std::this_thread::yield();
      T = Sup.openTenant("churn");
    }
    {
      Supervisor::Lease L = Sup.lease(T);
      const TypeInfo *IntTy = L->types().getInt();
      auto *P = static_cast<int *>(L->malloc(8 * sizeof(int), IntTy));
      Bounds B = L->typeCheck(P, IntTy);
      L->boundsCheck(P, sizeof(int), B);
      L->free(P);
    }
    Sup.closeTenant(T);
  }
}

double runChurn(unsigned Threads, bool Governor, unsigned Cycles) {
  // One spare shard so a close mid-recycle never starves an open.
  Supervisor Sup(countingService(Threads + 1, Governor));
  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Workers;
  for (unsigned W = 0; W < Threads; ++W)
    Workers.emplace_back([&] { churnWorker(Sup, Cycles); });
  for (std::thread &W : Workers)
    W.join();
  double Secs = secondsSince(Start);
  return double(Threads) * Cycles / Secs;
}

struct ChurnSample {
  unsigned Threads;
  bool Governor;
  double CyclesPerSec;
};

void writeJson(const char *Path, unsigned Iters, double FullChecks,
               double DegradedChecks,
               const std::vector<ChurnSample> &Churn) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "service_throughput: cannot write %s\n", Path);
    return;
  }
  std::fprintf(F,
               "{\n  \"bench\": \"service_throughput\",\n"
               "  \"iters\": %u,\n  \"hardware_threads\": %u,\n"
               "  \"overload\": {\n"
               "    \"full_checks_per_sec\": %.2f,\n"
               "    \"degraded_checks_per_sec\": %.2f,\n"
               "    \"degraded_policy\": \"count\",\n"
               "    \"speedup\": %.3f\n  },\n  \"churn\": [\n",
               Iters, std::thread::hardware_concurrency(), FullChecks,
               DegradedChecks, DegradedChecks / FullChecks);
  for (size_t I = 0; I < Churn.size(); ++I) {
    const ChurnSample &S = Churn[I];
    std::fprintf(F,
                 "    {\"threads\": %u, \"governor\": %s, "
                 "\"cycles_per_sec\": %.2f}%s\n",
                 S.Threads, S.Governor ? "true" : "false",
                 S.CyclesPerSec, I + 1 < Churn.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
}

bool writeFile(const char *Path, const std::string &Data,
               const char *What) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "service_throughput: cannot write %s %s\n", What,
                 Path);
    return false;
  }
  std::fwrite(Data.data(), 1, Data.size(), F);
  std::fclose(F);
  return true;
}

/// One fully-observed pass: tracing + metrics + profiling armed, the
/// overload mix interleaved with forced drain ticks so the resulting
/// trace carries events from the check layer (slow-path misses), the
/// alloc layer (magazine refills / quarantine flushes) and the service
/// layer (drain ticks, snapshot emissions) in one timeline.
void runObserved(const char *TracePath, const char *MetricsPath,
                 unsigned Iters) {
  if (!obs::compiledIn()) {
    std::fprintf(stderr, "service_throughput: observability compiled out "
                         "(EFFSAN_OBS_OFF); --trace/--metrics skipped\n");
    return;
  }
  Supervisor Sup(countingService(1, /*Governor=*/true));
  TenantId T = Sup.openTenant("observed");
  const TypeInfo *IntTy;
  {
    Supervisor::Lease Probe = Sup.lease(T);
    IntTy = Probe->types().getInt();
  }

  obs::Tracer::instance().start();
  obs::setFlags(obs::TraceFlag | obs::MetricsFlag | obs::ProfileFlag);

  unsigned Chunk = Iters / 8 ? Iters / 8 : 1;
  uint64_t Sink = 0;
  {
    Supervisor::Lease L = Sup.lease(T);
    for (unsigned Round = 0; Round < 8; ++Round) {
      Sink += overloadWork(L.session(), IntTy, Chunk);
      // An allocation burst deep enough to turn the TLS magazine over
      // (refills + overflow flushes) and batch up quarantined frees.
      void *Blocks[512];
      for (void *&B : Blocks)
        B = L->malloc(64, IntTy);
      for (void *B : Blocks)
        L->free(B);
      Sup.tick();
    }
  }
  // Close the tenant under trace: the recycling tick records the
  // concurrent layer's session reset and the allocator's shard rewind.
  Sup.closeTenant(T);
  Sup.tick();
  if (Sink == uint64_t(-1))
    std::printf("impossible\n");

  obs::Tracer::instance().stop();

  if (TracePath) {
    std::string Json;
    uint64_t Events = obs::Tracer::instance().exportChromeJson(Json);
    if (writeFile(TracePath, Json, "trace"))
      std::printf("\nobserved pass: %llu trace events -> %s "
                  "(%llu dropped)\n",
                  static_cast<unsigned long long>(Events), TracePath,
                  static_cast<unsigned long long>(
                      obs::Tracer::instance().dropped()));
  }
  if (MetricsPath) {
    std::string Text = Sup.metricsText();
    if (writeFile(MetricsPath, Text, "metrics"))
      std::printf("observed pass: metrics -> %s\n", MetricsPath);
  }
  obs::setFlags(0);
}

} // namespace

int main(int argc, char **argv) {
  unsigned Iters = 200000;
  const char *JsonPath = nullptr;
  const char *TracePath = nullptr;
  const char *MetricsPath = nullptr;
  for (int I = 1; I < argc; ++I) {
    if (std::strncmp(argv[I], "--json=", 7) == 0)
      JsonPath = argv[I] + 7;
    else if (std::strncmp(argv[I], "--trace=", 8) == 0)
      TracePath = argv[I] + 8;
    else if (std::strncmp(argv[I], "--metrics=", 10) == 0)
      MetricsPath = argv[I] + 10;
    else
      Iters = static_cast<unsigned>(std::atoi(argv[I]));
  }
  if (Iters == 0)
    Iters = 1;
  unsigned ChurnCycles = Iters / 100 ? Iters / 100 : 1;

  std::printf("==============================================================="
              "=========\n");
  std::printf("Service mode: degradation payoff and tenant-churn overhead\n");
  std::printf("(%u overload iterations; %u hardware threads)\n", Iters,
              std::thread::hardware_concurrency());
  std::printf("==============================================================="
              "=========\n\n");

  std::printf("overload mix (1 type_check + 8 bounds_checks per iter, "
              "typed realloc every 64)\n");
  double FullChecks = runOverload(/*Degrade=*/false, Iters);
  double DegradedChecks = runOverload(/*Degrade=*/true, Iters);
  std::printf("%24s %14.2f M checks/s\n", "Full (governor off)",
              FullChecks / 1e6);
  std::printf("%24s %14.2f M checks/s\n", "CountOnly (governor)",
              DegradedChecks / 1e6);
  std::printf("%24s %14.2fx   (CI gate: >= 1.5x)\n", "shed factor",
              DegradedChecks / FullChecks);

  std::printf("\ntenant churn (open -> lease -> work -> release -> close "
              "cycles/s)\n");
  std::printf("%7s %16s %16s\n", "threads", "governor off", "governor on");
  std::vector<ChurnSample> Churn;
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    double Off = runChurn(Threads, false, ChurnCycles);
    double On = runChurn(Threads, true, ChurnCycles);
    std::printf("%7u %16.0f %16.0f\n", Threads, Off, On);
    Churn.push_back(ChurnSample{Threads, false, Off});
    Churn.push_back(ChurnSample{Threads, true, On});
  }

  if (JsonPath)
    writeJson(JsonPath, Iters, FullChecks, DegradedChecks, Churn);
  if (TracePath || MetricsPath)
    runObserved(TracePath, MetricsPath, Iters);

  std::printf("\nThe overload rows are per-shard; scaling across shards "
              "lives in bench/mt_throughput.\n");
  return 0;
}
