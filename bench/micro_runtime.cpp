//===- bench/micro_runtime.cpp - Runtime micro benchmarks -----------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Micro benchmarks for the runtime primitives that Figure 8's overheads
/// decompose into:
///
///  * type_check against primitive, record-interior and legacy pointers
///    (the hot path of rules (a)-(d)) — these run through the
///    site-indexed inline cache, like all production checks;
///  * the cached fast path vs. the uncached reference slow path on the
///    same probe, plus the forced-miss worst case — the PR-3 ablation;
///  * the layout hash table probe vs. a linear scan over the same
///    entries — the ablation justifying the Section 5 "O(1) hash table
///    lookup" design;
///  * the char[] coercion's second lookup (Section 5);
///  * bounds_check / bounds_narrow / bounds_get;
///  * typed allocation vs. plain malloc (META header + type binding
///    cost);
///  * the full SPEC workload mix under the Full policy, reporting the
///    type-check fast-path hit rate as a benchmark counter (lands in
///    --benchmark_out JSON for the CI perf artifacts).
///
/// All numbers here are SINGLE-THREADED: one session, one thread, no
/// contention — the per-check floor, not the scaling story. For
/// throughput under concurrent load (sharded SessionPool vs a shared
/// session at 1/2/4/8 threads) see bench/mt_throughput.cpp.
///
//===----------------------------------------------------------------------===//

#include "core/Effective.h"
#include "workloads/Workload.h"

#include <benchmark/benchmark.h>

#include <cstdlib>

using namespace effective;

namespace {

/// Benchmark fixture state: a private sanitizer session plus the
/// paper's Example 1/2 types, built once. The primitive benchmarks go
/// straight at the session's Runtime; the BM_Session* ones measure the
/// policy-dispatch layer the public API adds on top.
struct MicroState {
  Sanitizer Session;
  TypeContext &Ctx;
  Runtime &RT;
  RecordType *S;
  RecordType *T;
  void *IntArray;   // int[100]
  void *TObject;    // struct T
  void *CharArray;  // char[64]
  int Local = 0;    // A legacy (host stack) location.

  MicroState()
      : Session(countingOptions()), Ctx(Session.types()),
        RT(Session.runtime()) {
    S = Ctx.createRecord(TypeKind::Struct, "S");
    FieldInfo SFields[] = {
        {"a", Ctx.getArray(Ctx.getInt(), 3), 0, false},
        {"s", Ctx.getPointer(Ctx.getChar()), 12, false},
    };
    Ctx.defineRecord(S, SFields, 20, 4);
    T = Ctx.createRecord(TypeKind::Struct, "T");
    FieldInfo TFields[] = {
        {"f", Ctx.getFloat(), 0, false},
        {"t", S, 4, false},
    };
    Ctx.defineRecord(T, TFields, 24, 4);

    IntArray = RT.allocate(100 * sizeof(int), Ctx.getInt());
    TObject = RT.allocate(24, T);
    CharArray = RT.allocate(64, Ctx.getChar());
  }

  static SessionOptions countingOptions() {
    SessionOptions Options;
    Options.Reporter.Mode = ReportMode::Count;
    return Options;
  }

  static MicroState &get() {
    static MicroState State;
    return State;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// type_check
//===----------------------------------------------------------------------===//

static void BM_TypeCheck_PrimitiveArray(benchmark::State &State) {
  MicroState &M = MicroState::get();
  char *P = static_cast<char *>(M.IntArray) + 40;
  for (auto _ : State)
    benchmark::DoNotOptimize(M.RT.typeCheck(P, M.Ctx.getInt()));
}
BENCHMARK(BM_TypeCheck_PrimitiveArray);

static void BM_TypeCheck_RecordInterior(benchmark::State &State) {
  // Example 5: q = p + 12 inside struct T, checked as int[].
  MicroState &M = MicroState::get();
  char *P = static_cast<char *>(M.TObject) + 12;
  for (auto _ : State)
    benchmark::DoNotOptimize(M.RT.typeCheck(P, M.Ctx.getInt()));
}
BENCHMARK(BM_TypeCheck_RecordInterior);

static void BM_TypeCheck_RecordMismatch(benchmark::State &State) {
  // The failing probe (counting mode: no log formatting on this path).
  MicroState &M = MicroState::get();
  char *P = static_cast<char *>(M.TObject) + 12;
  for (auto _ : State)
    benchmark::DoNotOptimize(M.RT.typeCheck(P, M.Ctx.getDouble()));
}
BENCHMARK(BM_TypeCheck_RecordMismatch);

static void BM_TypeCheck_CharCoercionSecondLookup(benchmark::State &State) {
  // A char[] allocation probed as int[]: the first lookup misses, the
  // paper's second (char) lookup hits — the double-lookup cost.
  MicroState &M = MicroState::get();
  char *P = static_cast<char *>(M.CharArray) + 8;
  for (auto _ : State)
    benchmark::DoNotOptimize(M.RT.typeCheck(P, M.Ctx.getInt()));
}
BENCHMARK(BM_TypeCheck_CharCoercionSecondLookup);

static void BM_TypeCheck_LegacyPointer(benchmark::State &State) {
  // Host-stack pointer: base(p) fails fast, wide bounds returned.
  MicroState &M = MicroState::get();
  for (auto _ : State)
    benchmark::DoNotOptimize(M.RT.typeCheck(&M.Local, M.Ctx.getInt()));
}
BENCHMARK(BM_TypeCheck_LegacyPointer);

//===----------------------------------------------------------------------===//
// Site-cache ablation: hit vs. forced miss vs. uncached reference
//===----------------------------------------------------------------------===//

static void BM_TypeCheck_SiteCacheHit(benchmark::State &State) {
  // A monomorphic site: after the first fill every probe is a pure
  // fast-path hit (meta fetch + key compare + cached-bounds rebuild).
  MicroState &M = MicroState::get();
  char *P = static_cast<char *>(M.TObject) + 12;
  const TypeInfo *Int = M.Ctx.getInt();
  for (auto _ : State)
    benchmark::DoNotOptimize(M.RT.typeCheck(P, Int, SiteId(1)));
}
BENCHMARK(BM_TypeCheck_SiteCacheHit);

static void BM_TypeCheck_SiteCachePolymorphic2Way(benchmark::State &State) {
  // Two static types alternating through ONE site: with the 2-way
  // set-associative cache both resolutions stay resident, so this runs
  // at hit speed (the direct-mapped cache ping-ponged here at ~3.5x).
  MicroState &M = MicroState::get();
  char *P = static_cast<char *>(M.TObject) + 12; // int[] inside T.t.a
  char *Q = static_cast<char *>(M.TObject) + 4;  // struct S at T.t
  const TypeInfo *Int = M.Ctx.getInt();
  for (auto _ : State) {
    benchmark::DoNotOptimize(M.RT.typeCheck(P, Int, SiteId(2)));
    benchmark::DoNotOptimize(M.RT.typeCheck(Q, M.S, SiteId(2)));
  }
}
BENCHMARK(BM_TypeCheck_SiteCachePolymorphic2Way);

static void BM_TypeCheck_SiteCacheForcedMiss(benchmark::State &State) {
  // THREE resolutions fighting over one 2-way set: every check misses,
  // refills, and evicts the oldest way — the beyond-associativity
  // worst case (slow path + fill on top of the Figure 6 probe), kept
  // as the regression reference for the miss cost.
  MicroState &M = MicroState::get();
  char *P = static_cast<char *>(M.TObject) + 12; // int[] inside T.t.a
  char *Q = static_cast<char *>(M.TObject) + 4;  // struct S at T.t
  char *R = static_cast<char *>(M.TObject);      // float at T.f
  const TypeInfo *Int = M.Ctx.getInt();
  const TypeInfo *Float = M.Ctx.getFloat();
  for (auto _ : State) {
    benchmark::DoNotOptimize(M.RT.typeCheck(P, Int, SiteId(2)));
    benchmark::DoNotOptimize(M.RT.typeCheck(Q, M.S, SiteId(2)));
    benchmark::DoNotOptimize(M.RT.typeCheck(R, Float, SiteId(2)));
  }
}
BENCHMARK(BM_TypeCheck_SiteCacheForcedMiss);

static void BM_TypeCheck_Uncached(benchmark::State &State) {
  // The same probe as BM_TypeCheck_SiteCacheHit through the reference
  // slow path (never reads or fills the cache) — the pre-PR-3 cost,
  // and the baseline for the cached-vs-uncached speedup.
  MicroState &M = MicroState::get();
  char *P = static_cast<char *>(M.TObject) + 12;
  const TypeInfo *Int = M.Ctx.getInt();
  for (auto _ : State)
    benchmark::DoNotOptimize(M.RT.typeCheckUncached(P, Int));
}
BENCHMARK(BM_TypeCheck_Uncached);

//===----------------------------------------------------------------------===//
// SPEC workload mix: fast-path hit rate under full instrumentation
//===----------------------------------------------------------------------===//

static void BM_SpecMix_TypeCheckHitRate(benchmark::State &State) {
  // All 19 SPEC2006 stand-in kernels under the Full policy against one
  // fresh session; CheckedPtr input/cast events reach the runtime
  // through type-derived pseudo-sites. The hit_rate_pct counter is the
  // acceptance metric: fast-path hits / (hits + misses), in percent.
  SessionOptions Options;
  Options.Reporter.Mode = ReportMode::Count;
  Sanitizer Session(TypeContext::global(), Options);
  SanitizerScope Scope(Session);
  Runtime &RT = Session.runtime();
  uint64_t Sink = 0;
  for (auto _ : State) {
    for (const workloads::Workload &W : workloads::specWorkloads())
      Sink += W.RunFull(RT, /*Scale=*/1);
  }
  benchmark::DoNotOptimize(Sink);
  auto C = RT.counters().snapshot();
  double Resolved =
      static_cast<double>(C.TypeCheckCacheHits + C.TypeCheckCacheMisses);
  State.counters["hit_rate_pct"] =
      Resolved ? 100.0 * static_cast<double>(C.TypeCheckCacheHits) / Resolved
               : 0.0;
  State.counters["type_checks"] = static_cast<double>(C.TypeChecks);
  State.counters["cache_hits"] =
      static_cast<double>(C.TypeCheckCacheHits);
  State.counters["cache_misses"] =
      static_cast<double>(C.TypeCheckCacheMisses);
}
BENCHMARK(BM_SpecMix_TypeCheckHitRate)->Unit(benchmark::kMillisecond);

//===----------------------------------------------------------------------===//
// Layout table probe vs. linear scan (design ablation)
//===----------------------------------------------------------------------===//

static void BM_LayoutLookup_HashProbe(benchmark::State &State) {
  MicroState &M = MicroState::get();
  const LayoutTable &Table = M.T->layout();
  const TypeInfo *Int = M.Ctx.getInt();
  for (auto _ : State)
    benchmark::DoNotOptimize(Table.lookup(Int, 12));
}
BENCHMARK(BM_LayoutLookup_HashProbe);

static void BM_LayoutLookup_LinearScan(benchmark::State &State) {
  // What type_check would cost without the hash index: scan all
  // entries applying the tie-breaking rules (Figure 6 lines 17-21 done
  // naively).
  MicroState &M = MicroState::get();
  const LayoutTable &Table = M.T->layout();
  const TypeInfo *Int = M.Ctx.getInt();
  for (auto _ : State) {
    const LayoutEntry *Best = nullptr;
    for (const LayoutEntry &E : Table.entries()) {
      if (E.Key != Int || E.Offset != 12)
        continue;
      if (!Best || E.width() > Best->width())
        Best = &E;
    }
    benchmark::DoNotOptimize(Best);
  }
}
BENCHMARK(BM_LayoutLookup_LinearScan);

//===----------------------------------------------------------------------===//
// Session-dispatch overhead (the public API's policy switch)
//===----------------------------------------------------------------------===//

static void BM_SessionTypeCheck(benchmark::State &State) {
  // Same probe as BM_TypeCheck_RecordInterior, but through the
  // Sanitizer session — the delta is the policy-dispatch cost.
  MicroState &M = MicroState::get();
  char *P = static_cast<char *>(M.TObject) + 12;
  for (auto _ : State)
    benchmark::DoNotOptimize(M.Session.typeCheck(P, M.Ctx.getInt()));
}
BENCHMARK(BM_SessionTypeCheck);

static void BM_SessionBoundsCheck(benchmark::State &State) {
  MicroState &M = MicroState::get();
  Bounds B = Bounds::forObject(M.IntArray, 400);
  char *P = static_cast<char *>(M.IntArray) + 64;
  for (auto _ : State)
    M.Session.boundsCheck(P, 4, B);
}
BENCHMARK(BM_SessionBoundsCheck);

//===----------------------------------------------------------------------===//
// bounds operations
//===----------------------------------------------------------------------===//

static void BM_BoundsCheck(benchmark::State &State) {
  MicroState &M = MicroState::get();
  Bounds B = Bounds::forObject(M.IntArray, 400);
  char *P = static_cast<char *>(M.IntArray) + 64;
  for (auto _ : State)
    M.RT.boundsCheck(P, 4, B);
}
BENCHMARK(BM_BoundsCheck);

static void BM_BoundsNarrow(benchmark::State &State) {
  MicroState &M = MicroState::get();
  Bounds B = Bounds::forObject(M.TObject, 24);
  char *Field = static_cast<char *>(M.TObject) + 4;
  for (auto _ : State)
    benchmark::DoNotOptimize(M.RT.boundsNarrow(B, Field, 20));
}
BENCHMARK(BM_BoundsNarrow);

static void BM_BoundsGet(benchmark::State &State) {
  MicroState &M = MicroState::get();
  char *P = static_cast<char *>(M.IntArray) + 40;
  for (auto _ : State)
    benchmark::DoNotOptimize(M.RT.boundsGet(P));
}
BENCHMARK(BM_BoundsGet);

//===----------------------------------------------------------------------===//
// Allocation
//===----------------------------------------------------------------------===//

static void BM_TypedAllocFree(benchmark::State &State) {
  MicroState &M = MicroState::get();
  for (auto _ : State) {
    void *P = M.RT.allocate(64, M.Ctx.getInt());
    benchmark::DoNotOptimize(P);
    M.RT.deallocate(P);
  }
}
BENCHMARK(BM_TypedAllocFree);

static void BM_PlainMallocFree(benchmark::State &State) {
  for (auto _ : State) {
    void *P = std::malloc(64);
    benchmark::DoNotOptimize(P);
    std::free(P);
  }
}
BENCHMARK(BM_PlainMallocFree);

BENCHMARK_MAIN();
