//===- bench/micro_runtime.cpp - Runtime micro benchmarks -----------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Micro benchmarks for the runtime primitives that Figure 8's overheads
/// decompose into:
///
///  * type_check against primitive, record-interior and legacy pointers
///    (the hot path of rules (a)-(d)) — these run through the
///    site-indexed inline cache, like all production checks;
///  * the cached fast path vs. the uncached reference slow path on the
///    same probe, plus the forced-miss worst case — the PR-3 ablation;
///  * the layout hash table probe vs. a linear scan over the same
///    entries — the ablation justifying the Section 5 "O(1) hash table
///    lookup" design;
///  * the char[] coercion's second lookup (Section 5);
///  * bounds_check / bounds_narrow / bounds_get;
///  * typed allocation vs. plain malloc (META header + type binding
///    cost);
///  * the full SPEC workload mix under the Full policy, reporting the
///    type-check fast-path hit rate as a benchmark counter (lands in
///    --benchmark_out JSON for the CI perf artifacts);
///  * the MiniC SPEC mix on both execution engines (--engine=tree|
///    bytecode selects one), with the paired bytecode_speedup_x
///    counter CI gates at >= 2x the tree-walker.
///
/// All numbers here are SINGLE-THREADED: one session, one thread, no
/// contention — the per-check floor, not the scaling story. For
/// throughput under concurrent load (sharded SessionPool vs a shared
/// session at 1/2/4/8 threads) see bench/mt_throughput.cpp.
///
//===----------------------------------------------------------------------===//

#include "bytecode/VM.h"
#include "core/Effective.h"
#include "instrument/Pipeline.h"
#include "interp/Interp.h"
#include "workloads/Workload.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <vector>

using namespace effective;

namespace {

/// Benchmark fixture state: a private sanitizer session plus the
/// paper's Example 1/2 types, built once. The primitive benchmarks go
/// straight at the session's Runtime; the BM_Session* ones measure the
/// policy-dispatch layer the public API adds on top.
struct MicroState {
  Sanitizer Session;
  TypeContext &Ctx;
  Runtime &RT;
  RecordType *S;
  RecordType *T;
  void *IntArray;   // int[100]
  void *TObject;    // struct T
  void *CharArray;  // char[64]
  int Local = 0;    // A legacy (host stack) location.

  MicroState()
      : Session(countingOptions()), Ctx(Session.types()),
        RT(Session.runtime()) {
    S = Ctx.createRecord(TypeKind::Struct, "S");
    FieldInfo SFields[] = {
        {"a", Ctx.getArray(Ctx.getInt(), 3), 0, false},
        {"s", Ctx.getPointer(Ctx.getChar()), 12, false},
    };
    Ctx.defineRecord(S, SFields, 20, 4);
    T = Ctx.createRecord(TypeKind::Struct, "T");
    FieldInfo TFields[] = {
        {"f", Ctx.getFloat(), 0, false},
        {"t", S, 4, false},
    };
    Ctx.defineRecord(T, TFields, 24, 4);

    IntArray = RT.allocate(100 * sizeof(int), Ctx.getInt());
    TObject = RT.allocate(24, T);
    CharArray = RT.allocate(64, Ctx.getChar());
  }

  static SessionOptions countingOptions() {
    SessionOptions Options;
    Options.Reporter.Mode = ReportMode::Count;
    return Options;
  }

  static MicroState &get() {
    static MicroState State;
    return State;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// type_check
//===----------------------------------------------------------------------===//

static void BM_TypeCheck_PrimitiveArray(benchmark::State &State) {
  MicroState &M = MicroState::get();
  char *P = static_cast<char *>(M.IntArray) + 40;
  for (auto _ : State)
    benchmark::DoNotOptimize(M.RT.typeCheck(P, M.Ctx.getInt()));
}
BENCHMARK(BM_TypeCheck_PrimitiveArray);

static void BM_TypeCheck_RecordInterior(benchmark::State &State) {
  // Example 5: q = p + 12 inside struct T, checked as int[].
  MicroState &M = MicroState::get();
  char *P = static_cast<char *>(M.TObject) + 12;
  for (auto _ : State)
    benchmark::DoNotOptimize(M.RT.typeCheck(P, M.Ctx.getInt()));
}
BENCHMARK(BM_TypeCheck_RecordInterior);

static void BM_TypeCheck_RecordMismatch(benchmark::State &State) {
  // The failing probe (counting mode: no log formatting on this path).
  MicroState &M = MicroState::get();
  char *P = static_cast<char *>(M.TObject) + 12;
  for (auto _ : State)
    benchmark::DoNotOptimize(M.RT.typeCheck(P, M.Ctx.getDouble()));
}
BENCHMARK(BM_TypeCheck_RecordMismatch);

static void BM_TypeCheck_CharCoercionSecondLookup(benchmark::State &State) {
  // A char[] allocation probed as int[]: the first lookup misses, the
  // paper's second (char) lookup hits — the double-lookup cost.
  MicroState &M = MicroState::get();
  char *P = static_cast<char *>(M.CharArray) + 8;
  for (auto _ : State)
    benchmark::DoNotOptimize(M.RT.typeCheck(P, M.Ctx.getInt()));
}
BENCHMARK(BM_TypeCheck_CharCoercionSecondLookup);

static void BM_TypeCheck_LegacyPointer(benchmark::State &State) {
  // Host-stack pointer: base(p) fails fast, wide bounds returned.
  MicroState &M = MicroState::get();
  for (auto _ : State)
    benchmark::DoNotOptimize(M.RT.typeCheck(&M.Local, M.Ctx.getInt()));
}
BENCHMARK(BM_TypeCheck_LegacyPointer);

//===----------------------------------------------------------------------===//
// Site-cache ablation: hit vs. forced miss vs. uncached reference
//===----------------------------------------------------------------------===//

static void BM_TypeCheck_SiteCacheHit(benchmark::State &State) {
  // A monomorphic site: after the first fill every probe is a pure
  // fast-path hit (meta fetch + key compare + cached-bounds rebuild).
  MicroState &M = MicroState::get();
  char *P = static_cast<char *>(M.TObject) + 12;
  const TypeInfo *Int = M.Ctx.getInt();
  for (auto _ : State)
    benchmark::DoNotOptimize(M.RT.typeCheck(P, Int, SiteId(1)));
}
BENCHMARK(BM_TypeCheck_SiteCacheHit);

static void BM_TypeCheck_SiteCachePolymorphic2Way(benchmark::State &State) {
  // Two static types alternating through ONE site: with the 2-way
  // set-associative cache both resolutions stay resident, so this runs
  // at hit speed (the direct-mapped cache ping-ponged here at ~3.5x).
  MicroState &M = MicroState::get();
  char *P = static_cast<char *>(M.TObject) + 12; // int[] inside T.t.a
  char *Q = static_cast<char *>(M.TObject) + 4;  // struct S at T.t
  const TypeInfo *Int = M.Ctx.getInt();
  for (auto _ : State) {
    benchmark::DoNotOptimize(M.RT.typeCheck(P, Int, SiteId(2)));
    benchmark::DoNotOptimize(M.RT.typeCheck(Q, M.S, SiteId(2)));
  }
}
BENCHMARK(BM_TypeCheck_SiteCachePolymorphic2Way);

static void BM_TypeCheck_SiteCacheForcedMiss(benchmark::State &State) {
  // THREE resolutions fighting over one 2-way set: every check misses,
  // refills, and evicts the oldest way — the beyond-associativity
  // worst case (slow path + fill on top of the Figure 6 probe), kept
  // as the regression reference for the miss cost.
  MicroState &M = MicroState::get();
  char *P = static_cast<char *>(M.TObject) + 12; // int[] inside T.t.a
  char *Q = static_cast<char *>(M.TObject) + 4;  // struct S at T.t
  char *R = static_cast<char *>(M.TObject);      // float at T.f
  const TypeInfo *Int = M.Ctx.getInt();
  const TypeInfo *Float = M.Ctx.getFloat();
  for (auto _ : State) {
    benchmark::DoNotOptimize(M.RT.typeCheck(P, Int, SiteId(2)));
    benchmark::DoNotOptimize(M.RT.typeCheck(Q, M.S, SiteId(2)));
    benchmark::DoNotOptimize(M.RT.typeCheck(R, Float, SiteId(2)));
  }
}
BENCHMARK(BM_TypeCheck_SiteCacheForcedMiss);

static void BM_TypeCheck_Uncached(benchmark::State &State) {
  // The same probe as BM_TypeCheck_SiteCacheHit through the reference
  // slow path (never reads or fills the cache) — the pre-PR-3 cost,
  // and the baseline for the cached-vs-uncached speedup.
  MicroState &M = MicroState::get();
  char *P = static_cast<char *>(M.TObject) + 12;
  const TypeInfo *Int = M.Ctx.getInt();
  for (auto _ : State)
    benchmark::DoNotOptimize(M.RT.typeCheckUncached(P, Int));
}
BENCHMARK(BM_TypeCheck_Uncached);

//===----------------------------------------------------------------------===//
// SPEC workload mix: fast-path hit rate under full instrumentation
//===----------------------------------------------------------------------===//

static void BM_SpecMix_TypeCheckHitRate(benchmark::State &State) {
  // All 19 SPEC2006 stand-in kernels under the Full policy against one
  // fresh session; CheckedPtr input/cast events reach the runtime
  // through type-derived pseudo-sites. The hit_rate_pct counter is the
  // acceptance metric: fast-path hits / (hits + misses), in percent.
  SessionOptions Options;
  Options.Reporter.Mode = ReportMode::Count;
  Sanitizer Session(TypeContext::global(), Options);
  SanitizerScope Scope(Session);
  Runtime &RT = Session.runtime();
  uint64_t Sink = 0;
  for (auto _ : State) {
    for (const workloads::Workload &W : workloads::specWorkloads())
      Sink += W.RunFull(RT, /*Scale=*/1);
  }
  benchmark::DoNotOptimize(Sink);
  auto C = RT.counters().snapshot();
  double Resolved =
      static_cast<double>(C.TypeCheckCacheHits + C.TypeCheckCacheMisses);
  State.counters["hit_rate_pct"] =
      Resolved ? 100.0 * static_cast<double>(C.TypeCheckCacheHits) / Resolved
               : 0.0;
  State.counters["type_checks"] = static_cast<double>(C.TypeChecks);
  State.counters["cache_hits"] =
      static_cast<double>(C.TypeCheckCacheHits);
  State.counters["cache_misses"] =
      static_cast<double>(C.TypeCheckCacheMisses);
}
BENCHMARK(BM_SpecMix_TypeCheckHitRate)->Unit(benchmark::kMillisecond);

//===----------------------------------------------------------------------===//
// Layout table probe vs. linear scan (design ablation)
//===----------------------------------------------------------------------===//

static void BM_LayoutLookup_HashProbe(benchmark::State &State) {
  MicroState &M = MicroState::get();
  const LayoutTable &Table = M.T->layout();
  const TypeInfo *Int = M.Ctx.getInt();
  for (auto _ : State)
    benchmark::DoNotOptimize(Table.lookup(Int, 12));
}
BENCHMARK(BM_LayoutLookup_HashProbe);

static void BM_LayoutLookup_LinearScan(benchmark::State &State) {
  // What type_check would cost without the hash index: scan all
  // entries applying the tie-breaking rules (Figure 6 lines 17-21 done
  // naively).
  MicroState &M = MicroState::get();
  const LayoutTable &Table = M.T->layout();
  const TypeInfo *Int = M.Ctx.getInt();
  for (auto _ : State) {
    const LayoutEntry *Best = nullptr;
    for (const LayoutEntry &E : Table.entries()) {
      if (E.Key != Int || E.Offset != 12)
        continue;
      if (!Best || E.width() > Best->width())
        Best = &E;
    }
    benchmark::DoNotOptimize(Best);
  }
}
BENCHMARK(BM_LayoutLookup_LinearScan);

//===----------------------------------------------------------------------===//
// Session-dispatch overhead (the public API's policy switch)
//===----------------------------------------------------------------------===//

static void BM_SessionTypeCheck(benchmark::State &State) {
  // Same probe as BM_TypeCheck_RecordInterior, but through the
  // Sanitizer session — the delta is the policy-dispatch cost.
  MicroState &M = MicroState::get();
  char *P = static_cast<char *>(M.TObject) + 12;
  for (auto _ : State)
    benchmark::DoNotOptimize(M.Session.typeCheck(P, M.Ctx.getInt()));
}
BENCHMARK(BM_SessionTypeCheck);

static void BM_SessionBoundsCheck(benchmark::State &State) {
  MicroState &M = MicroState::get();
  Bounds B = Bounds::forObject(M.IntArray, 400);
  char *P = static_cast<char *>(M.IntArray) + 64;
  for (auto _ : State)
    M.Session.boundsCheck(P, 4, B);
}
BENCHMARK(BM_SessionBoundsCheck);

//===----------------------------------------------------------------------===//
// bounds operations
//===----------------------------------------------------------------------===//

static void BM_BoundsCheck(benchmark::State &State) {
  MicroState &M = MicroState::get();
  Bounds B = Bounds::forObject(M.IntArray, 400);
  char *P = static_cast<char *>(M.IntArray) + 64;
  for (auto _ : State)
    M.RT.boundsCheck(P, 4, B);
}
BENCHMARK(BM_BoundsCheck);

static void BM_BoundsNarrow(benchmark::State &State) {
  MicroState &M = MicroState::get();
  Bounds B = Bounds::forObject(M.TObject, 24);
  char *Field = static_cast<char *>(M.TObject) + 4;
  for (auto _ : State)
    benchmark::DoNotOptimize(M.RT.boundsNarrow(B, Field, 20));
}
BENCHMARK(BM_BoundsNarrow);

static void BM_BoundsGet(benchmark::State &State) {
  MicroState &M = MicroState::get();
  char *P = static_cast<char *>(M.IntArray) + 40;
  for (auto _ : State)
    benchmark::DoNotOptimize(M.RT.boundsGet(P));
}
BENCHMARK(BM_BoundsGet);

//===----------------------------------------------------------------------===//
// Allocation
//===----------------------------------------------------------------------===//

static void BM_TypedAllocFree(benchmark::State &State) {
  MicroState &M = MicroState::get();
  for (auto _ : State) {
    void *P = M.RT.allocate(64, M.Ctx.getInt());
    benchmark::DoNotOptimize(P);
    M.RT.deallocate(P);
  }
}
BENCHMARK(BM_TypedAllocFree);

static void BM_PlainMallocFree(benchmark::State &State) {
  for (auto _ : State) {
    void *P = std::malloc(64);
    benchmark::DoNotOptimize(P);
    std::free(P);
  }
}
BENCHMARK(BM_PlainMallocFree);

//===----------------------------------------------------------------------===//
// Execution engines: bytecode VM vs. tree-walking reference
//===----------------------------------------------------------------------===//

namespace {

/// The MiniC SPEC mix: check-dense kernels (matmul bounds checks, list
/// traversal input type checks, struct-churn casts) compiled ONCE
/// under the default instrumentation pipeline and run by both engines
/// against the same session. The engines execute identical check
/// sequences (tests/bytecode_test.cpp enforces it), so the paired
/// ratio isolates pure dispatch + frame overhead — the cost the
/// tree-walker adds on top of the now-cheap checks.
constexpr const char *MiniCSpecMix = R"(
struct cell { long weight; struct cell *next; };

long matmul(long *a, long *b, long *c, int n) {
  int i; int j; int k;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      long acc = 0;
      for (k = 0; k < n; k = k + 1)
        acc = acc + a[i * n + k] * b[k * n + j];
      c[i * n + j] = acc;
    }
  }
  return c[(n - 1) * n + (n - 1)];
}

long traverse(struct cell *head) {
  long acc = 0;
  while (head != NULL) {
    acc = acc + head->weight;
    head = head->next;
  }
  return acc;
}

int main() {
  int n = 16;
  long *a = (long *)malloc(n * n * sizeof(long));
  long *b = (long *)malloc(n * n * sizeof(long));
  long *c = (long *)malloc(n * n * sizeof(long));
  int i;
  for (i = 0; i < n * n; i = i + 1) {
    a[i] = i % 7;
    b[i] = i % 5;
  }
  long m = matmul(a, b, c, n);

  struct cell *head = NULL;
  for (i = 0; i < 64; i = i + 1) {
    struct cell *fresh = (struct cell *)malloc(sizeof(struct cell));
    fresh->weight = i;
    fresh->next = head;
    head = fresh;
  }
  long t = 0;
  for (i = 0; i < 50; i = i + 1)
    t = t + traverse(head);
  while (head != NULL) {
    struct cell *next = head->next;
    free(head);
    head = next;
  }
  free(a); free(b); free(c);
  return (int)((m + t) % 97);
}
)";

/// Compiled once; both engine benchmarks share the session so checks
/// resolve through the same inline caches.
struct EngineState {
  Sanitizer Session;
  instrument::CompileResult Compiled;

  EngineState() : Session(MicroState::countingOptions()) {
    DiagnosticEngine Diags;
    Compiled = instrument::compileMiniC(MiniCSpecMix, Session.types(), Diags,
                                        instrument::InstrumentOptions());
    if (!Compiled.M || !Compiled.BC) {
      Diags.print(stderr, "<micro>");
      std::abort();
    }
  }

  static EngineState &get() {
    static EngineState State;
    return State;
  }
};

void BM_MiniCSpecMix_TreeWalker(benchmark::State &State) {
  EngineState &E = EngineState::get();
  for (auto _ : State) {
    interp::RunResult R = interp::run(*E.Compiled.M, E.Session);
    benchmark::DoNotOptimize(R.ExitCode);
  }
}

void BM_MiniCSpecMix_Bytecode(benchmark::State &State) {
  EngineState &E = EngineState::get();
  for (auto _ : State) {
    interp::RunResult R = bytecode::run(*E.Compiled.BC, E.Session);
    benchmark::DoNotOptimize(R.ExitCode);
  }
}

/// The acceptance metric: each iteration runs BOTH engines
/// back-to-back on the same program and session, so runner drift
/// cancels out of the ratio (the pairing trick of bench/obs_overhead).
/// bytecode_speedup_x = tree-walker time / VM time; CI gates it >= 2.
void BM_MiniCSpecMix_EngineSpeedup(benchmark::State &State) {
  EngineState &E = EngineState::get();
  double TreeSec = 0, BcSec = 0;
  for (auto _ : State) {
    // Each engine gets an untimed warm-up run before its timed run:
    // the two dispatch loops compete for the same branch-target
    // buffer, and timing a cold loop would charge the engine for the
    // other engine's predictor pollution rather than its own cost.
    interp::RunResult W0 = interp::run(*E.Compiled.M, E.Session);
    auto T0 = std::chrono::steady_clock::now();
    interp::RunResult RT = interp::run(*E.Compiled.M, E.Session);
    auto T1 = std::chrono::steady_clock::now();
    interp::RunResult W1 = bytecode::run(*E.Compiled.BC, E.Session);
    auto T2 = std::chrono::steady_clock::now();
    interp::RunResult RB = bytecode::run(*E.Compiled.BC, E.Session);
    auto T3 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(W0.ExitCode + RT.ExitCode + W1.ExitCode +
                             RB.ExitCode);
    TreeSec += std::chrono::duration<double>(T1 - T0).count();
    BcSec += std::chrono::duration<double>(T3 - T2).count();
  }
  State.counters["bytecode_speedup_x"] = BcSec ? TreeSec / BcSec : 0.0;
}

} // namespace

//===----------------------------------------------------------------------===//
// main: --engine=tree|bytecode selects which engine benchmarks run
//===----------------------------------------------------------------------===//

int main(int argc, char **argv) {
  // --engine restricts the MiniC engine benchmarks (the paired-speedup
  // benchmark needs both engines, so it only registers in the default
  // both-engines mode). Every other micro benchmark is engine-agnostic
  // and always runs; narrow further with --benchmark_filter.
  bool Tree = true, Bytecode = true;
  std::vector<char *> Args;
  Args.push_back(argv[0]);
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--engine=tree") == 0)
      Bytecode = false;
    else if (std::strcmp(argv[I], "--engine=bytecode") == 0)
      Tree = false;
    else
      Args.push_back(argv[I]);
  }
  if (!Tree && !Bytecode) {
    std::fprintf(stderr, "--engine=tree and --engine=bytecode conflict\n");
    return 2;
  }
  if (Tree)
    benchmark::RegisterBenchmark("BM_MiniCSpecMix_TreeWalker",
                                 BM_MiniCSpecMix_TreeWalker)
        ->Unit(benchmark::kMillisecond);
  if (Bytecode)
    benchmark::RegisterBenchmark("BM_MiniCSpecMix_Bytecode",
                                 BM_MiniCSpecMix_Bytecode)
        ->Unit(benchmark::kMillisecond);
  if (Tree && Bytecode)
    benchmark::RegisterBenchmark("BM_MiniCSpecMix_EngineSpeedup",
                                 BM_MiniCSpecMix_EngineSpeedup)
        ->Unit(benchmark::kMillisecond);

  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
