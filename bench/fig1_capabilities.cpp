//===- bench/fig1_capabilities.cpp - Reproduces Figure 1 ------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 1 of the paper: the capability matrix of
/// sanitizers against type and memory errors. Each row is a sanitizer
/// model run against the error-scenario suite; cells show Yes / Partial
/// / - per error class, with the per-scenario detail below.
///
//===----------------------------------------------------------------------===//

#include "baselines/ErrorSuite.h"

#include <cstdio>
#include <map>
#include <string>
#include <vector>

using namespace effective;
using namespace effective::baselines;

int main() {
  std::printf("==============================================================="
              "=====\n");
  std::printf("Figure 1: Summary of sanitizers and capabilities against type\n"
              "and memory errors (reproduction)\n");
  std::printf("==============================================================="
              "=====\n\n");

  std::printf("%-22s %-10s %-10s %-10s %-10s %-10s %s\n", "Sanitizer",
              "Types", "Bounds", "UAF", "Stack", "Global", "FalsePos");
  std::printf("%-22s %-10s %-10s %-10s %-10s %-10s %s\n", "---------",
              "-----", "------", "---", "-----", "------", "--------");

  std::vector<std::vector<ScenarioOutcome>> AllDetails;
  for (ModelKind Kind : AllModelKinds) {
    std::vector<ScenarioOutcome> Details;
    MatrixRow Row = evaluateModel(Kind, &Details);
    AllDetails.push_back(Details);
    std::printf("%-22s %-10s %-10s %-10s %-10s %-10s %u\n",
                modelKindName(Kind),
                capabilityMark(Row.typesCapability()),
                capabilityMark(Row.boundsCapability()),
                capabilityMark(Row.temporalCapability()),
                capabilityMark(Row.stackCapability()),
                capabilityMark(Row.globalCapability()),
                Row.ControlFalsePositives);
  }

  std::printf("\nCaveats reproduced (see paper Figure 1 footnotes):\n");
  std::printf(" *  type tools: only a subset of explicit C++ casts\n");
  std::printf(" ^  libcrunch: only explicit C casts\n");
  std::printf(" +  LowFat/Baggy/ASan: allocation bounds only\n");
  std::printf(" #  ASan: use-after-free but not reuse-after-free\n");
  std::printf(" $  EffectiveSan: reuse-after-free for different types "
              "only\n");

  std::printf("\nPer-scenario detail (x = detected):\n\n");
  std::printf("%-28s", "scenario \\ tool");
  for (ModelKind Kind : AllModelKinds)
    std::printf(" %.4s", modelKindName(Kind));
  std::printf("\n");
  const std::vector<Scenario> &Suite = errorSuite();
  for (size_t SI = 0; SI < Suite.size(); ++SI) {
    std::printf("%-28s", Suite[SI].Id);
    for (size_t MI = 0; MI < AllDetails.size(); ++MI)
      std::printf(" %.4s", AllDetails[MI][SI].Detected ? " x  " : " .  ");
    std::printf("\n");
  }

  std::printf("\nScenario key:\n");
  for (const Scenario &S : Suite)
    std::printf("  %-26s [%s] %s\n", S.Id, errorClassName(S.Class),
                S.Summary);
  return 0;
}
