//===- bench/fig8_timings.cpp - Reproduces Figure 8 -----------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 8 of the paper: per-benchmark wall-clock time for
/// the uninstrumented baseline and the three EffectiveSan variants,
/// plus geometric-mean overheads (paper: full 288%, bounds 115%,
/// type 49%).
///
/// Timings are SINGLE-THREADED (one session per run, like the paper's
/// SPEC methodology). Multi-thread scaling of the runtime itself is
/// bench/mt_throughput.cpp's job.
///
/// Usage: fig8_timings [scale] [reps]   (defaults 4, 3)
///
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include <cmath>
#include <cstdlib>

using namespace effective;
using namespace effective::workloads;

namespace {

/// Best-of-N timing for one (workload, policy) pair.
double bestSeconds(const Workload &W, PolicyKind Kind, unsigned Scale,
                   unsigned Reps) {
  double Best = 1e30;
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    RunStats Stats = runWorkload(W, Kind, Scale);
    if (Stats.Seconds < Best)
      Best = Stats.Seconds;
  }
  return Best;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 16;
  unsigned Reps = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 3;
  if (Scale == 0)
    Scale = 1;
  if (Reps == 0)
    Reps = 1;

  std::printf("==============================================================="
              "=========\n");
  std::printf("Figure 8: SPEC2006 stand-in timings (seconds; scale=%u, "
              "best of %u; single-threaded —\nsee mt_throughput for "
              "multi-thread scaling)\n",
              Scale, Reps);
  std::printf("==============================================================="
              "=========\n\n");
  std::printf("%-12s %10s %10s %10s %10s | %8s %8s %8s\n", "Benchmark",
              "Uninstr", "Type", "Bounds", "Full", "ov.type", "ov.bnds",
              "ov.full");

  double LogSum[3] = {0, 0, 0};
  unsigned Counted = 0;
  for (const Workload &W : specWorkloads()) {
    double None = bestSeconds(W, PolicyKind::None, Scale, Reps);
    double Type = bestSeconds(W, PolicyKind::Type, Scale, Reps);
    double Bounds = bestSeconds(W, PolicyKind::Bounds, Scale, Reps);
    double Full = bestSeconds(W, PolicyKind::Full, Scale, Reps);
    double OvType = Type / None, OvBounds = Bounds / None,
           OvFull = Full / None;
    std::printf("%-12s %10.3f %10.3f %10.3f %10.3f | %7.2fx %7.2fx "
                "%7.2fx\n",
                W.Info.Name, None, Type, Bounds, Full, OvType, OvBounds,
                OvFull);
    LogSum[0] += std::log(OvType);
    LogSum[1] += std::log(OvBounds);
    LogSum[2] += std::log(OvFull);
    ++Counted;
  }

  double GeoType = std::exp(LogSum[0] / Counted);
  double GeoBounds = std::exp(LogSum[1] / Counted);
  double GeoFull = std::exp(LogSum[2] / Counted);
  std::printf("\nGeometric-mean overheads (1.00x = baseline):\n");
  std::printf("  EffectiveSan-type:   %5.2fx (+%4.0f%%)   paper: +49%%\n",
              GeoType, (GeoType - 1) * 100);
  std::printf("  EffectiveSan-bounds: %5.2fx (+%4.0f%%)   paper: +115%%\n",
              GeoBounds, (GeoBounds - 1) * 100);
  std::printf("  EffectiveSan (full): %5.2fx (+%4.0f%%)   paper: +288%%\n",
              GeoFull, (GeoFull - 1) * 100);
  std::printf("\nExpected shape: full > bounds > type > 1.0x, with full "
              "instrumentation\nroughly 2-4x and the ordering strict.\n");
  return 0;
}
