//===- bench/alloc_throughput.cpp - Lock-free allocator throughput --------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Throughput of the low-fat allocator's lock-free fast path: the
/// per-thread size-class magazines, the Treiber free lists + atomic
/// bump pointers behind them, and shard work stealing.
///
/// Three mixes:
///
///  * churn-sharded — the session-pool model: NumShards == threads,
///    thread T allocates/frees on shard T with a 16-block live window
///    across several size classes. Steady state is a TLS magazine
///    pop/push: no mutex, no shared RMW beyond the stats counters.
///
///  * churn-shared  — the adversarial case: ONE shard hammered by all
///    threads. Pre-PR this serialized on the per-(class, shard) mutex;
///    now the threads share only the lock-free refill/flush paths (and
///    mostly not even those, thanks to the magazines).
///
///  * steal — a deliberately tiny arena (64 MiB regions, 4 shards)
///    where one shard exhausts its slice of a large size class: with
///    EnableWorkStealing the overflow is served from sibling slices
///    with full base(p)/size(p) fidelity and ZERO legacy fallbacks.
///
/// Each churn mix runs with magazines enabled (the default) and
/// disabled (MagazineSize = 0 — the bare lock-free path), at 1/2/4/8
/// threads. The run also reports the magazine hit rate and the
/// steal-mix fallback counts; CI gates on hit rate >= 95% and zero
/// exhaust fallbacks while stealing (see .github/workflows/ci.yml).
///
/// Usage: alloc_throughput [iters_per_thread] [--json=FILE]
///
///   iters_per_thread  default 400000; CI smoke mode passes a small
///                     count so the job finishes in seconds
///   --json=FILE       emit the measured rows + gate counters as a
///                     machine-readable JSON document (the BENCH_alloc
///                     artifact uploaded next to BENCH_micro/BENCH_mt)
///
//===----------------------------------------------------------------------===//

#include "lowfat/LowFatHeap.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

using namespace effective;
using namespace effective::lowfat;

namespace {

/// One worker's churn: a sliding window of live blocks over several
/// size classes (32..~1·5K bytes), one alloc + one free per iteration
/// in the steady state.
void churnWorker(LowFatHeap &Heap, unsigned Shard, unsigned Iters) {
  constexpr size_t Window = 16;
  void *Live[Window] = {};
  size_t Slot = 0;
  for (unsigned I = 0; I < Iters; ++I) {
    size_t Size = 32 + (I % 48) * 32; // 32..1536 B: several classes.
    void *P = Heap.allocateOnShard(Size, Shard);
    static_cast<char *>(P)[0] = static_cast<char>(I); // Touch it.
    if (Live[Slot])
      Heap.deallocate(Live[Slot]);
    Live[Slot] = P;
    Slot = (Slot + 1) % Window;
  }
  for (void *P : Live)
    if (P)
      Heap.deallocate(P);
  Heap.flushThreadCache(); // Make TLS-cached state visible to stats().
}

template <typename Fn> double timeThreads(unsigned Threads, Fn &&Body) {
  std::vector<std::thread> Workers;
  Workers.reserve(Threads);
  auto Start = std::chrono::steady_clock::now();
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&Body, T] { Body(T); });
  for (std::thread &W : Workers)
    W.join();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

struct Sample {
  const char *Mix;
  const char *Config;
  unsigned Threads;
  double MopsPerSec = 0; // Million alloc+free pairs per second.
};

HeapOptions churnOptions(unsigned Shards, unsigned MagazineSize) {
  HeapOptions Options;
  Options.NumShards = Shards;
  Options.MagazineSize = MagazineSize;
  return Options;
}

Sample runChurn(const char *Mix, const char *Config, bool Sharded,
                unsigned MagazineSize, unsigned Threads, unsigned Iters,
                HeapStats *StatsOut = nullptr) {
  LowFatHeap Heap(churnOptions(Sharded ? Threads : 1, MagazineSize));
  double Secs = timeThreads(Threads, [&](unsigned T) {
    churnWorker(Heap, Sharded ? T : 0, Iters);
  });
  if (StatsOut)
    *StatsOut = Heap.stats();
  Sample S{Mix, Config, Threads, 0};
  S.MopsPerSec = static_cast<double>(Threads) * Iters / Secs / 1e6;
  return S;
}

/// The steal mix: exhaust one shard's slice of the 1 MiB class in a
/// 64 MiB-region, 16-shard heap (4 blocks per slice) and keep
/// allocating — with stealing on, the overflow must come from sibling
/// slices as genuine low-fat pointers, with zero legacy fallbacks.
HeapStats runStealMix(bool Stealing, unsigned *LowFatServed) {
  HeapOptions Options;
  Options.RegionSize = 1ull << 26;
  Options.NumShards = 16;
  Options.EnableWorkStealing = Stealing;
  LowFatHeap Heap(Options);

  constexpr size_t BlockSize = 1u << 20;
  constexpr unsigned Blocks = 12; // 3 slices' worth beyond shard 0's 4.
  unsigned Served = 0;
  std::vector<void *> Ptrs;
  for (unsigned I = 0; I < Blocks; ++I) {
    void *P = Heap.allocateOnShard(BlockSize, 0);
    std::memset(P, 0x5a, 64);
    if (Heap.isLowFat(P))
      ++Served;
    Ptrs.push_back(P);
  }
  HeapStats Stats = Heap.stats();
  for (void *P : Ptrs)
    Heap.deallocate(P);
  if (LowFatServed)
    *LowFatServed = Served;
  return Stats;
}

void printRow(const Sample &S) {
  std::printf("%-14s %-11s %7u %14.2f\n", S.Mix, S.Config, S.Threads,
              S.MopsPerSec);
}

} // namespace

int main(int argc, char **argv) {
  unsigned Iters = 400000;
  const char *JsonPath = nullptr;
  for (int I = 1; I < argc; ++I) {
    if (std::strncmp(argv[I], "--json=", 7) == 0)
      JsonPath = argv[I] + 7;
    else
      Iters = static_cast<unsigned>(std::atoi(argv[I]));
  }
  if (Iters == 0)
    Iters = 1;

  std::printf("==============================================================\n"
              "Low-fat allocator throughput: TLS magazines + lock-free\n"
              "sub-arenas (%u alloc+free pairs/thread; %u hardware threads;\n"
              "M pairs/s, higher is better)\n"
              "==============================================================\n"
              "\n%-14s %-11s %7s %14s\n",
              Iters, std::thread::hardware_concurrency(), "mix", "config",
              "threads", "M pairs/s");

  const unsigned ThreadCounts[] = {1, 2, 4, 8};
  std::vector<Sample> Samples;
  HeapStats ChurnStats; // From the 8-thread sharded magazine run.
  for (bool Sharded : {true, false}) {
    const char *Mix = Sharded ? "churn-sharded" : "churn-shared";
    for (unsigned Mag : {16u, 0u}) {
      const char *Config = Mag ? "magazine" : "nomagazine";
      for (unsigned Threads : ThreadCounts) {
        bool Record = Sharded && Mag && Threads == 8;
        Sample S = runChurn(Mix, Config, Sharded, Mag, Threads, Iters,
                            Record ? &ChurnStats : nullptr);
        printRow(S);
        Samples.push_back(S);
      }
    }
  }

  // Fast-path telemetry from the 8-thread sharded magazine churn.
  uint64_t LowFatAllocs =
      ChurnStats.NumAllocs - ChurnStats.NumLegacyAllocs;
  double HitRate =
      LowFatAllocs
          ? 100.0 * static_cast<double>(ChurnStats.MagazineHits) /
                static_cast<double>(LowFatAllocs)
          : 0.0;
  std::printf("\nchurn-sharded magazine telemetry (8 threads): "
              "hit rate %.2f%% (%llu hits / %llu allocs), "
              "%llu refills, %llu legacy\n",
              HitRate, (unsigned long long)ChurnStats.MagazineHits,
              (unsigned long long)LowFatAllocs,
              (unsigned long long)ChurnStats.MagazineRefills,
              (unsigned long long)ChurnStats.NumLegacyAllocs);

  unsigned StealServed = 0, NoStealServed = 0;
  HeapStats Steal = runStealMix(/*Stealing=*/true, &StealServed);
  HeapStats NoSteal = runStealMix(/*Stealing=*/false, &NoStealServed);
  std::printf("steal mix: stealing on  -> %llu steals, %llu exhaust "
              "fallbacks, %u/12 low-fat\n"
              "           stealing off -> %llu steals, %llu exhaust "
              "fallbacks, %u/12 low-fat\n",
              (unsigned long long)Steal.Steals,
              (unsigned long long)Steal.ExhaustFallbacks, StealServed,
              (unsigned long long)NoSteal.Steals,
              (unsigned long long)NoSteal.ExhaustFallbacks,
              NoStealServed);

  if (JsonPath) {
    std::FILE *F = std::fopen(JsonPath, "w");
    if (!F) {
      std::fprintf(stderr, "alloc_throughput: cannot write %s\n",
                   JsonPath);
      return 1;
    }
    std::fprintf(F,
                 "{\n  \"bench\": \"alloc_throughput\",\n"
                 "  \"iters_per_thread\": %u,\n"
                 "  \"hardware_threads\": %u,\n  \"samples\": [\n",
                 Iters, std::thread::hardware_concurrency());
    for (size_t I = 0; I < Samples.size(); ++I) {
      const Sample &S = Samples[I];
      std::fprintf(F,
                   "    {\"mix\": \"%s\", \"config\": \"%s\", "
                   "\"threads\": %u, \"mops_per_sec\": %.3f}%s\n",
                   S.Mix, S.Config, S.Threads, S.MopsPerSec,
                   I + 1 < Samples.size() ? "," : "");
    }
    std::fprintf(
        F,
        "  ],\n"
        "  \"churn\": {\"magazine_hit_rate_pct\": %.2f, "
        "\"magazine_hits\": %llu, \"magazine_refills\": %llu, "
        "\"lowfat_allocs\": %llu, \"exhaust_fallbacks\": %llu},\n"
        "  \"steal\": {\"steals\": %llu, \"exhaust_fallbacks\": %llu, "
        "\"lowfat_served\": %u, \"blocks\": 12,\n"
        "             \"nosteal_exhaust_fallbacks\": %llu},\n"
        "  \"mutex_free_steady_state\": true\n}\n",
        HitRate, (unsigned long long)ChurnStats.MagazineHits,
        (unsigned long long)ChurnStats.MagazineRefills,
        (unsigned long long)LowFatAllocs,
        (unsigned long long)ChurnStats.ExhaustFallbacks,
        (unsigned long long)Steal.Steals,
        (unsigned long long)Steal.ExhaustFallbacks, StealServed,
        (unsigned long long)NoSteal.ExhaustFallbacks);
    std::fclose(F);
  }

  std::printf("\nmt_throughput measures the full runtime (checks + "
              "reporting) under the\nsame sharding; this bench isolates "
              "the allocator.\n");
  return 0;
}
