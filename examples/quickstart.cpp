//===- examples/quickstart.cpp - EffectiveSan in five minutes -------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Quickstart: typed allocation, dynamic type checks and (sub-)object
/// bounds — the paper's Figures 5 and 6 driven by hand. Reproduces
/// Examples 1, 2 and 5 from the paper with the Example 1 types:
///
///   struct S { int a[3]; char *s; };
///   struct T { float f; struct S t; };
///
/// Build and run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "core/Effective.h"

#include <cstdio>

using namespace effective;

// The paper's Example 1 types. EFFECTIVE_REFLECT makes the dynamic type
// (layout and all) available to the runtime.
struct S {
  int A[3];
  char *Str;
};
struct T {
  float F;
  S Sub;
};

EFFECTIVE_REFLECT(S, A, Str);
EFFECTIVE_REFLECT(T, F, Sub);

int main() {
  // One private sanitizer session: its own type context, heap,
  // counters and error log (see api/Sanitizer.h).
  Sanitizer S;
  TypeContext &Ctx = S.types();

  const TypeInfo *TType = TypeOf<T>::get(Ctx);
  const TypeInfo *IntType = Ctx.getInt();
  const TypeInfo *DoubleType = Ctx.getDouble();

  std::printf("== EffectiveSan quickstart ==\n\n");

  // Example 1: "r = (T *)malloc(sizeof(T))" — the allocation is bound
  // to dynamic type T[1].
  T *P = static_cast<T *>(S.malloc(sizeof(T), TType));
  std::printf("allocated a %s of %zu bytes; dynamic type: %s\n",
              TType->str().c_str(), sizeof(T),
              S.dynamicTypeOf(P)->str().c_str());

  // Example 5: the interior pointer q = p + 12 points into the int[3]
  // sub-object. (The paper's illustration assumes a padding-free
  // layout with Sub at offset 4; the real C++ layout aligns Sub to 8
  // because of the char* member, so the array spans [8, 20) and q
  // points at element A[1].) type_check(q, int[]) succeeds and returns
  // the bounds of the *array* sub-object.
  char *Raw = reinterpret_cast<char *>(P);
  void *Q = Raw + 12;
  Bounds B = S.typeCheck(Q, IntType);
  std::printf("\ntype_check(p+12, int[]) -> sub-object bounds "
              "[base+%td, base+%td)\n",
              reinterpret_cast<char *>(B.Lo) - Raw,
              reinterpret_cast<char *>(B.Hi) - Raw);

  // The same pointer checked against double[] is a type error: no
  // sub-object of type double lives at offset 12 (Example 5, part 2).
  std::printf("\ntype_check(p+12, double[]) — expecting a type error:\n");
  S.typeCheck(Q, DoubleType);

  // Sub-object bounds in action: P->Sub.A has bounds [8,20); writing
  // A[3] (offset 20) would clobber padding/P->Sub.Str. With the
  // returned bounds the instrumentation catches it before the write.
  std::printf("\nbounds_check(&A[3], 4 bytes) — expecting a bounds "
              "error:\n");
  S.boundsCheck(Raw + 20, sizeof(int), B);

  // Deallocation rebinds the object to the FREE type; a later check
  // reports use-after-free (Section 3's rule (h)).
  S.free(P);
  std::printf("\ntype_check after free — expecting use-after-free:\n");
  S.typeCheck(Q, IntType);

  std::printf("\n%llu issue(s) reported in total; see log above.\n",
              static_cast<unsigned long long>(S.issuesFound()));
  return 0;
}
