/*===- examples/effsan_demo.c - The C ABI in action ------------------------===
 *
 * Part of the EffectiveSan reproduction. Released under the MIT license.
 *
 *===----------------------------------------------------------------------===
 *
 * The paper's account example (struct account {int number[8]; float
 * balance;}) driven entirely through the stable C ABI of api/effsan.h:
 * two sessions in one process — a full-policy session that catches the
 * sub-object overflow, and a bounds-only session that demonstrates the
 * LowFat/ASan blind spot — plus site-attributed reports (ABI 1.3): the
 * checks carry registered sites, so the error callback receives the
 * source location, function and both type names instead of an
 * anonymous pointer (see docs/REPORT_FORMAT.md).
 *
 * This file is compiled as C (not C++); it doubles as the ABI's
 * C-cleanliness test.
 *
 * Build and run:  ./build/examples/effsan_demo
 *
 *===----------------------------------------------------------------------===*/

#include "api/effsan.h"

#include <stdio.h>

/* Site-attributed sink (ABI 1.3): fired once per deduplicated report. */
static void on_error_v2(const effsan_error_v2 *error, void *user_data) {
  int *count = (int *)user_data;
  char type_name[64];
  ++*count;
  printf("  [callback #%d] %s\n", *count, error->message);
  printf("               site=%u at %s:%u:%u in %s, allocated %s\n",
         error->site, error->file ? error->file : "?", error->line,
         error->column, error->function ? error->function : "?",
         effsan_type_name(error->alloc_type, type_name,
                          sizeof(type_name)));
}

/* Writes account digits 0..8 — one past the end of number[] — through
 * whatever session it is handed. The two hand-instrumented checks
 * register a site table first, as a compiler would, so their reports
 * carry this file's locations. */
static void write_digits(effsan_session *s) {
  effsan_type int_ty = effsan_type_primitive(s, EFFSAN_PRIM_INT);
  effsan_type float_ty = effsan_type_primitive(s, EFFSAN_PRIM_FLOAT);

  effsan_struct_builder *b = effsan_struct_begin(s, "account");
  effsan_struct_field(b, "number", effsan_type_array(s, int_ty, 8));
  effsan_struct_field(b, "balance", float_ty);
  effsan_type account_ty = effsan_struct_end(b);

  /* The check sites of this function, one entry per static check
   * below. The strings are copied; line/column point into this file. */
  effsan_site_info sites[2];
  sites[0].line = 80; /* the effsan_type_check_at call   */
  sites[0].column = 5;
  sites[0].kind = EFFSAN_CHECK_TYPE;
  sites[0].function = "write_digits";
  sites[0].static_type = int_ty;
  sites[1].line = 83; /* the effsan_bounds_check_at call */
  sites[1].column = 7;
  sites[1].kind = EFFSAN_CHECK_BOUNDS;
  sites[1].function = "write_digits";
  sites[1].static_type = int_ty;
  uint32_t base =
      effsan_site_table_register(s, "effsan_demo.c", sites, 2);

  char name[64];
  printf("  allocating one %s (%llu bytes)\n",
         effsan_type_name(account_ty, name, sizeof(name)),
         (unsigned long long)effsan_type_size(account_ty));

  int *acct = (int *)effsan_malloc(
      s, (size_t)effsan_type_size(account_ty), account_ty);

  /* The instrumentation schema by hand: type_check the pointer as
   * int[] (which narrows to the number[] sub-object), then
   * bounds_check each write — both checks sited. */
  effsan_bounds bounds = effsan_type_check_at(s, acct, int_ty, base + 0);
  int i;
  for (i = 0; i <= 8; i++) { /* off-by-one */
    effsan_bounds_check_at(s, acct + i, sizeof(int), bounds, base + 1);
    if (i < 8) /* keep the actual write in bounds */
      acct[i] = i;
  }

  printf("  site %u (the bounds_check) recorded %llu error event(s)\n",
         base + 1,
         (unsigned long long)effsan_site_error_events(s, base + 1));
  effsan_free(s, acct);
}

int main(void) {
  printf("== effsan C ABI demo (ABI version %u.%u) ==\n\n",
         effsan_abi_version() >> 16, effsan_abi_version() & 0xffff);

  /* -- Session 1: full policy, errors to a callback ------------------- */
  printf("-- full-policy session: number[8] is out of the sub-object --\n");
  effsan_options opts;
  effsan_options_init(&opts);
  opts.log_errors = 0; /* callback only */
  effsan_session *full = effsan_session_create(&opts);

  int callback_count = 0;
  effsan_set_error_callback_v2(full, on_error_v2, &callback_count);
  write_digits(full);

  effsan_counters counters;
  effsan_get_counters(full, &counters);
  printf("  checks: %llu type, %llu bounds; issues: %llu\n",
         (unsigned long long)counters.type_checks,
         (unsigned long long)counters.bounds_checks,
         (unsigned long long)counters.issues_found);

  /* -- Session 2: bounds-only policy, same program -------------------- */
  printf("\n-- bounds-only session: the write stays inside the "
         "allocation, nothing fires --\n");
  opts.policy = EFFSAN_POLICY_BOUNDS_ONLY;
  effsan_session *bounds_only = effsan_session_create(&opts);
  write_digits(bounds_only);

  effsan_get_counters(bounds_only, &counters);
  printf("  checks: %llu bounds_get, %llu bounds; issues: %llu "
         "(the allocation-bounds blind spot)\n",
         (unsigned long long)counters.bounds_gets,
         (unsigned long long)counters.bounds_checks,
         (unsigned long long)counters.issues_found);

  effsan_session_destroy(bounds_only);
  effsan_session_destroy(full);

  printf("\nfull session reported %d error(s) through the callback.\n",
         callback_count);
  return 0;
}
