/*===- examples/service_demo.c - Service mode in action --------------------===
 *
 * Part of the EffectiveSan reproduction. Released under the MIT license.
 *
 *===----------------------------------------------------------------------===
 *
 * A miniature multi-tenant embedding driven entirely through the
 * effsan_service_* C ABI (1.5): worker threads serve three tenants off
 * one supervised pool while the service's background drain thread —
 * nobody here ever calls a drain function — surfaces their errors with
 * site attribution, a greedy tenant is refused and evicted at the
 * checkout gate for blowing its live-byte budget, and a hot tenant's
 * shard is degraded FULL -> BOUNDS_ONLY by the load governor and
 * restored to FULL once its burst subsides.
 *
 * This file is compiled as C (not C++); with effsan_demo.c it doubles
 * as the ABI's C-cleanliness test.
 *
 * Build and run:  ./build/examples/service_demo
 *
 *===----------------------------------------------------------------------===*/

#include "api/effsan.h"

#include <pthread.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <unistd.h>

#define CHECK(cond)                                                          \
  do {                                                                       \
    if (!(cond)) {                                                           \
      fprintf(stderr, "FAILED at line %d: %s\n", __LINE__, #cond);           \
      exit(1);                                                               \
    }                                                                        \
  } while (0)

/* The background drainer publishes reports through this sink; the
 * demo records whether site attribution survived the ring crossing. */
static pthread_mutex_t sink_lock = PTHREAD_MUTEX_INITIALIZER;
static int reports_seen = 0;
static int reports_attributed = 0;

static void on_error_v2(const effsan_error_v2 *error, void *user_data) {
  (void)user_data;
  pthread_mutex_lock(&sink_lock);
  ++reports_seen;
  if (error->file && error->line != 0 &&
      strcmp(error->file, "service_demo.c") == 0)
    ++reports_attributed;
  printf("  [drainer] %s\n",
         error->message ? error->message : "(unrendered)");
  pthread_mutex_unlock(&sink_lock);
}

/* One tenant worker: request -> checkout -> typed work (with one
 * deliberate overflow on a sited check) -> release. */
struct worker_args {
  effsan_service *svc;
  effsan_tenant tenant;
  uint32_t site; /* rebased id of this worker's bounds check */
  int requests;
};

static void *tenant_worker(void *opaque) {
  struct worker_args *args = (struct worker_args *)opaque;
  for (int i = 0; i < args->requests; ++i) {
    effsan_session *s = effsan_service_checkout(args->svc, args->tenant);
    CHECK(s != NULL);
    effsan_type int_ty = effsan_type_primitive(s, EFFSAN_PRIM_INT);
    int *p = (int *)effsan_malloc(s, 16 * sizeof(int), int_ty);
    CHECK(p != NULL);
    effsan_bounds b = effsan_bounds_get(s, p);
    p[5] = i;
    if (i == 7) /* One past the end, through the registered site. */
      effsan_bounds_check_at(s, p + 16, sizeof(int), b, args->site);
    effsan_free(s, p);
    CHECK(effsan_service_release(args->svc, args->tenant) != 0);
  }
  return NULL;
}

int main(void) {
  printf("effsan service demo (ABI %u.%u)\n",
         effsan_abi_version() >> 16, effsan_abi_version() & 0xffffu);

  /* -- A supervised pool: 3 shards, 1 ms background drain, governor
   *    tuned small enough for a demo-sized burst to trip it. ------- */
  effsan_service_options opts;
  effsan_service_options_init(&opts);
  opts.shards = 3;
  opts.log_errors = 0; /* The v2 callback is our sink. */
  opts.drain_interval_usec = 1000;
  opts.check_rate_high = 4000;
  opts.degrade_ticks = 2;
  opts.restore_ticks = 3;
  effsan_service *svc = effsan_service_create(&opts);
  CHECK(svc != NULL);
  CHECK(effsan_service_num_shards(svc) == 3);
  effsan_service_set_error_callback_v2(svc, on_error_v2, NULL);

  /* -- Site table: the workers' deliberate overflow, attributed to
   *    this file (a compiler would emit this per module). ---------- */
  effsan_tenant t1 = effsan_service_tenant_open(svc, "tenant-1", NULL);
  effsan_tenant t2 = effsan_service_tenant_open(svc, "tenant-2", NULL);
  CHECK(t1 != EFFSAN_NO_TENANT && t2 != EFFSAN_NO_TENANT);

  effsan_session *reg = effsan_service_checkout(svc, t1);
  CHECK(reg != NULL);
  effsan_site_info site;
  site.line = 78; /* the effsan_bounds_check_at call above */
  site.column = 7;
  site.kind = EFFSAN_CHECK_BOUNDS;
  site.function = "tenant_worker";
  site.static_type = NULL;
  uint32_t base =
      effsan_site_table_register(reg, "service_demo.c", &site, 1);
  CHECK(base != EFFSAN_NO_SITE);
  CHECK(effsan_service_release(svc, t1) != 0);

  /* -- Two tenant threads; their errors surface with NO manual drain
   *    anywhere in this program. ----------------------------------- */
  printf("\n[1] two tenants, background-drained sited reports:\n");
  struct worker_args w1 = {svc, t1, base, 50};
  struct worker_args w2 = {svc, t2, base, 50};
  pthread_t th1, th2;
  CHECK(pthread_create(&th1, NULL, tenant_worker, &w1) == 0);
  CHECK(pthread_create(&th2, NULL, tenant_worker, &w2) == 0);
  CHECK(pthread_join(th1, NULL) == 0);
  CHECK(pthread_join(th2, NULL) == 0);

  /* Wait for the drain thread to catch up (poll, never drain). */
  for (int spin = 0; spin < 5000; ++spin) {
    effsan_service_stats stats;
    memset(&stats, 0, sizeof(stats));
    stats.struct_size = sizeof(stats);
    effsan_service_get_stats(svc, &stats);
    if (stats.drained_events >= 2)
      break;
    usleep(1000);
  }
  pthread_mutex_lock(&sink_lock);
  CHECK(reports_seen >= 1);
  CHECK(reports_attributed >= 1); /* location survived the ring */
  pthread_mutex_unlock(&sink_lock);
  printf("      ...reports arrived with source attribution.\n");

  /* -- A greedy tenant: 4 KiB live-byte budget, 64 KiB appetite. --- */
  printf("\n[2] quota: greedy tenant evicted at the checkout gate:\n");
  effsan_tenant_quota quota;
  effsan_tenant_quota_init(&quota);
  quota.max_alloc_bytes = 4096;
  effsan_tenant greedy = effsan_service_tenant_open(svc, "greedy", &quota);
  CHECK(greedy != EFFSAN_NO_TENANT);

  effsan_session *gs = effsan_service_checkout(svc, greedy);
  CHECK(gs != NULL);
  effsan_type char_ty = effsan_type_primitive(gs, EFFSAN_PRIM_CHAR);
  void *hoard = effsan_malloc(gs, 64 * 1024, char_ty);
  CHECK(hoard != NULL);

  CHECK(effsan_service_checkout(svc, greedy) == NULL); /* refused */
  effsan_tenant_stats tstats;
  memset(&tstats, 0, sizeof(tstats));
  tstats.struct_size = sizeof(tstats);
  CHECK(effsan_service_tenant_stats(svc, greedy, &tstats) != 0);
  CHECK(tstats.status == EFFSAN_TENANT_EVICTED);
  CHECK(tstats.evict_reason == EFFSAN_EVICT_ALLOC_BYTES);
  printf("      ...refused and evicted (reason: live bytes %llu over "
         "budget %llu).\n",
         (unsigned long long)tstats.alloc_bytes,
         (unsigned long long)quota.max_alloc_bytes);

  effsan_free(gs, hoard);
  CHECK(effsan_service_release(svc, greedy) != 0);
  effsan_service_tick(svc); /* completes the eviction: slot recycled */

  /* -- Degradation: tenant-1 burns checks until the governor sheds
   *    its shard to BOUNDS_ONLY, then idles until FULL returns. ---- */
  printf("\n[3] governor: degrade under load, restore when calm:\n");
  effsan_session *hot = effsan_service_checkout(svc, t1);
  CHECK(hot != NULL);
  effsan_type int_ty = effsan_type_primitive(hot, EFFSAN_PRIM_INT);
  int *p = (int *)effsan_malloc(hot, 16 * sizeof(int), int_ty);
  CHECK(p != NULL);

  int degraded = 0;
  for (int spin = 0; spin < 5000 && !degraded; ++spin) {
    for (int i = 0; i < 2000; ++i) /* sustained pressure */
      effsan_bounds_get(hot, p);
    memset(&tstats, 0, sizeof(tstats));
    tstats.struct_size = sizeof(tstats);
    CHECK(effsan_service_tenant_stats(svc, t1, &tstats) != 0);
    degraded = tstats.policy == EFFSAN_POLICY_BOUNDS_ONLY ||
               tstats.policy == EFFSAN_POLICY_COUNT_ONLY;
  }
  CHECK(degraded);
  printf("      ...shard degraded under sustained check pressure.\n");

  int restored = 0;
  for (int spin = 0; spin < 5000 && !restored; ++spin) {
    usleep(1000); /* calm: no checks at all */
    memset(&tstats, 0, sizeof(tstats));
    tstats.struct_size = sizeof(tstats);
    CHECK(effsan_service_tenant_stats(svc, t1, &tstats) != 0);
    restored = tstats.policy == EFFSAN_POLICY_FULL;
  }
  CHECK(restored);
  printf("      ...and restored to FULL once the burst subsided.\n");

  effsan_free(hot, p);
  CHECK(effsan_service_release(svc, t1) != 0);

  /* -- Wrap up: the service's own accounting. ---------------------- */
  effsan_service_stats stats;
  memset(&stats, 0, sizeof(stats));
  stats.struct_size = sizeof(stats);
  effsan_service_get_stats(svc, &stats);
  printf("\n[4] service stats: %llu checkouts (%llu refused), "
         "%llu drain ticks, %llu events drained, %llu degrades, "
         "%llu restores\n",
         (unsigned long long)stats.checkouts_granted,
         (unsigned long long)stats.checkouts_refused,
         (unsigned long long)stats.drain_ticks,
         (unsigned long long)stats.drained_events,
         (unsigned long long)stats.policy_degrades,
         (unsigned long long)stats.policy_restores);
  CHECK(stats.checkouts_refused >= 1);
  CHECK(stats.policy_degrades >= 1);
  CHECK(stats.policy_restores >= 1);

  effsan_service_destroy(svc);
  printf("\ndemo: all service-mode checks passed\n");
  return 0;
}
