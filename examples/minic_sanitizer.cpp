//===- examples/minic_sanitizer.cpp - The sanitizer driver ----------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The compiler-driver face of the reproduction: compiles a MiniC
/// source file through the two-step pipeline (type-annotated IR, then
/// the Figure 3 instrumentation pass) and executes it on the VM over
/// the real runtime — the moral equivalent of
///
///   effective-clang -fsanitize=effective prog.c && ./a.out
///
/// Usage:
///   minic_sanitizer [options] file.mc
///     -variant=full|bounds|type|count|none   check policy (drives both
///                                      the pass and the session)
///     -emit-ir                         print instrumented IR, don't run
///     -O0                              schema-literal instrumentation
///                                      (no check optimizations)
///     -max-steps=N                     VM instruction budget
///
/// With no file argument a built-in demo program (containing one
/// sub-object overflow and one use-after-free) is compiled and run.
///
//===----------------------------------------------------------------------===//

#include "api/Sanitizer.h"
#include "instrument/Pipeline.h"
#include "interp/Interp.h"
#include "ir/Printer.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace effective;
using namespace effective::instrument;

namespace {

constexpr const char *DemoProgram = R"(
/* Demo: a list-sum kernel with two seeded errors. */
struct node { int values[4]; struct node *next; };

struct node *push(struct node *head) {
  struct node *n = (struct node *)malloc(sizeof(struct node));
  int i;
  for (i = 0; i <= 4; i = i + 1)   /* BUG 1: off-by-one into 'next' */
    n->values[i] = i;
  n->next = head;
  return n;
}

int total(struct node *xs) {
  int t = 0;
  while (xs != NULL) {
    t = t + xs->values[0];
    xs = xs->next;
  }
  return t;
}

int main() {
  struct node *head = NULL;
  int i;
  for (i = 0; i < 3; i = i + 1)
    head = push(head);
  int t = total(head);
  struct node *first = head;
  while (head != NULL) {
    struct node *next = head->next;
    free(head);
    head = next;
  }
  t = t + total(first);            /* BUG 2: use after free */
  print_int(t);
  return 0;
}
)";

void usage() {
  std::fprintf(stderr,
               "usage: minic_sanitizer "
               "[-variant=full|bounds|type|count|none] "
               "[-emit-ir] [-O0]\n                       "
               "[-max-steps=N] [file.mc]\n");
}

} // namespace

int main(int argc, char **argv) {
  InstrumentOptions BaseOpts;
  CheckPolicy Policy = CheckPolicy::Full;
  interp::RunOptions RunOpts;
  bool EmitIR = false;
  std::string Source = DemoProgram;
  std::string FileName = "<demo>";

  for (int I = 1; I < argc; ++I) {
    std::string_view Arg = argv[I];
    if (Arg == "-emit-ir") {
      EmitIR = true;
    } else if (Arg == "-O0") {
      BaseOpts.OnlyUsedPointers = false;
      BaseOpts.ElideNeverFailingChecks = false;
      BaseOpts.ElideSubsumedChecks = false;
    } else if (Arg.rfind("-variant=", 0) == 0) {
      // One CheckPolicy value drives both the instrumentation pass and
      // the runtime session below.
      std::optional<CheckPolicy> Parsed =
          parseCheckPolicy(Arg.substr(9));
      if (!Parsed) {
        usage();
        return 2;
      }
      Policy = *Parsed;
    } else if (Arg.rfind("-max-steps=", 0) == 0) {
      RunOpts.MaxSteps = std::strtoull(Arg.data() + 11, nullptr, 10);
    } else if (!Arg.empty() && Arg[0] == '-') {
      usage();
      return 2;
    } else {
      std::ifstream In{std::string(Arg)};
      if (!In) {
        std::fprintf(stderr, "error: cannot open '%s'\n", argv[I]);
        return 1;
      }
      std::ostringstream Buf;
      Buf << In.rdbuf();
      Source = Buf.str();
      FileName = std::string(Arg);
    }
  }

  // The session: a private type context and heap, logging each issue.
  SessionOptions SessionOpts;
  SessionOpts.Policy = Policy;
  SessionOpts.Reporter.Mode = ReportMode::Log;
  SessionOpts.Reporter.Stream = stderr;
  Sanitizer Session(SessionOpts);

  InstrumentOptions Opts = instrumentOptionsFor(Policy, BaseOpts);
  DiagnosticEngine Diags;
  CompileResult C =
      compileMiniC(Source, Session.types(), Diags, Opts, FileName);
  if (Diags.hasErrors() || !C.M) {
    Diags.print(stderr, FileName);
    return 1;
  }

  std::printf("== %s: compiled under %s ==\n", FileName.c_str(),
              variantName(Opts.V).data());
  std::printf("static instrumentation: %llu type_check, %llu "
              "bounds_check, %llu bounds_get, %llu narrow "
              "(%llu never-fail elided, %llu subsumed)\n",
              (unsigned long long)C.Stats.TypeChecks,
              (unsigned long long)C.Stats.BoundsChecks,
              (unsigned long long)C.Stats.BoundsGets,
              (unsigned long long)C.Stats.BoundsNarrows,
              (unsigned long long)C.Stats.ElidedNeverFail,
              (unsigned long long)C.Stats.ElidedSubsumed);

  if (EmitIR) {
    std::printf("\n%s", ir::printModule(*C.M).c_str());
    return 0;
  }

  interp::RunResult R = interp::run(*C.M, Session, RunOpts);
  if (!R.Ok) {
    std::fprintf(stderr, "vm fault: %s\n", R.Fault.c_str());
    return 1;
  }
  if (!R.Output.empty())
    std::printf("\n-- program output --\n%s", R.Output.c_str());
  std::printf("\nexit code: %lld\n", (long long)R.ExitCode);
  std::printf("executed checks: %llu type, %llu bounds, %llu "
              "bounds_get, %llu narrow\n",
              (unsigned long long)R.Checks.TypeChecks,
              (unsigned long long)R.Checks.BoundsChecks,
              (unsigned long long)R.Checks.BoundsGets,
              (unsigned long long)R.Checks.BoundsNarrows);
  std::printf("issues reported: %llu\n",
              (unsigned long long)R.IssuesReported);
  return 0;
}
