//===- examples/subobject_overflow.cpp - The account example --------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The paper's introduction example: an overflow of account.number[]
/// silently corrupts account.balance. The write stays inside the
/// allocation, so allocation-bounds tools (AddressSanitizer, LowFat,
/// BaggyBounds — and our EffectiveSan-bounds variant) cannot see it;
/// dynamic type information narrows the bounds to the sub-object and
/// catches it.
///
/// Build and run:  ./build/examples/subobject_overflow
///
//===----------------------------------------------------------------------===//

#include "core/Effective.h"

#include <cstdio>

using namespace effective;

struct Account {
  int Number[8];
  float Balance;
};

EFFECTIVE_REFLECT(Account, Number, Balance);

namespace {

/// The buggy routine: writes digit \p I of the account number for
/// I = 0..8 — one past the end of the field. Runs against whatever
/// session it is handed (a Sanitizer converts to its Runtime).
template <typename Policy> void writeDigits(Runtime &RT) {
  RuntimeScope Scope(RT); // CheckedPtr checks report through RT.
  auto Acc = allocateChecked<Account, Policy>(RT);
  Acc.field(&Account::Balance)[0] = 1000.0f;

  auto Number = Acc.field(&Account::Number); // Bounds narrow to [0,32).
  for (int I = 0; I <= 8; ++I)               // Off-by-one.
    Number[I] = I;

  float Balance = Acc.field(&Account::Balance)[0];
  std::printf("  balance after the loop: %.2f %s\n", Balance,
              Balance == 1000.0f ? "(intact)" : "(CORRUPTED)");
  deallocateChecked(RT, Acc);
}

} // namespace

int main() {
  std::printf("== sub-object overflow: struct account "
              "{int number[8]; float balance;} ==\n");

  // One private session per variant — the Section 6.2 ablation as
  // three session configurations in one process, with independent
  // error counts.
  std::printf("\n-- EffectiveSan (full): field access narrows bounds, "
              "number[8] is caught --\n");
  Sanitizer Full;
  writeDigits<FullPolicy>(Full);
  std::printf("  errors reported: %llu\n",
              static_cast<unsigned long long>(
                  Full.reporter().numEvents()));

  std::printf("\n-- EffectiveSan-bounds: allocation bounds only, the "
              "write passes silently --\n");
  SessionOptions BoundsOpts;
  BoundsOpts.Policy = CheckPolicy::BoundsOnly;
  Sanitizer BoundsSession(BoundsOpts);
  writeDigits<BoundsPolicy>(BoundsSession);
  std::printf("  errors reported: %llu (the LowFat/ASan blind spot)\n",
              static_cast<unsigned long long>(
                  BoundsSession.reporter().numEvents()));

  std::printf("\n-- Uninstrumented: nothing checks anything --\n");
  SessionOptions OffOpts;
  OffOpts.Policy = CheckPolicy::Off;
  Sanitizer OffSession(OffOpts);
  writeDigits<NonePolicy>(OffSession);
  std::printf("  errors reported: %llu\n",
              static_cast<unsigned long long>(
                  OffSession.reporter().numEvents()));
  return 0;
}
