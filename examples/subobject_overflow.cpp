//===- examples/subobject_overflow.cpp - The account example --------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The paper's introduction example: an overflow of account.number[]
/// silently corrupts account.balance. The write stays inside the
/// allocation, so allocation-bounds tools (AddressSanitizer, LowFat,
/// BaggyBounds — and our EffectiveSan-bounds variant) cannot see it;
/// dynamic type information narrows the bounds to the sub-object and
/// catches it.
///
/// Build and run:  ./build/examples/subobject_overflow
///
//===----------------------------------------------------------------------===//

#include "core/Effective.h"

#include <cstdio>

using namespace effective;

struct Account {
  int Number[8];
  float Balance;
};

EFFECTIVE_REFLECT(Account, Number, Balance);

namespace {

/// The buggy routine: writes digit \p I of the account number for
/// I = 0..8 — one past the end of the field.
template <typename Policy> void writeDigits(Runtime &RT) {
  auto Acc = allocateChecked<Account, Policy>(RT);
  Acc.field(&Account::Balance)[0] = 1000.0f;

  auto Number = Acc.field(&Account::Number); // Bounds narrow to [0,32).
  for (int I = 0; I <= 8; ++I)               // Off-by-one.
    Number[I] = I;

  float Balance = Acc.field(&Account::Balance)[0];
  std::printf("  balance after the loop: %.2f %s\n", Balance,
              Balance == 1000.0f ? "(intact)" : "(CORRUPTED)");
  deallocateChecked(RT, Acc);
}

} // namespace

int main() {
  Runtime &RT = Runtime::global();
  std::printf("== sub-object overflow: struct account "
              "{int number[8]; float balance;} ==\n");

  std::printf("\n-- EffectiveSan (full): field access narrows bounds, "
              "number[8] is caught --\n");
  uint64_t Before = RT.reporter().numEvents();
  writeDigits<FullPolicy>(RT);
  std::printf("  errors reported: %llu\n",
              static_cast<unsigned long long>(RT.reporter().numEvents() -
                                              Before));

  std::printf("\n-- EffectiveSan-bounds: allocation bounds only, the "
              "write passes silently --\n");
  Before = RT.reporter().numEvents();
  writeDigits<BoundsPolicy>(RT);
  std::printf("  errors reported: %llu (the LowFat/ASan blind spot)\n",
              static_cast<unsigned long long>(RT.reporter().numEvents() -
                                              Before));

  std::printf("\n-- Uninstrumented: nothing checks anything --\n");
  Before = RT.reporter().numEvents();
  writeDigits<NonePolicy>(RT);
  std::printf("  errors reported: %llu\n",
              static_cast<unsigned long long>(RT.reporter().numEvents() -
                                              Before));
  return 0;
}
