//===- examples/type_confusion.cpp - Bad casts, explicit and implicit -----===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Type confusion, two ways:
///
///  1. the xalancbmk-style bad downcast from Section 6.1 — a Grammar
///     that is really a DTDGrammar cast to SchemaGrammar; and
///  2. the Section 2.1 implicit cast: a pointer laundered bytewise
///     through a buffer (memcpy), which cast-site sanitizers (CaVer,
///     TypeSan, HexType) never see. EffectiveSan checks *use*, so the
///     confusion still surfaces.
///
/// Build and run:  ./build/examples/type_confusion
///
//===----------------------------------------------------------------------===//

#include "core/Effective.h"

#include <cstdio>
#include <cstring>

using namespace effective;

// A miniature class hierarchy in the xalancbmk style. Base classes are
// embedded members of the dynamic type (Section 3).
struct Grammar {
  int GrammarType;
  int ElementCount;
};
struct SchemaGrammar {
  Grammar Base;
  int ComplexTypes;
  double ValidationBudget;
};
struct DtdGrammar {
  Grammar Base;
  int EntityCount;
};

EFFECTIVE_REFLECT(Grammar, GrammarType, ElementCount);
EFFECTIVE_REFLECT(SchemaGrammar, Base, ComplexTypes, ValidationBudget);
EFFECTIVE_REFLECT(DtdGrammar, Base, EntityCount);

int main() {
  // A private session keeps this demo's heap and error log to itself.
  Sanitizer S;
  TypeContext &Ctx = S.types();

  std::printf("== type confusion ==\n");

  // -- 1. Bad downcast ---------------------------------------------------
  // nextElement() really returned a DtdGrammar...
  void *Obj = S.malloc(sizeof(DtdGrammar),
                         TypeOf<DtdGrammar>::get(Ctx));

  // Upcast to the shared base: fine — Grammar is a sub-object at
  // offset 0 of the dynamic type DtdGrammar.
  Bounds BaseBounds = S.typeCheck(Obj, TypeOf<Grammar>::get(Ctx));
  std::printf("\nupcast to Grammar: ok (sub-object bounds %zu bytes)\n",
              static_cast<size_t>(BaseBounds.Hi - BaseBounds.Lo));

  // ...but the code downcasts to SchemaGrammar (the paper's
  // "(SchemaGrammar&)grammarEnum.nextElement()"). No sub-object of that
  // type exists: type error.
  std::printf("\nbad downcast to SchemaGrammar — expecting a type "
              "error:\n");
  S.typeCheck(Obj, TypeOf<SchemaGrammar>::get(Ctx));
  S.free(Obj);

  // -- 2. Implicit cast through memory ------------------------------------
  // float *F laundered through a byte buffer into int *P: no cast
  // operator anywhere, yet P's first *use* is checked against the
  // dynamic type (float[8]) and flagged.
  float *F = static_cast<float *>(
      S.malloc(8 * sizeof(float), Ctx.getFloat()));
  char Buffer[sizeof(void *)];
  std::memcpy(Buffer, &F, sizeof(void *)); // memcpy(buf, &ptrA, 8);
  int *P;
  std::memcpy(&P, Buffer, sizeof(void *)); // memcpy(&ptrB, buf, 8);

  std::printf("\nimplicit cast via memcpy, then use as int[] — "
              "expecting a type error:\n");
  Bounds B = S.typeCheck(P, Ctx.getInt()); // Rule (c): checked at use.
  S.boundsCheck(P, sizeof(int), B);
  S.free(F);

  std::printf("\n%llu issue(s) reported in total.\n",
              static_cast<unsigned long long>(S.issuesFound()));
  return 0;
}
