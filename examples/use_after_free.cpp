//===- examples/use_after_free.cpp - Temporal errors via the FREE type ----===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Temporal safety through dynamic types (Section 3): free() rebinds
/// the object to the special FREE type, so use-after-free and double
/// free reduce to type errors; reuse-after-free is caught when the
/// block is recycled under a *different* type (and missed when the
/// types coincide — the paper's documented partiality, Figure 1
/// caveat (§)).
///
/// Build and run:  ./build/examples/use_after_free
///
//===----------------------------------------------------------------------===//

#include "core/Effective.h"

#include <cstdio>

using namespace effective;

struct Session {
  long Id;
  long Token;
};
struct Packet {
  // Not char[]: a char-typed buffer would legitimately accept any
  // static type through the paper's char[] coercion, hiding the
  // reuse-after-free type error this demo is about.
  long Payload[2];
};

EFFECTIVE_REFLECT(Session, Id, Token);
EFFECTIVE_REFLECT(Packet, Payload);

int main() {
  // A private session: its FREE-type rebinding and reports stay local.
  Sanitizer San;
  TypeContext &Ctx = San.types();
  const TypeInfo *SessionT = TypeOf<Session>::get(Ctx);
  const TypeInfo *PacketT = TypeOf<Packet>::get(Ctx);

  std::printf("== temporal errors via the FREE type ==\n");

  // -- use-after-free ------------------------------------------------------
  auto *Sess = static_cast<Session *>(San.malloc(sizeof(Session), SessionT));
  Sess->Id = 7;
  San.free(Sess);
  std::printf("\ndynamic type after free: %s\n",
              San.dynamicTypeOf(Sess)->str().c_str());
  std::printf("use after free — expecting a report:\n");
  San.typeCheck(Sess, SessionT); // The dangling pointer re-enters
                                 // checked code.

  // -- double free ---------------------------------------------------------
  std::printf("\ndouble free — expecting a report:\n");
  San.free(Sess);

  // -- reuse-after-free, different type ------------------------------------
  // The freed Session block is recycled for a Packet (same size class,
  // LIFO free list). The stale Session pointer now sees dynamic type
  // Packet: reported.
  auto *Pkt = static_cast<Packet *>(San.malloc(sizeof(Packet), PacketT));
  std::printf("\nblock recycled as %s at %s address\n",
              San.dynamicTypeOf(Pkt)->str().c_str(),
              static_cast<void *>(Pkt) == static_cast<void *>(Sess)
                  ? "the same"
                  : "a different");
  std::printf("stale Session pointer used — expecting a type error:\n");
  San.typeCheck(Sess, SessionT);
  San.free(Pkt);

  // -- reuse-after-free, same type (the documented miss) -------------------
  auto *A = static_cast<Session *>(San.malloc(sizeof(Session), SessionT));
  San.free(A);
  auto *B = static_cast<Session *>(San.malloc(sizeof(Session), SessionT));
  uint64_t Before = San.reporter().numEvents();
  San.typeCheck(A, SessionT); // Stale pointer, but the types coincide.
  std::printf("\nreuse with the *same* type: %llu report(s) — the "
              "paper's caveat (§):\nonly reuse under a different type "
              "is detectable by dynamic typing alone\n",
              static_cast<unsigned long long>(San.reporter().numEvents() -
                                              Before));
  San.free(B);

  std::printf("\n%llu issue(s) reported in total.\n",
              static_cast<unsigned long long>(San.issuesFound()));
  return 0;
}
